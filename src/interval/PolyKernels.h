//===- PolyKernels.h - Certified polynomial elementary kernels --*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Polynomial exp/log/sin/cos kernels evaluated entirely under the
/// *ambient* round-upward mode of the interval runtime -- no fesetround()
/// on the hot path, unlike the libm substitution in Elementary.h which
/// pays a round-to-nearest scope per endpoint. Each kernel carries a
/// statically derived total error bound (polynomial approximation error
/// plus per-step directed-rounding error, derivations in DESIGN.md
/// "Certified polynomial kernels") that is folded outward into the
/// returned interval, so the enclosures are sound by construction.
///
/// The fast kernels cover a restricted domain (ExpFastLimit etc.) inside
/// which every error term of the derivation is valid; outside it they
/// fall back to the libm-widened iExp/iLog/iSin/iCos, so soundness never
/// depends on the polynomial code's coverage.
///
/// The point cores below are deliberately header-inline and written as a
/// fixed sequence of scalar mul/add/sub operations (no FMA, no libm):
/// the per-ISA batched kernels in src/runtime/BatchElem*.cpp mirror the
/// exact same operation sequence with SSE2/AVX2 intrinsics, which makes
/// every lane bit-identical to the scalar core under the same rounding
/// mode -- the batch tests compare tiers with EXPECT_EQ.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_INTERVAL_POLYKERNELS_H
#define IGEN_INTERVAL_POLYKERNELS_H

#include "interval/Interval.h"

#include <bit>
#include <cmath>
#include <cstdint>

namespace igen {
namespace poly {

//===----------------------------------------------------------------------===//
// Fast-path domains and certified error bounds (derived in DESIGN.md)
//===----------------------------------------------------------------------===//

/// exp fast path: |x| <= 690 keeps the scaled result strictly inside the
/// normal range (exp(+-690) ~ 2^+-995.5, 26 binades of margin), so the
/// final 2^k scaling multiply is exact.
inline constexpr double ExpFastLimit = 690.0;

/// sin/cos fast path: |x| <= 2^20 is where the 3-term Cody-Waite pi/2
/// reduction below is provably exact in its first step (n*Pio2_1 needs
/// 31+20 significand bits). Between 2^20 and the 2^45 sectionRange cutoff
/// the libm-widened path takes over.
inline constexpr double SinCosFastLimit = 0x1p20;

/// Certified worst-case *relative* error of expCore/logCore on their fast
/// domains, and *absolute* error of sinCore/cosCore (absolute because the
/// reduction error ~2^-52 does not shrink near the zeros of sin/cos).
/// When the reduction is the identity (n == 0, so r == x exactly) there
/// is no reduction error and the sin/cos bound improves to the *relative*
/// SinCosEpsRel -- this is what keeps iSinFast tight near zero.
/// The derivations in DESIGN.md bound the true errors by 2^-49.4 (exp),
/// 2^-50.3 (log) and 2^-50.3 (sin/cos, 2^-50.2 relative for n == 0);
/// 2^-48 leaves >= 2x margin everywhere.
inline constexpr double ExpEpsRel = 0x1p-48;
inline constexpr double LogEpsRel = 0x1p-48;
inline constexpr double SinCosEpsAbs = 0x1p-48;
inline constexpr double SinCosEpsRel = 0x1p-48;

/// Fast-domain predicates. NaN endpoints fail every comparison and fall
/// back to the libm path (which handles them).
inline bool expFastDomain(double Lo, double Hi) {
  return std::fabs(Lo) <= ExpFastLimit && std::fabs(Hi) <= ExpFastLimit;
}
inline bool logFastDomain(double Lo, double Hi) {
  // Positive *normal* lower endpoint (the bit-level exponent extraction
  // in logCore assumes a normal input) and a finite upper endpoint.
  return Lo >= std::numeric_limits<double>::min() &&
         Hi <= std::numeric_limits<double>::max();
}
inline bool sinCosFastDomain(double Lo, double Hi) {
  return std::fabs(Lo) <= SinCosFastLimit && std::fabs(Hi) <= SinCosFastLimit;
}

//===----------------------------------------------------------------------===//
// Shared constants
//===----------------------------------------------------------------------===//

/// 1.5 * 2^52: adding it pins a value's integer part into the low
/// significand bits ("shifter trick"); under the ambient upward mode
/// (v - 0.5) + Shift computes ceil(v - 0.5), a round-half-up nearest.
inline constexpr double Shifter = 0x1.8p52;

/// log2(e), nearest.
inline constexpr double InvLn2 = 0x1.71547652b82fep+0;

/// ln 2 split with a 31-bit head: k * Ln2Hi is exact for |k| < 2^21.
inline constexpr double Ln2Hi = 0x1.62e42feep-1;
inline constexpr double Ln2Lo = 0x1.a39ef35793c76p-33;

/// sqrt(2), nearest (mantissa normalization threshold in logCore).
inline constexpr double Sqrt2 = 0x1.6a09e667f3bcdp+0;

/// 2/pi, nearest.
inline constexpr double InvPio2 = 0x1.45f306dc9c883p-1;

/// pi/2 in three parts with 31/32/28-bit heads (fdlibm's pio2_1/2/3):
/// n * each part is exact for |n| <= 2^20, and the neglected tail
/// contributes |n| * 8.5e-32 <= 2^-83.
inline constexpr double Pio2_1 = 0x1.921fb544p+0;
inline constexpr double Pio2_2 = 0x1.0b4611a6p-34;
inline constexpr double Pio2_3 = 0x1.3198a2ep-69;

/// Taylor coefficients (nearest doubles; every factorial below is exactly
/// representable, so each entry carries a single half-ulp representation
/// error that the DESIGN.md budgets account for).
inline constexpr double ExpC[12] = {
    1.0 / 2, 1.0 / 6, 1.0 / 24, 1.0 / 120, 1.0 / 720, 1.0 / 5040,
    1.0 / 40320, 1.0 / 362880, 1.0 / 3628800, 1.0 / 39916800,
    1.0 / 479001600, 1.0 / 6227020800.0};

inline constexpr double SinC[8] = {
    -1.0 / 6, 1.0 / 120, -1.0 / 5040, 1.0 / 362880, -1.0 / 39916800,
    1.0 / 6227020800.0, -1.0 / 1307674368000.0, 1.0 / 355687428096000.0};

inline constexpr double CosC[7] = {
    1.0 / 24, -1.0 / 720, 1.0 / 40320, -1.0 / 3628800, 1.0 / 479001600,
    -1.0 / 87178291200.0, 1.0 / 20922789888000.0};

/// atanh-series coefficients 2/(2k+1) for log: log(m) = 2s + s*z*Q(z)
/// with s = (m-1)/(m+1), z = s^2.
inline constexpr double LogC[11] = {
    2.0 / 3, 2.0 / 5, 2.0 / 7, 2.0 / 9, 2.0 / 11, 2.0 / 13,
    2.0 / 15, 2.0 / 17, 2.0 / 19, 2.0 / 21, 2.0 / 23};

//===----------------------------------------------------------------------===//
// Point cores (ambient rounding mode; certified error bounds above)
//===----------------------------------------------------------------------===//

/// exp(x) for |x| <= ExpFastLimit. Relative error < ExpEpsRel / 2.
inline double expCore(double X) {
  // k = round-half-up nearest of x/ln2 via the shifter; the bit pattern
  // of U is bits(Shifter) + k, exactly.
  double P = X * InvLn2;
  double U = (P - 0.5) + Shifter;
  double Kd = U - Shifter; // exact (Sterbenz)
  int64_t K = std::bit_cast<int64_t>(U) - std::bit_cast<int64_t>(Shifter);
  // Cody-Waite reduction: both the product k*Ln2Hi and the first
  // subtraction are exact (DESIGN.md); |R| <= 0.3467.
  double R0 = X - Kd * Ln2Hi;
  double R = R0 - Kd * Ln2Lo;
  // exp(R) = 1 + R + R^2 * Q(R), Q = Taylor through degree 13. The
  // attenuated form keeps every rounding error small against the leading
  // 1 + R.
  double Q = ExpC[11];
  for (int I = 10; I >= 0; --I)
    Q = ExpC[I] + R * Q;
  double Z = R * R;
  double Y = 1.0 + (R + Z * Q);
  // 2^k scaling: exact because the result is normal on the fast domain.
  double Scale = std::bit_cast<double>((K + 1023) << 52);
  return Y * Scale;
}

/// log(x) for positive normal finite x. Relative error < LogEpsRel / 2.
inline double logCore(double X) {
  // x = 2^e * m with m normalized into [sqrt(1/2), sqrt(2)): |log m| is
  // either 0-homogeneous in s (e == 0) or bounded away from cancelling
  // against e*ln2 (|e*ln2 + log m| >= ln2/2 when e != 0).
  int64_t Bits = std::bit_cast<int64_t>(X);
  int64_t E2 = (Bits >> 52) - 1023;
  double M = std::bit_cast<double>((Bits & 0xFFFFFFFFFFFFFll) |
                                   0x3FF0000000000000ll);
  if (M > Sqrt2) {
    M = M * 0.5; // exact
    E2 += 1;
  }
  double Ed = static_cast<double>(E2);
  double A = M - 1.0; // exact (Sterbenz)
  double B = M + 1.0;
  double S = A / B; // |S| <= 0.1716
  double Z = S * S;
  double Q = LogC[10];
  for (int I = 9; I >= 0; --I)
    Q = LogC[I] + Z * Q;
  double T = (S * Z) * Q;
  double S2 = S + S; // exact
  double VHi = Ed * Ln2Hi; // exact (|e| <= 1023 < 2^21)
  double VLo = Ed * Ln2Lo;
  return (VHi + S2) + (T + VLo);
}

/// Shared pi/2 argument reduction for |x| <= SinCosFastLimit: returns the
/// reduced argument r = x - n*pi/2 with |r| <= pi/4 + 2^-30 and
/// |r - r_true| <= 2^-51.9, and sets \p N = n (quadrant = n mod 4; n == 0
/// means r == x exactly, with no reduction error at all).
inline double sinCosReduce(double X, int64_t &N) {
  double P = X * InvPio2;
  double U = (P - 0.5) + Shifter;
  double Nd = U - Shifter; // exact
  N = std::bit_cast<int64_t>(U) - std::bit_cast<int64_t>(Shifter);
  double R0 = X - Nd * Pio2_1; // both exact (DESIGN.md)
  double R1 = R0 - Nd * Pio2_2; // product exact; one rounding
  return R1 - Nd * Pio2_3; // product exact; one rounding
}

/// sin(r) / cos(r) on the reduced domain |r| <= pi/4 + 2^-30.
inline double sinPolyR(double R) {
  double Z = R * R;
  double S = SinC[7];
  for (int I = 6; I >= 0; --I)
    S = SinC[I] + Z * S;
  return R + (R * Z) * S;
}
inline double cosPolyR(double R) {
  double Z = R * R;
  double C = CosC[6];
  for (int I = 5; I >= 0; --I)
    C = CosC[I] + Z * C;
  double Hz = 0.5 * Z; // exact
  return (1.0 - Hz) + (Z * Z) * C;
}

/// sin(x) / cos(x) for |x| <= SinCosFastLimit. Absolute error
/// < SinCosEpsAbs / 2; relative error < SinCosEpsRel / 2 when the
/// reduction returns n == 0.
inline double sinCore(double X) {
  int64_t N;
  double R = sinCosReduce(X, N);
  int64_t J = N & 3; // two's complement: correct mod 4 for negative n
  double V = (J & 1) ? cosPolyR(R) : sinPolyR(R);
  return (J & 2) ? -V : V;
}
inline double cosCore(double X) {
  int64_t N;
  double R = sinCosReduce(X, N);
  int64_t J = N & 3;
  double V = (J & 1) ? sinPolyR(R) : cosPolyR(R);
  return ((J + 1) & 2) ? -V : V;
}

namespace detail {

/// Conservative bounds [KMin, KMax] on floor(x / (pi/2)) computed without
/// leaving the ambient rounding mode (the upward-mode sibling of
/// igen::detail::sectionRange, same 2^-40 ambiguity threshold). Requires
/// |x| <= SinCosFastLimit.
void sectionRangeUp(double X, long long &KMin, long long &KMax);

} // namespace detail

} // namespace poly

//===----------------------------------------------------------------------===//
// Interval kernels
//===----------------------------------------------------------------------===//

/// Certified polynomial interval exp/log/sin/cos: same contracts as
/// iExp/iLog/iSin/iCos (to which they defer outside the fast domain), but
/// evaluated without any rounding-mode switch and widened by the certified
/// kernel error instead of the libm ulp bound.
Interval iExpFast(const Interval &X);
Interval iLogFast(const Interval &X);
Interval iSinFast(const Interval &X);
Interval iCosFast(const Interval &X);

} // namespace igen

#endif // IGEN_INTERVAL_POLYKERNELS_H
