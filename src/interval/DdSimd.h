//===- DdSimd.h - AVX-vectorized double-double intervals --------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AVX implementation of double-double intervals (Section VI-A): a ddi
/// is four doubles -- two per endpoint -- and fits exactly in one __m256d.
///
/// Register layout: [ negLo.H | hi.H | negLo.L | hi.L ], i.e. the high
/// words of both endpoints sit in the low 128-bit lane and the low words in
/// the high lane. With this layout one 256-bit TwoSum computes the TwoSum
/// of the high words of *both* endpoints and the TwoSum of the low words of
/// both endpoints simultaneously, so DD_Add (Fig. 6) vectorizes to
/// 14 arithmetic intrinsics + 3 cross-lane shuffles = 17 intrinsics,
/// matching Table III. Multiplication evaluates the candidate products
/// pairwise (negated-low candidate and high candidate share the vector).
/// Division falls back to the scalar sign-case path (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_INTERVAL_DDSIMD_H
#define IGEN_INTERVAL_DDSIMD_H

#include "interval/DdInterval.h"

#include <immintrin.h>

namespace igen {

/// A double-double interval in one AVX register.
struct DdIntervalAvx {
  __m256d V;

  DdIntervalAvx() : V(_mm256_setzero_pd()) {}
  explicit DdIntervalAvx(__m256d V) : V(V) {}

  static DdIntervalAvx fromScalar(const DdInterval &I) {
    return DdIntervalAvx(
        _mm256_set_pd(I.Hi.L, I.NegLo.L, I.Hi.H, I.NegLo.H));
  }
  static DdIntervalAvx fromPoint(double X) {
    return fromScalar(DdInterval::fromPoint(X));
  }
  static DdIntervalAvx fromEndpoints(double Lo, double Hi) {
    return fromScalar(DdInterval::fromEndpoints(Dd(Lo), Dd(Hi)));
  }

  DdInterval toScalar() const {
    alignas(32) double L[4];
    _mm256_store_pd(L, V);
    return DdInterval(Dd(L[0], L[2]), Dd(L[1], L[3]));
  }

  bool hasSpecial() const {
    // NaN or infinity in any word.
    __m256d AbsMask = _mm256_castsi256_pd(
        _mm256_set1_epi64x(0x7fffffffffffffffLL));
    __m256d Abs = _mm256_and_pd(V, AbsMask);
    __m256d Inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
    // NaN fails all ordered comparisons; test Abs < Inf per lane.
    __m256d Finite = _mm256_cmp_pd(Abs, Inf, _CMP_LT_OQ);
    return _mm256_movemask_pd(Finite) != 0xF;
  }
};

namespace detail {

/// 256-wide TwoSum (6 intrinsics): per-lane directed bound, as in the
/// scalar twoSum().
inline void twoSum256(__m256d A, __m256d B, __m256d &S, __m256d &E) {
  S = _mm256_add_pd(A, B);
  __m256d A1 = _mm256_sub_pd(S, B);
  __m256d B1 = _mm256_sub_pd(S, A1);
  __m256d DA = _mm256_sub_pd(A, A1);
  __m256d DB = _mm256_sub_pd(B, B1);
  E = _mm256_add_pd(DA, DB);
}

/// 256-wide FastTwoSum (3 intrinsics); per-lane |A| >= |B| expected in the
/// lanes that matter.
inline void fastTwoSum256(__m256d A, __m256d B, __m256d &S, __m256d &E) {
  S = _mm256_add_pd(A, B);
  __m256d Z = _mm256_sub_pd(S, A);
  E = _mm256_sub_pd(B, Z);
}

/// Swaps the 128-bit lanes.
inline __m256d swap128(__m256d X) {
  return _mm256_permute2f128_pd(X, X, 0x01);
}

/// [low128(A) | low128(B)].
inline __m256d concatLow(__m256d A, __m256d B) {
  return _mm256_permute2f128_pd(A, B, 0x20);
}

/// Duplicates the low 128-bit lane into both lanes.
inline __m256d dupLow(__m256d X) {
  return _mm256_permute2f128_pd(X, X, 0x00);
}

} // namespace detail

/// Interval ddi addition: DD_Add of Fig. 6 on both endpoints at once.
/// 14 arithmetic intrinsics + 3 shuffles (Table III row 1).
inline DdIntervalAvx ddiAdd(const DdIntervalAvx &X, const DdIntervalAvx &Y) {
  assertRoundUpward();
  __m256d S, E, C, VH, VE, W, ZH, ZL;
  // Lanes 0,1: TwoSum of high words; lanes 2,3: TwoSum of low words.
  detail::twoSum256(X.V, Y.V, S, E);
  // c = se + th (th lives in the high lane of S).
  C = _mm256_add_pd(E, detail::swap128(S));
  detail::fastTwoSum256(S, C, VH, VE);
  // w = te + ve (te lives in the high lane of E).
  W = _mm256_add_pd(detail::swap128(E), VE);
  detail::fastTwoSum256(VH, W, ZH, ZL);
  return DdIntervalAvx(detail::concatLow(ZH, ZL));
}

inline DdIntervalAvx ddiNeg(const DdIntervalAvx &X) {
  // Swap the endpoints within each lane (negLo <-> hi), exact.
  return DdIntervalAvx(_mm256_permute_pd(X.V, 0b0101));
}

inline DdIntervalAvx ddiSub(const DdIntervalAvx &X, const DdIntervalAvx &Y) {
  return ddiAdd(X, ddiNeg(Y));
}

namespace detail {

/// Pairwise upward double-double product of two dd 2-vectors in the
/// [H0 | H1 | L0 | L1] layout; returns the same layout. Mirrors ddMulUp.
inline __m256d ddPairMulUp(__m256d A, __m256d B) {
  __m256d P = _mm256_mul_pd(A, B); // lanes01: AH*BH; lanes23: AL*BL (RU)
  __m256d E = _mm256_fmsub_pd(A, B, P); // lanes01: exact residues
  __m256d BS = swap128(B);
  __m256d C = _mm256_mul_pd(A, BS); // lanes01: AH*BL; lanes23: AL*BH
  __m256d S1 = _mm256_add_pd(C, swap128(C)); // lanes01: cross sum
  __m256d S2 = _mm256_add_pd(S1, swap128(P)); // + AL*BL
  __m256d E2 = _mm256_add_pd(E, S2);
  __m256d ZH, ZL;
  twoSum256(P, E2, ZH, ZL);
  return concatLow(ZH, ZL);
}

/// Pairwise dd maximum: each __m256d holds two dd values [H0|H1|L0|L1];
/// selects per-dd the larger. No NaNs allowed.
inline __m256d ddPairMax(__m256d A, __m256d B) {
  __m256d GT = _mm256_cmp_pd(A, B, _CMP_GT_OQ); // lanes01: H>, lanes23: L>
  __m256d EQ = _mm256_cmp_pd(A, B, _CMP_EQ_OQ); // lanes01: H==
  __m256d GTL = swap128(GT);                    // lanes01: L>
  __m256d Sel01 = _mm256_or_pd(GT, _mm256_and_pd(EQ, GTL));
  __m256d Sel = dupLow(Sel01);
  return _mm256_blendv_pd(B, A, Sel);
}

inline __m256d dupLoWords(__m256d X) {
  return _mm256_permute_pd(X, 0b0000); // [x0,x0,x2,x2]
}
inline __m256d dupHiWords(__m256d X) {
  return _mm256_permute_pd(X, 0b1111); // [x1,x1,x3,x3]
}
inline __m256d negLane0(__m256d X) {
  return _mm256_xor_pd(X, _mm256_set_pd(0.0, -0.0, 0.0, -0.0));
}
inline __m256d negLane1(__m256d X) {
  return _mm256_xor_pd(X, _mm256_set_pd(-0.0, 0.0, -0.0, 0.0));
}

} // namespace detail

/// Interval ddi multiplication: four pairwise dd candidate products (each
/// computing the negated-low candidate and the high candidate together)
/// followed by three pairwise dd maxima; same candidate scheme as iMul.
inline DdIntervalAvx ddiMul(const DdIntervalAvx &X, const DdIntervalAvx &Y) {
  assertRoundUpward();
  if (__builtin_expect(X.hasSpecial() || Y.hasSpecial(), 0))
    return DdIntervalAvx::fromScalar(ddiMul(X.toScalar(), Y.toScalar()));
  // X = [xn | xh | ...], build dd 2-vectors for the candidate pairs:
  //  P1 = (-xn, xn) * (yn, yn)   -> [n1 | h1]
  //  P2 = (xn, -xn) * (yh, yh)   -> [n2 | h2]
  //  P3 = (xh, xh) * (yn, -yn)   -> [n3 | h3]
  //  P4 = (-xh, xh) * (yh, yh)   -> [n4 | h4]
  __m256d XnXn = detail::dupLoWords(X.V);
  __m256d XhXh = detail::dupHiWords(X.V);
  __m256d YnYn = detail::dupLoWords(Y.V);
  __m256d YhYh = detail::dupHiWords(Y.V);
  __m256d P1 = detail::ddPairMulUp(detail::negLane0(XnXn), YnYn);
  __m256d P2 = detail::ddPairMulUp(detail::negLane1(XnXn), YhYh);
  __m256d P3 = detail::ddPairMulUp(XhXh, detail::negLane1(YnYn));
  __m256d P4 = detail::ddPairMulUp(detail::negLane0(XhXh), YhYh);
  // A candidate that overflowed to NaN must not be dropped by the max
  // selection: fall back to the scalar path (which recovers the hull).
  __m256d Check = _mm256_add_pd(_mm256_add_pd(P1, P2),
                                _mm256_add_pd(P3, P4));
  if (__builtin_expect(
          _mm256_movemask_pd(_mm256_cmp_pd(Check, Check, _CMP_UNORD_Q)) !=
              0,
          0))
    return DdIntervalAvx::fromScalar(ddiMul(X.toScalar(), Y.toScalar()));
  return DdIntervalAvx(
      detail::ddPairMax(detail::ddPairMax(P1, P2),
                        detail::ddPairMax(P3, P4)));
}

/// Division: scalar sign-case path (two directed divisions); the paper's
/// fully vectorized division is future work here as well -- the benchmark
/// shapes are dominated by add/mul.
inline DdIntervalAvx ddiDiv(const DdIntervalAvx &X, const DdIntervalAvx &Y) {
  return DdIntervalAvx::fromScalar(ddiDiv(X.toScalar(), Y.toScalar()));
}

inline TBool ddiCmpLT(const DdIntervalAvx &X, const DdIntervalAvx &Y) {
  return ddiCmpLT(X.toScalar(), Y.toScalar());
}
inline TBool ddiCmpGT(const DdIntervalAvx &X, const DdIntervalAvx &Y) {
  return ddiCmpGT(X.toScalar(), Y.toScalar());
}
inline TBool ddiCmpLE(const DdIntervalAvx &X, const DdIntervalAvx &Y) {
  return ddiCmpLE(X.toScalar(), Y.toScalar());
}
inline TBool ddiCmpGE(const DdIntervalAvx &X, const DdIntervalAvx &Y) {
  return ddiCmpGE(X.toScalar(), Y.toScalar());
}

inline DdIntervalAvx operator+(const DdIntervalAvx &X,
                               const DdIntervalAvx &Y) {
  return ddiAdd(X, Y);
}
inline DdIntervalAvx operator-(const DdIntervalAvx &X,
                               const DdIntervalAvx &Y) {
  return ddiSub(X, Y);
}
inline DdIntervalAvx operator*(const DdIntervalAvx &X,
                               const DdIntervalAvx &Y) {
  return ddiMul(X, Y);
}
inline DdIntervalAvx operator/(const DdIntervalAvx &X,
                               const DdIntervalAvx &Y) {
  return ddiDiv(X, Y);
}

} // namespace igen

#endif // IGEN_INTERVAL_DDSIMD_H
