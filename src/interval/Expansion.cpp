//===- Expansion.cpp - Exact floating-point expansions ---------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/Expansion.h"

using namespace igen;

void Expansion::add(double B) {
  assert(std::fegetround() == FE_TONEAREST &&
         "expansions require round-to-nearest");
  if (B == 0.0)
    return;
  std::vector<double> Out;
  Out.reserve(Components.size() + 1);
  double Q = B;
  for (double E : Components) {
    double S, Err;
    twoSum(Q, E, S, Err);
    if (Err != 0.0)
      Out.push_back(Err);
    Q = S;
  }
  if (Q != 0.0)
    Out.push_back(Q);
  Components = std::move(Out);
}

void Expansion::addProduct(double A, double B) {
  assert(std::fegetround() == FE_TONEAREST &&
         "expansions require round-to-nearest");
  double P, E;
  twoProd(A, B, P, E);
  add(E);
  add(P);
}
