//===- DoubleDouble.cpp - Counting-policy storage --------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/DoubleDouble.h"

namespace igen {

thread_local uint64_t CountingOps::Adds = 0;
thread_local uint64_t CountingOps::Muls = 0;
thread_local uint64_t CountingOps::Divs = 0;
thread_local uint64_t CountingOps::Fmas = 0;

} // namespace igen
