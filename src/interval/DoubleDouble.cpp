//===- DoubleDouble.cpp - Counting-policy storage --------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// The CountingOps counters are inline thread_local members defined in
// the header; this TU only anchors the library target.
//
//===----------------------------------------------------------------------===//

#include "interval/DoubleDouble.h"
