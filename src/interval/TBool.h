//===- TBool.h - Three-valued booleans --------------------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tbool type of Section IV-B: the result of comparing intervals is
/// true, false, or unknown (the intervals overlap so the comparison of the
/// represented reals cannot be decided). Kleene three-valued logic is
/// provided for composing conditions, and cvt2Bool() implements IGen's
/// default branch policy: an unknown condition signals an exception through
/// a replaceable handler.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_INTERVAL_TBOOL_H
#define IGEN_INTERVAL_TBOOL_H

#include <cstdint>

namespace igen {

enum class TBool : uint8_t { False = 0, True = 1, Unknown = 2 };

inline TBool tboolFromBool(bool B) { return B ? TBool::True : TBool::False; }

/// Kleene AND: unknown AND false == false.
inline TBool tboolAnd(TBool A, TBool B) {
  if (A == TBool::False || B == TBool::False)
    return TBool::False;
  if (A == TBool::True && B == TBool::True)
    return TBool::True;
  return TBool::Unknown;
}

/// Kleene OR: unknown OR true == true.
inline TBool tboolOr(TBool A, TBool B) {
  if (A == TBool::True || B == TBool::True)
    return TBool::True;
  if (A == TBool::False && B == TBool::False)
    return TBool::False;
  return TBool::Unknown;
}

inline TBool tboolNot(TBool A) {
  if (A == TBool::Unknown)
    return TBool::Unknown;
  return A == TBool::True ? TBool::False : TBool::True;
}

/// Handler invoked when a branch condition evaluates to Unknown under the
/// default (exception-signalling) policy. Must not return normally if the
/// program cannot tolerate an arbitrary branch decision.
using UnknownBranchHandler = void (*)(const char *Where);

/// Installs a new handler and returns the previous one. The default handler
/// prints a message to stderr and aborts.
UnknownBranchHandler setUnknownBranchHandler(UnknownBranchHandler H);

/// Number of unknown-branch events since program start (for tests and for
/// the tolerant handler used by benchmarks).
uint64_t unknownBranchCount();
void resetUnknownBranchCount();

/// A handler that only counts the event and lets the branch take the
/// 'true' side; usable when the surrounding algorithm is branch-insensitive.
void countingUnknownBranchHandler(const char *Where);

/// Converts a tbool to bool for use in an `if`. Unknown invokes the
/// installed handler; if the handler returns, the branch condition is taken
/// as true (both sides contain the real behaviour only if the handler's
/// policy says so -- the default handler aborts instead).
bool cvt2Bool(TBool B, const char *Where = "branch");

} // namespace igen

#endif // IGEN_INTERVAL_TBOOL_H
