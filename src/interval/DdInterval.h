//===- DdInterval.h - Double-double-precision intervals ---------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Intervals whose endpoints are double-double numbers (the paper's ddi,
/// Section VI-A): ~106 bits of precision per endpoint with the dynamic
/// range of double. As with f64i, the interval [a, b] is stored as
/// (-a, b) so everything uses upward rounding only; Lemma 1 supplies the
/// directed-bound property of the double-double operations.
///
/// Division uses the sign-case selection (two directed divisions); when the
/// divisor contains zero the result degrades to the same half-line/entire/
/// invalid analysis as the double-precision layer, computed on the outer
/// double hull (sound).
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_INTERVAL_DDINTERVAL_H
#define IGEN_INTERVAL_DDINTERVAL_H

#include "interval/DoubleDouble.h"
#include "interval/Interval.h"
#include "interval/TBool.h"

namespace igen {

/// A double-double interval stored as (-lo, hi), each endpoint a Dd.
struct DdInterval {
  Dd NegLo;
  Dd Hi;

  DdInterval() = default;
  DdInterval(const Dd &NegLo, const Dd &Hi) : NegLo(NegLo), Hi(Hi) {}

  Dd lo() const { return ddNeg(NegLo); }
  Dd hi() const { return Hi; }

  static DdInterval fromEndpoints(const Dd &Lo, const Dd &Hi) {
    return DdInterval(ddNeg(Lo), Hi);
  }
  static DdInterval fromPoint(const Dd &X) {
    return DdInterval(ddNeg(X), X);
  }
  static DdInterval fromPoint(double X) {
    return DdInterval(Dd(-X), Dd(X));
  }
  /// Widens a double-precision interval (exact).
  static DdInterval fromInterval(const Interval &X) {
    return DdInterval(Dd(X.NegLo), Dd(X.Hi));
  }

  static DdInterval entire() {
    double Inf = std::numeric_limits<double>::infinity();
    return DdInterval(Dd(Inf), Dd(Inf));
  }
  static DdInterval nan() {
    double N = std::numeric_limits<double>::quiet_NaN();
    return DdInterval(Dd(N), Dd(N));
  }

  bool hasNaN() const { return NegLo.hasNaN() || Hi.hasNaN(); }
  bool hasInf() const { return NegLo.isInf() || Hi.isInf(); }

  /// Outer double-precision hull (requires upward rounding): the smallest
  /// f64i containing this interval.
  Interval outerHull() const {
    assertRoundUpward();
    return Interval(ddToDoubleUp(NegLo), ddToDoubleUp(Hi));
  }

  /// True if the real \p X lies within the interval. NaN endpoints contain
  /// everything. Exact double-double comparisons.
  bool contains(double X) const {
    if (hasNaN())
      return true;
    // lo <= X  <=>  -X <= -lo == NegLo;  X <= hi  <=>  !(hi < X).
    return !ddLess(NegLo, Dd(-X)) && !ddLess(Hi, Dd(X));
  }

  /// Containment of a double-double value.
  bool contains(const Dd &X) const {
    if (hasNaN())
      return true;
    return !ddLess(NegLo, ddNeg(X)) && !ddLess(Hi, X);
  }
};

//===----------------------------------------------------------------------===//
// Arithmetic
//===----------------------------------------------------------------------===//

inline DdInterval ddiAdd(const DdInterval &X, const DdInterval &Y) {
  return DdInterval(ddAddUp(X.NegLo, Y.NegLo), ddAddUp(X.Hi, Y.Hi));
}

inline DdInterval ddiNeg(const DdInterval &X) {
  return DdInterval(X.Hi, X.NegLo);
}

inline DdInterval ddiSub(const DdInterval &X, const DdInterval &Y) {
  return DdInterval(ddAddUp(X.NegLo, Y.Hi), ddAddUp(X.Hi, Y.NegLo));
}

namespace detail {

/// Max of four double-double values; no NaNs allowed.
inline Dd ddMax4(const Dd &A, const Dd &B, const Dd &C, const Dd &D) {
  return ddMax(ddMax(A, B), ddMax(C, D));
}

/// Conservative fallback for ddi multiplication/division with special
/// values: compute on the outer double hull with the double-precision
/// interval code (which handles 0*inf etc.) and widen back.
inline DdInterval ddiFromOuter(const Interval &I) {
  return DdInterval(Dd(I.NegLo), Dd(I.Hi));
}

} // namespace detail

/// X * Y with double-double endpoints: the same eight-products/two-maxima
/// scheme as iMul, with ddMulUp as the directed product. Special values
/// (NaN endpoints, infinities) fall back to the double-precision hull.
inline DdInterval ddiMul(const DdInterval &X, const DdInterval &Y) {
  assertRoundUpward();
  if (__builtin_expect(X.hasNaN() || Y.hasNaN() || X.hasInf() || Y.hasInf(),
                       0))
    return detail::ddiFromOuter(iMul(X.outerHull(), Y.outerHull()));
  const Dd &Xn = X.NegLo, &Xh = X.Hi, &Yn = Y.NegLo, &Yh = Y.Hi;
  Dd N1 = ddMulUp(ddNeg(Xn), Yn);
  Dd N2 = ddMulUp(Xn, Yh);
  Dd N3 = ddMulUp(Xh, Yn);
  Dd N4 = ddMulUp(ddNeg(Xh), Yh);
  Dd H1 = ddMulUp(Xn, Yn);
  Dd H2 = ddMulUp(ddNeg(Xn), Yh);
  Dd H3 = ddMulUp(Xh, ddNeg(Yn));
  Dd H4 = ddMulUp(Xh, Yh);
  // Finite inputs can still overflow internally (inf - inf -> NaN in the
  // renormalization). A NaN candidate would be silently *dropped* by the
  // max selection -- check before selecting and recover the sound +-inf
  // bounds from the double hull instead.
  if (__builtin_expect(N1.hasNaN() || N2.hasNaN() || N3.hasNaN() ||
                           N4.hasNaN() || H1.hasNaN() || H2.hasNaN() ||
                           H3.hasNaN() || H4.hasNaN(),
                       0))
    return detail::ddiFromOuter(iMul(X.outerHull(), Y.outerHull()));
  return DdInterval(detail::ddMax4(N1, N2, N3, N4),
                    detail::ddMax4(H1, H2, H3, H4));
}

/// X / Y with double-double endpoints. 0-free divisors use sign-case
/// selection with two directed divisions; divisors containing zero are
/// resolved on the outer double hull.
inline DdInterval ddiDiv(const DdInterval &X, const DdInterval &Y) {
  assertRoundUpward();
  if (__builtin_expect(X.hasNaN() || Y.hasNaN() || X.hasInf() || Y.hasInf(),
                       0))
    return detail::ddiFromOuter(iDiv(X.outerHull(), Y.outerHull()));
  int YLoSign = ddNeg(Y.NegLo).sign(); // sign of lo(Y)
  int YHiSign = Y.Hi.sign();
  if (YLoSign <= 0 && YHiSign >= 0) // 0 in Y
    return detail::ddiFromOuter(iDiv(X.outerHull(), Y.outerHull()));
  if (YHiSign < 0) // Y < 0: X/Y == (-X)/(-Y)
    return ddiDiv(ddiNeg(X), ddiNeg(Y));
  // Y > 0 now. lo' = lo(X) / (lo(X) >= 0 ? hi(Y) : lo(Y)),
  //            hi' = hi(X) / (hi(X) >= 0 ? lo(Y) : hi(Y)).
  // In negated-low form: NegLo' = ddDivUp(NegLo(X), divisor) because
  // -(lo/d) == (-lo)/d.
  Dd YLo = ddNeg(Y.NegLo);
  bool XLoNonNeg = X.NegLo.sign() <= 0; // lo(X) >= 0
  bool XHiNonNeg = X.Hi.sign() >= 0;
  Dd NegLo = ddDivUp(X.NegLo, XLoNonNeg ? Y.Hi : YLo);
  Dd Hi = ddDivUp(X.Hi, XHiNonNeg ? YLo : Y.Hi);
  return DdInterval(NegLo, Hi);
}

//===----------------------------------------------------------------------===//
// Comparisons (same semantics as the double layer)
//===----------------------------------------------------------------------===//

inline TBool ddiCmpLT(const DdInterval &X, const DdInterval &Y) {
  if (X.hasNaN() || Y.hasNaN())
    return TBool::Unknown;
  if (ddLess(X.Hi, ddNeg(Y.NegLo)))
    return TBool::True;
  if (!ddLess(ddNeg(X.NegLo), Y.Hi))
    return TBool::False;
  return TBool::Unknown;
}

inline TBool ddiCmpGT(const DdInterval &X, const DdInterval &Y) {
  return ddiCmpLT(Y, X);
}

inline TBool ddiCmpLE(const DdInterval &X, const DdInterval &Y) {
  if (X.hasNaN() || Y.hasNaN())
    return TBool::Unknown;
  if (!ddLess(ddNeg(Y.NegLo), X.Hi))
    return TBool::True;
  if (ddLess(Y.Hi, ddNeg(X.NegLo)))
    return TBool::False;
  return TBool::Unknown;
}

inline TBool ddiCmpGE(const DdInterval &X, const DdInterval &Y) {
  return ddiCmpLE(Y, X);
}

/// min(X, Y): endpoint-wise minimum (the set {min(u,v)}).
inline DdInterval ddiMin(const DdInterval &X, const DdInterval &Y) {
  if (X.hasNaN() || Y.hasNaN())
    return DdInterval::nan();
  return DdInterval(ddMax(X.NegLo, Y.NegLo),
                    ddLess(X.Hi, Y.Hi) ? X.Hi : Y.Hi);
}

/// max(X, Y): endpoint-wise maximum.
inline DdInterval ddiMax(const DdInterval &X, const DdInterval &Y) {
  if (X.hasNaN() || Y.hasNaN())
    return DdInterval::nan();
  return DdInterval(ddLess(X.NegLo, Y.NegLo) ? X.NegLo : Y.NegLo,
                    ddMax(X.Hi, Y.Hi));
}

/// Hull (branch joining).
inline DdInterval ddiHull(const DdInterval &X, const DdInterval &Y) {
  if (X.hasNaN() || Y.hasNaN())
    return DdInterval::nan();
  return DdInterval(ddMax(X.NegLo, Y.NegLo), ddMax(X.Hi, Y.Hi));
}

inline DdInterval operator+(const DdInterval &X, const DdInterval &Y) {
  return ddiAdd(X, Y);
}
inline DdInterval operator-(const DdInterval &X, const DdInterval &Y) {
  return ddiSub(X, Y);
}
inline DdInterval operator*(const DdInterval &X, const DdInterval &Y) {
  return ddiMul(X, Y);
}
inline DdInterval operator/(const DdInterval &X, const DdInterval &Y) {
  return ddiDiv(X, Y);
}
inline DdInterval operator-(const DdInterval &X) { return ddiNeg(X); }

} // namespace igen

#endif // IGEN_INTERVAL_DDINTERVAL_H
