//===- Elementary.h - Interval elementary functions -------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interval versions of the elementary functions of Table I (exp, log,
/// sin, cos, tan; sqrt/abs/floor/ceil live in Interval.h since they need
/// no libm).
///
/// The paper builds on CRlibm, whose results are correctly rounded (<=1
/// ulp loss). We substitute libm evaluated in round-to-nearest and widen
/// each endpoint by LibmUlpBound ulps before directing the rounding -- a
/// strictly more conservative enclosure with the same soundness guarantee
/// (DESIGN.md substitution 3). Monotonic functions apply the widened libm
/// to each endpoint; sin/cos first locate the endpoints' pi/2-sections
/// with a conservative double-double argument "reduction" and inject +-1
/// when a peak or trough may lie inside (Section IV-A).
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_INTERVAL_ELEMENTARY_H
#define IGEN_INTERVAL_ELEMENTARY_H

#include "interval/Interval.h"

namespace igen {

/// Assumed worst-case error of libm's exp/log/sin/cos/tan in ulps.
/// glibc is typically <= 1 ulp for these; 4 is a documented safety margin.
inline constexpr int64_t LibmUlpBound = 4;

/// Interval exponential. Monotone; exact range [0, +inf].
Interval iExp(const Interval &X);

/// Interval natural logarithm. Domain x > 0: a negative lower endpoint
/// yields a NaN lower endpoint (like sqrt); an entirely nonpositive input
/// is invalid.
Interval iLog(const Interval &X);

/// Interval sine/cosine. Result is clamped to [-1, 1]; arguments with
/// magnitude above 2^45 (or spanning whole periods) return [-1, 1].
Interval iSin(const Interval &X);
Interval iCos(const Interval &X);

/// Interval tangent. Returns the entire line if the interval may contain
/// a pole (odd multiple of pi/2).
Interval iTan(const Interval &X);

/// Interval arctangent (monotone; range (-pi/2, pi/2)).
Interval iAtan(const Interval &X);

/// Interval arcsine/arccosine. Domain [-1, 1]: endpoints outside the
/// domain behave like sqrt's (NaN endpoint / invalid interval).
Interval iAsin(const Interval &X);
Interval iAcos(const Interval &X);

namespace detail {

/// Conservative bounds [KMin, KMax] on floor(x / (pi/2)). Requires
/// |x| <= 2^45 and finite x. KMax - KMin is 0 except within 2^-40 of a
/// section boundary, where it is 1.
void sectionRange(double X, long long &KMin, long long &KMax);

} // namespace detail

} // namespace igen

#endif // IGEN_INTERVAL_ELEMENTARY_H
