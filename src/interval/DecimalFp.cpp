//===- DecimalFp.cpp - Sound decimal-literal enclosures ---------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/DecimalFp.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>

using namespace igen;

DdInterval igen::pow10Interval(int N) {
  assertRoundUpward();
  static std::map<int, DdInterval> Cache;
  auto It = Cache.find(N);
  if (It != Cache.end())
    return It->second;
  DdInterval Result;
  if (N == 0) {
    Result = DdInterval::fromPoint(1.0);
  } else if (N < 0) {
    Result = ddiDiv(DdInterval::fromPoint(1.0), pow10Interval(-N));
  } else if (N == 1) {
    Result = DdInterval::fromPoint(10.0);
  } else {
    // Square-and-multiply over sound interval arithmetic.
    DdInterval Half = pow10Interval(N / 2);
    Result = ddiMul(Half, Half);
    if (N % 2)
      Result = ddiMul(Result, DdInterval::fromPoint(10.0));
  }
  Cache.emplace(N, Result);
  return Result;
}

DdInterval igen::ddIntervalFromDecimal(std::string_view Text) {
  assertRoundUpward();
  size_t Pos = 0;
  auto Peek = [&]() { return Pos < Text.size() ? Text[Pos] : '\0'; };
  bool Negative = false;
  if (Peek() == '+' || Peek() == '-')
    Negative = Text[Pos++] == '-';

  std::string Digits;
  int Exponent = 0; // value = Digits * 10^Exponent
  bool SawDigit = false, SawDot = false;
  while (true) {
    char C = Peek();
    if (std::isdigit(static_cast<unsigned char>(C))) {
      Digits.push_back(C);
      if (SawDot)
        --Exponent;
      SawDigit = true;
      ++Pos;
      continue;
    }
    if (C == '.' && !SawDot) {
      SawDot = true;
      ++Pos;
      continue;
    }
    break;
  }
  if (!SawDigit)
    return DdInterval::nan();
  if (Peek() == 'e' || Peek() == 'E') {
    ++Pos;
    bool ExpNeg = false;
    if (Peek() == '+' || Peek() == '-')
      ExpNeg = Text[Pos++] == '-';
    if (!std::isdigit(static_cast<unsigned char>(Peek())))
      return DdInterval::nan();
    long E = 0;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) {
      E = E * 10 + (Text[Pos++] - '0');
      if (E > 100000)
        break; // saturates below anyway
    }
    Exponent += static_cast<int>(ExpNeg ? -E : E);
  }
  // Trailing type suffixes (f/F and the IGen tolerance t) are the
  // caller's business; ignore a single one if present.
  if (Peek() == 'f' || Peek() == 'F' || Peek() == 't')
    ++Pos;
  if (Pos != Text.size())
    return DdInterval::nan();

  // Strip leading zeros (keep at least one digit).
  size_t FirstNonZero = Digits.find_first_not_of('0');
  if (FirstNonZero == std::string::npos)
    return DdInterval::fromPoint(Negative ? -0.0 : 0.0);
  Digits.erase(0, FirstNonZero);

  // Evaluate sum over 15-digit chunks, most significant first:
  //   value = sum chunk_i * 10^(Exponent + shift_i)
  // A parallel double-interval sum serves as the sound fallback when the
  // value overflows double-double's range (inf - inf -> NaN internally).
  DdInterval Sum = DdInterval::fromPoint(0.0);
  Interval HullSum = Interval::fromPoint(0.0);
  size_t NumDigits = Digits.size();
  for (size_t Start = 0; Start < NumDigits; Start += 15) {
    size_t Len = std::min<size_t>(15, NumDigits - Start);
    double Chunk =
        static_cast<double>(std::strtoll(
            Digits.substr(Start, Len).c_str(), nullptr, 10)); // exact
    int Shift = static_cast<int>(NumDigits - Start - Len);
    DdInterval Term = ddiMul(DdInterval::fromPoint(Chunk),
                             pow10Interval(Exponent + Shift));
    Sum = ddiAdd(Sum, Term);
    HullSum = iAdd(HullSum, Term.outerHull());
  }
  if (Sum.hasNaN() && !HullSum.hasNaN()) {
    Sum = DdInterval::fromInterval(HullSum);
  }
  if (Negative)
    Sum = ddiNeg(Sum);
  return Sum;
}

Interval igen::intervalFromDecimal(std::string_view Text) {
  DdInterval Dd = ddIntervalFromDecimal(Text);
  if (Dd.hasNaN())
    return Interval::nan();
  return Dd.outerHull();
}
