//===- IntervalVector.h - AVX vectors of double intervals -------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The m256di_k vector-of-intervals types of Table II: an AVX register
/// holds two double-precision intervals ([ -lo0 | hi0 | -lo1 | hi1 ]) and
/// a SIMD input type of 2k doubles maps to k such registers:
///
///   __m128d          -> m256di_1   (2 intervals, 1 register)
///   __m256d, __m128  -> m256di_2   (4 intervals, 2 registers)
///   __m256           -> m256di_4   (8 intervals, 4 registers)
///
/// All interval algorithms are 128-bit-lane-local, so the IntervalSse
/// candidate schemes lift directly to AVX with in-lane permutes.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_INTERVAL_INTERVALVECTOR_H
#define IGEN_INTERVAL_INTERVALVECTOR_H

#include "interval/Interval.h"
#include "interval/IntervalSimd.h"

#include <immintrin.h>

namespace igen {

/// Two double intervals in one AVX register.
struct IntervalX2 {
  __m256d V;

  IntervalX2() : V(_mm256_setzero_pd()) {}
  explicit IntervalX2(__m256d V) : V(V) {}

  static IntervalX2 fromIntervals(const Interval &I0, const Interval &I1) {
    return IntervalX2(_mm256_set_pd(I1.Hi, I1.NegLo, I0.Hi, I0.NegLo));
  }
  static IntervalX2 broadcast(const Interval &I) {
    return fromIntervals(I, I);
  }
  /// Lifts two exact doubles to point intervals.
  static IntervalX2 fromPoints(double X0, double X1) {
    return fromIntervals(Interval::fromPoint(X0), Interval::fromPoint(X1));
  }

  Interval interval(int I) const {
    alignas(32) double Lanes[4];
    _mm256_store_pd(Lanes, V);
    return Interval(Lanes[2 * I], Lanes[2 * I + 1]);
  }

  IntervalSse half(int I) const {
    return IntervalSse(I == 0 ? _mm256_castpd256_pd128(V)
                              : _mm256_extractf128_pd(V, 1));
  }

  static IntervalX2 fromHalves(const IntervalSse &L, const IntervalSse &H) {
    return IntervalX2(
        _mm256_insertf128_pd(_mm256_castpd128_pd256(L.V), H.V, 1));
  }
};

namespace detail {

inline __m256d broadcastLo256(__m256d X) {
  return _mm256_permute_pd(X, 0b0000); // [x0,x0,x2,x2]
}
inline __m256d broadcastHi256(__m256d X) {
  return _mm256_permute_pd(X, 0b1111); // [x1,x1,x3,x3]
}
inline __m256d swapLanes256(__m256d X) {
  return _mm256_permute_pd(X, 0b0101); // [x1,x0,x3,x2]
}
inline __m256d signLoMask256() {
  return _mm256_set_pd(0.0, -0.0, 0.0, -0.0);
}
inline __m256d signHiMask256() {
  return _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
}
inline bool anyNaN256(__m256d X) {
  return _mm256_movemask_pd(_mm256_cmp_pd(X, X, _CMP_UNORD_Q)) != 0;
}

} // namespace detail

inline IntervalX2 iAdd(const IntervalX2 &X, const IntervalX2 &Y) {
  assertRoundUpward();
  return IntervalX2(_mm256_add_pd(X.V, Y.V));
}

inline IntervalX2 iNeg(const IntervalX2 &X) {
  return IntervalX2(detail::swapLanes256(X.V));
}

inline IntervalX2 iSub(const IntervalX2 &X, const IntervalX2 &Y) {
  assertRoundUpward();
  return IntervalX2(_mm256_add_pd(X.V, detail::swapLanes256(Y.V)));
}

/// Lane-local lift of the SSE interval multiplication.
inline IntervalX2 iMul(const IntervalX2 &X, const IntervalX2 &Y) {
  assertRoundUpward();
  __m256d Xn = detail::broadcastLo256(X.V);
  __m256d Xh = detail::broadcastHi256(X.V);
  __m256d Yn = detail::broadcastLo256(Y.V);
  __m256d Yh = detail::broadcastHi256(Y.V);
  __m256d YnNegLo = _mm256_xor_pd(Yn, detail::signLoMask256());
  __m256d YnNegHi = detail::swapLanes256(YnNegLo);
  __m256d XnNegHi = _mm256_xor_pd(Xn, detail::signHiMask256());
  __m256d XhNegLo = _mm256_xor_pd(Xh, detail::signLoMask256());
  __m256d V1 = _mm256_mul_pd(Xn, YnNegLo);
  __m256d V2 = _mm256_mul_pd(Xh, YnNegHi);
  __m256d V3 = _mm256_mul_pd(Yh, XnNegHi);
  __m256d V4 = _mm256_mul_pd(Yh, XhNegLo);
  __m256d Check = _mm256_add_pd(_mm256_add_pd(V1, V2),
                                _mm256_add_pd(V3, V4));
  if (__builtin_expect(detail::anyNaN256(Check), 0))
    return IntervalX2::fromIntervals(
        iMul(X.interval(0), Y.interval(0)),
        iMul(X.interval(1), Y.interval(1)));
  return IntervalX2(
      _mm256_max_pd(_mm256_max_pd(V1, V2), _mm256_max_pd(V3, V4)));
}

/// Lane-local lift of the SSE interval division; any packed divisor that
/// contains zero (or NaN) sends the whole vector to the scalar case
/// analysis, element by element.
inline IntervalX2 iDiv(const IntervalX2 &X, const IntervalX2 &Y) {
  assertRoundUpward();
  int NegMask =
      _mm256_movemask_pd(_mm256_cmp_pd(Y.V, _mm256_setzero_pd(),
                                       _CMP_LT_OQ));
  bool Fast0 = (NegMask & 0b0011) != 0;
  bool Fast1 = (NegMask & 0b1100) != 0;
  if (__builtin_expect(!(Fast0 && Fast1) || detail::anyNaN256(Y.V), 0))
    return IntervalX2::fromIntervals(
        iDiv(X.interval(0), Y.interval(0)),
        iDiv(X.interval(1), Y.interval(1)));
  __m256d Xn = detail::broadcastLo256(X.V);
  __m256d Xh = detail::broadcastHi256(X.V);
  __m256d Yn = detail::broadcastLo256(Y.V);
  __m256d Yh = detail::broadcastHi256(Y.V);
  __m256d XnNegLo = _mm256_xor_pd(Xn, detail::signLoMask256());
  __m256d XnNegHi = detail::swapLanes256(XnNegLo);
  __m256d XhNegLo = _mm256_xor_pd(Xh, detail::signLoMask256());
  __m256d YnNegHi = _mm256_xor_pd(Yn, detail::signHiMask256());
  __m256d V1 = _mm256_div_pd(XnNegLo, Yn);
  __m256d V2 = _mm256_div_pd(XnNegHi, Yh);
  __m256d V3 = _mm256_div_pd(Xh, YnNegHi);
  __m256d V4 = _mm256_div_pd(XhNegLo, Yh);
  __m256d Check = _mm256_add_pd(_mm256_add_pd(V1, V2),
                                _mm256_add_pd(V3, V4));
  if (__builtin_expect(detail::anyNaN256(Check), 0))
    return IntervalX2::fromIntervals(
        iDiv(X.interval(0), Y.interval(0)),
        iDiv(X.interval(1), Y.interval(1)));
  return IntervalX2(
      _mm256_max_pd(_mm256_max_pd(V1, V2), _mm256_max_pd(V3, V4)));
}

/// Sign-specialized division by a packed divisor whose elements are all
/// strictly positive (lo(Y) > 0 in both elements). Two packed divisions
/// replace the eight-candidate case analysis. The NaN screen sums the
/// candidates *across* the endpoint lanes so that each element sees the
/// exact scalar `iDivP` check value ((N1+N2)+(H1+H2)); the fast path and
/// the per-element scalar fallback therefore agree bit for bit.
inline IntervalX2 iDivP(const IntervalX2 &X, const IntervalX2 &Y) {
  assertRoundUpward();
  __m256d Yl = _mm256_xor_pd(detail::broadcastLo256(Y.V),
                             _mm256_set1_pd(-0.0));
  __m256d V1 = _mm256_div_pd(X.V, Yl);                      // (N1, H1)
  __m256d V2 = _mm256_div_pd(X.V, detail::broadcastHi256(Y.V)); // (N2, H2)
  __m256d C = _mm256_add_pd(V1, V2);
  __m256d Check = _mm256_add_pd(C, detail::swapLanes256(C));
  if (__builtin_expect(detail::anyNaN256(Check), 0))
    return IntervalX2::fromIntervals(
        iDivP(X.interval(0), Y.interval(0)),
        iDivP(X.interval(1), Y.interval(1)));
  return IntervalX2(_mm256_max_pd(V1, V2));
}

/// Sign-specialized division by a packed divisor whose elements are all
/// strictly negative (hi(Y) < 0 in both elements). Same cross-lane check
/// discipline as iDivP.
inline IntervalX2 iDivN(const IntervalX2 &X, const IntervalX2 &Y) {
  assertRoundUpward();
  __m256d A = detail::swapLanes256(X.V); // (Xh, Xn) per element
  __m256d Yh = _mm256_xor_pd(detail::broadcastHi256(Y.V),
                             _mm256_set1_pd(-0.0));
  __m256d V1 = _mm256_div_pd(A, Yh);                       // (N1, H1)
  __m256d V2 = _mm256_div_pd(A, detail::broadcastLo256(Y.V)); // (N2, H2)
  __m256d C = _mm256_add_pd(V1, V2);
  __m256d Check = _mm256_add_pd(C, detail::swapLanes256(C));
  if (__builtin_expect(detail::anyNaN256(Check), 0))
    return IntervalX2::fromIntervals(
        iDivN(X.interval(0), Y.interval(0)),
        iDivN(X.interval(1), Y.interval(1)));
  return IntervalX2(_mm256_max_pd(V1, V2));
}

/// Fused X*Y + C, lane-local lift of the SSE iFma: the four candidate
/// products each gain the addend lanes through one packed fma (single
/// outward rounding per candidate). Requires hardware FMA; otherwise the
/// unfused composition.
inline IntervalX2 iFma(const IntervalX2 &X, const IntervalX2 &Y,
                       const IntervalX2 &C) {
#if defined(__FMA__)
  assertRoundUpward();
  __m256d Xn = detail::broadcastLo256(X.V);
  __m256d Xh = detail::broadcastHi256(X.V);
  __m256d Yn = detail::broadcastLo256(Y.V);
  __m256d Yh = detail::broadcastHi256(Y.V);
  __m256d YnNegLo = _mm256_xor_pd(Yn, detail::signLoMask256());
  __m256d YnNegHi = detail::swapLanes256(YnNegLo);
  __m256d XnNegHi = _mm256_xor_pd(Xn, detail::signHiMask256());
  __m256d XhNegLo = _mm256_xor_pd(Xh, detail::signLoMask256());
  __m256d V1 = _mm256_fmadd_pd(Xn, YnNegLo, C.V);
  __m256d V2 = _mm256_fmadd_pd(Xh, YnNegHi, C.V);
  __m256d V3 = _mm256_fmadd_pd(Yh, XnNegHi, C.V);
  __m256d V4 = _mm256_fmadd_pd(Yh, XhNegLo, C.V);
  __m256d Check = _mm256_add_pd(_mm256_add_pd(V1, V2),
                                _mm256_add_pd(V3, V4));
  if (__builtin_expect(detail::anyNaN256(Check), 0))
    return iAdd(iMul(X, Y), C);
  return IntervalX2(
      _mm256_max_pd(_mm256_max_pd(V1, V2), _mm256_max_pd(V3, V4)));
#else
  return iAdd(iMul(X, Y), C);
#endif
}

inline IntervalX2 iSqrt(const IntervalX2 &X) {
  return IntervalX2::fromIntervals(iSqrt(X.interval(0)),
                                   iSqrt(X.interval(1)));
}

inline IntervalX2 iHull(const IntervalX2 &X, const IntervalX2 &Y) {
  if (detail::anyNaN256(X.V) || detail::anyNaN256(Y.V))
    return IntervalX2::broadcast(Interval::nan());
  return IntervalX2(_mm256_max_pd(X.V, Y.V));
}

//===----------------------------------------------------------------------===//
// k-register packs: m256di_1 / m256di_2 / m256di_4
//===----------------------------------------------------------------------===//

/// K AVX registers holding 2*K double intervals.
template <int K> struct IntervalVec {
  static_assert(K >= 1 && K <= 4, "supported packs: 1, 2, 4 registers");
  IntervalX2 Part[K];

  static constexpr int numIntervals() { return 2 * K; }

  Interval interval(int I) const { return Part[I / 2].interval(I % 2); }

  void setInterval(int I, const Interval &Val) {
    Interval Other = Part[I / 2].interval(1 - (I % 2));
    Part[I / 2] = (I % 2) == 0
                      ? IntervalX2::fromIntervals(Val, Other)
                      : IntervalX2::fromIntervals(Other, Val);
  }

  static IntervalVec broadcast(const Interval &I) {
    IntervalVec R;
    for (int P = 0; P < K; ++P)
      R.Part[P] = IntervalX2::broadcast(I);
    return R;
  }
};

using M256di1 = IntervalVec<1>;
using M256di2 = IntervalVec<2>;
using M256di4 = IntervalVec<4>;

template <int K>
inline IntervalVec<K> iAdd(const IntervalVec<K> &X, const IntervalVec<K> &Y) {
  IntervalVec<K> R;
  for (int P = 0; P < K; ++P)
    R.Part[P] = iAdd(X.Part[P], Y.Part[P]);
  return R;
}

template <int K>
inline IntervalVec<K> iSub(const IntervalVec<K> &X, const IntervalVec<K> &Y) {
  IntervalVec<K> R;
  for (int P = 0; P < K; ++P)
    R.Part[P] = iSub(X.Part[P], Y.Part[P]);
  return R;
}

template <int K>
inline IntervalVec<K> iMul(const IntervalVec<K> &X, const IntervalVec<K> &Y) {
  IntervalVec<K> R;
  for (int P = 0; P < K; ++P)
    R.Part[P] = iMul(X.Part[P], Y.Part[P]);
  return R;
}

template <int K>
inline IntervalVec<K> iDiv(const IntervalVec<K> &X, const IntervalVec<K> &Y) {
  IntervalVec<K> R;
  for (int P = 0; P < K; ++P)
    R.Part[P] = iDiv(X.Part[P], Y.Part[P]);
  return R;
}

template <int K>
inline IntervalVec<K> iFma(const IntervalVec<K> &X, const IntervalVec<K> &Y,
                           const IntervalVec<K> &C) {
  IntervalVec<K> R;
  for (int P = 0; P < K; ++P)
    R.Part[P] = iFma(X.Part[P], Y.Part[P], C.Part[P]);
  return R;
}

template <int K> inline IntervalVec<K> iNeg(const IntervalVec<K> &X) {
  IntervalVec<K> R;
  for (int P = 0; P < K; ++P)
    R.Part[P] = iNeg(X.Part[P]);
  return R;
}

template <int K> inline IntervalVec<K> iSqrt(const IntervalVec<K> &X) {
  IntervalVec<K> R;
  for (int P = 0; P < K; ++P)
    R.Part[P] = iSqrt(X.Part[P]);
  return R;
}

} // namespace igen

#endif // IGEN_INTERVAL_INTERVALVECTOR_H
