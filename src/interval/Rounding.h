//===- Rounding.h - FPU rounding-mode control -------------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control of the IEEE-754 rounding mode.
///
/// The entire interval runtime follows the classical design (Section II of
/// the paper): intervals [a, b] are stored as the pair (-a, b) and all
/// operations are performed with the FPU rounding *upward*, using the
/// identity RD(x) = -RU(-x). Only one rounding-mode switch is needed per
/// computation region instead of one per operation.
///
/// On x86-64, fesetround() sets both the x87 control word and MXCSR, so a
/// single switch covers scalar, SSE and AVX code.
///
/// The project is compiled with -frounding-math -ffp-contract=off so the
/// compiler performs no constant folding or FMA contraction that would be
/// invalid under a non-default rounding mode; RoundingTest verifies this at
/// runtime.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_INTERVAL_ROUNDING_H
#define IGEN_INTERVAL_ROUNDING_H

#include <atomic>
#include <cassert>
#include <cfenv>

namespace igen {

/// Returns true if the FPU currently rounds upward.
inline bool isRoundUpward() { return std::fegetround() == FE_UPWARD; }

namespace detail {

/// Test-only fault-injection hook (harden/FaultInject.h): when non-null it
/// runs after every rounding-scope entry with the mode the scope
/// established, so the injector can deterministically clobber the FP
/// environment "behind the runtime's back" at the Nth scope entry. Costs
/// one relaxed load + predictable branch per scope entry when disarmed.
using RoundingScopeHook = void (*)(int EnteredMode);
inline std::atomic<RoundingScopeHook> ScopeEntryHook{nullptr};

/// The rounding mode this thread's FPU is known to be in, or -1 when
/// unknown (thread start, or after foreign code may have switched modes
/// behind our back -- see invalidateRoundingCache()). An fesetround() on
/// x86-64 costs a pipeline-serializing LDMXCSR + FLDCW pair, and nested
/// scopes (every ia_* wrapper opens one) would otherwise pay it twice per
/// call even when the mode is already correct.
inline thread_local int CachedRoundingMode = -1;

/// Shared scope body: enters \p Want, skipping the fesetround() pair when
/// the cache proves the FPU is already there.
template <int Want> class CachedRoundingScope {
public:
  CachedRoundingScope() {
    if (CachedRoundingMode == Want) {
      NoOp = true;
      Saved = Want;
      // The cache is only sound if nothing switches modes without going
      // through these scopes. A stale cache (foreign fesetround) is NOT
      // asserted here: the fenv sentinel (harden/FenvSentinel.h) checks
      // the real MXCSR at sound-region entry points and repairs, poisons
      // or aborts per IGEN_FENV_POLICY, which also covers FTZ/DAZ bits a
      // mode assert could never see.
    } else {
      NoOp = false;
      Saved = std::fegetround();
      std::fesetround(Want);
      CachedRoundingMode = Want;
    }
    if (RoundingScopeHook H = ScopeEntryHook.load(std::memory_order_relaxed))
      H(Want);
  }
  ~CachedRoundingScope() {
    if (!NoOp) {
      std::fesetround(Saved);
      CachedRoundingMode = Saved;
    }
  }

  CachedRoundingScope(const CachedRoundingScope &) = delete;
  CachedRoundingScope &operator=(const CachedRoundingScope &) = delete;

private:
  int Saved;
  bool NoOp;
};

} // namespace detail

/// Forgets the cached rounding mode for the calling thread. Must be called
/// after changing the mode with a raw std::fesetround() (tests do this) so
/// the next scope re-reads the FPU instead of trusting a stale cache.
inline void invalidateRoundingCache() { detail::CachedRoundingMode = -1; }

/// RAII scope that switches the FPU to upward rounding and restores the
/// previous mode on destruction. All interval operations must execute
/// inside such a scope (asserted in debug builds by the hot operations).
/// Re-entering the mode the thread is already in skips the fesetround()
/// pair entirely (see detail::CachedRoundingMode; the elem bench reports
/// the saved toggle cost).
class RoundUpwardScope : public detail::CachedRoundingScope<FE_UPWARD> {};

/// RAII scope that switches to round-to-nearest (used around libm calls in
/// the elementary functions and around error-free transformations in the
/// expansion oracle, which are only exact in round-to-nearest).
class RoundNearestScope : public detail::CachedRoundingScope<FE_TONEAREST> {};

/// Asserted by interval operations; compiled out of release builds. Kept as
/// a macro-free inline so hot code reads naturally.
inline void assertRoundUpward() {
  assert(isRoundUpward() && "interval op outside a RoundUpwardScope");
}

/// Optimization barrier pinning a floating-point value at this program
/// point. GCC's -frounding-math does not treat fesetround() as a
/// scheduling barrier, so code that computes under a *locally switched*
/// mode must route its inputs through this to prevent hoisting above the
/// mode switch. (Code running under the caller-established upward mode
/// needs no barriers.)
inline double opaque(double X) {
  asm volatile("" : "+x"(X) : : "memory");
  return X;
}

} // namespace igen

#endif // IGEN_INTERVAL_ROUNDING_H
