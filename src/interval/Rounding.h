//===- Rounding.h - FPU rounding-mode control -------------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control of the IEEE-754 rounding mode.
///
/// The entire interval runtime follows the classical design (Section II of
/// the paper): intervals [a, b] are stored as the pair (-a, b) and all
/// operations are performed with the FPU rounding *upward*, using the
/// identity RD(x) = -RU(-x). Only one rounding-mode switch is needed per
/// computation region instead of one per operation.
///
/// On x86-64, fesetround() sets both the x87 control word and MXCSR, so a
/// single switch covers scalar, SSE and AVX code.
///
/// The project is compiled with -frounding-math -ffp-contract=off so the
/// compiler performs no constant folding or FMA contraction that would be
/// invalid under a non-default rounding mode; RoundingTest verifies this at
/// runtime.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_INTERVAL_ROUNDING_H
#define IGEN_INTERVAL_ROUNDING_H

#include <cassert>
#include <cfenv>

namespace igen {

/// Returns true if the FPU currently rounds upward.
inline bool isRoundUpward() { return std::fegetround() == FE_UPWARD; }

/// RAII scope that switches the FPU to upward rounding and restores the
/// previous mode on destruction. All interval operations must execute
/// inside such a scope (asserted in debug builds by the hot operations).
class RoundUpwardScope {
public:
  RoundUpwardScope() : Saved(std::fegetround()) {
    std::fesetround(FE_UPWARD);
  }
  ~RoundUpwardScope() { std::fesetround(Saved); }

  RoundUpwardScope(const RoundUpwardScope &) = delete;
  RoundUpwardScope &operator=(const RoundUpwardScope &) = delete;

private:
  int Saved;
};

/// RAII scope that switches to round-to-nearest (used around libm calls in
/// the elementary functions and around error-free transformations in the
/// expansion oracle, which are only exact in round-to-nearest).
class RoundNearestScope {
public:
  RoundNearestScope() : Saved(std::fegetround()) {
    std::fesetround(FE_TONEAREST);
  }
  ~RoundNearestScope() { std::fesetround(Saved); }

  RoundNearestScope(const RoundNearestScope &) = delete;
  RoundNearestScope &operator=(const RoundNearestScope &) = delete;

private:
  int Saved;
};

/// Asserted by interval operations; compiled out of release builds. Kept as
/// a macro-free inline so hot code reads naturally.
inline void assertRoundUpward() {
  assert(isRoundUpward() && "interval op outside a RoundUpwardScope");
}

/// Optimization barrier pinning a floating-point value at this program
/// point. GCC's -frounding-math does not treat fesetround() as a
/// scheduling barrier, so code that computes under a *locally switched*
/// mode must route its inputs through this to prevent hoisting above the
/// mode switch. (Code running under the caller-established upward mode
/// needs no barriers.)
inline double opaque(double X) {
  asm volatile("" : "+x"(X) : : "memory");
  return X;
}

} // namespace igen

#endif // IGEN_INTERVAL_ROUNDING_H
