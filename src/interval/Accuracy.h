//===- Accuracy.h - The paper's accuracy metric -----------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The accuracy metric of Section VII: the number of correct bits of an
/// interval is the precision (53 for double, 106 for double-double) minus
/// the loss, where the loss is log2 of the number of representable values
/// of the corresponding precision contained in the interval. Intuitively:
/// the number of leading mantissa bits shared by the two endpoints.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_INTERVAL_ACCURACY_H
#define IGEN_INTERVAL_ACCURACY_H

#include "interval/DdInterval.h"
#include "interval/Interval.h"
#include "interval/Ulp.h"

#include <algorithm>
#include <cmath>

namespace igen {

/// Correct bits of a double-precision interval in [0, 53].
inline double accuracyBits(const Interval &X) {
  if (X.hasNaN())
    return 0.0;
  double Lo = -X.NegLo, Hi = X.Hi;
  if (std::isinf(Lo) || std::isinf(Hi))
    return 0.0;
  if (Lo == Hi)
    return 53.0;
  double Count = static_cast<double>(ulpDistance(Lo, Hi)) + 1.0;
  double Loss = std::log2(Count);
  return std::clamp(53.0 - Loss, 0.0, 53.0);
}

/// Correct bits of a double-double interval in [0, 106]. The number of
/// double-double values in the interval is estimated as
/// width / (|mid| * 2^-105), the spacing of double-double values near mid.
inline double accuracyBits(const DdInterval &X) {
  if (X.hasNaN())
    return 0.0;
  if (X.NegLo.isInf() || X.Hi.isInf())
    return 0.0;
  // width = hi - lo = Hi + NegLo, evaluated in plain double arithmetic
  // (the metric needs ~10 good bits, not soundness).
  double Width = (X.Hi.H + X.NegLo.H) + (X.Hi.L + X.NegLo.L);
  if (Width <= 0.0)
    return 106.0;
  double Mid = std::fabs(X.Hi.H - 0.5 * Width);
  if (Mid == 0.0)
    Mid = std::numeric_limits<double>::min();
  double Count = Width / (Mid * 0x1p-105) + 1.0;
  double Loss = std::log2(Count);
  return std::clamp(106.0 - Loss, 0.0, 106.0);
}

} // namespace igen

#endif // IGEN_INTERVAL_ACCURACY_H
