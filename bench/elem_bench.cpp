//===- elem_bench.cpp - Elementary-function kernel benchmark ----------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Measures the certified polynomial elementary kernels against the
// libm-widened baseline, per function and per dispatch tier, at 2^16
// intervals (the working-set size of the PR acceptance criteria):
//
//   elem,<fn>_libm_scalar   loop of iExp/iLog/iSin/iCos (fesetround and
//                           a libm call per endpoint)
//   elem,<fn>_poly_scalar   loop of iExpFast/... (ambient-mode polynomial)
//   elem,<fn>_batch_<isa>   iarr_<fn> with the tier forced
//
// The value column is intervals per cycle (higher is better); the JSON
// rows also carry raw cycles so ratios can be recomputed. Two extra rows
// measure the satellite-1 rounding-scope cache: entering a
// RoundNearestScope from upward mode costs two fesetround switches,
// entering a redundant RoundUpwardScope costs only the thread-local
// check.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "interval/Elementary.h"
#include "interval/PolyKernels.h"
#include "runtime/BatchKernels.h"

#include <cstdio>

using namespace igen;
using namespace igen::bench;
using namespace igen::runtime;

namespace {

struct ElemRow {
  const char *Name;
  Interval (*Libm)(const Interval &);
  Interval (*Poly)(const Interval &);
  void (*Arr)(Interval *, const Interval *, size_t);
  double Lo, Hi; // input range (inside the fast domain)
};

const ElemRow Fns[] = {
    {"exp", iExp, iExpFast, iarr_exp, -80.0, 80.0},
    {"log", iLog, iLogFast, iarr_log, 1e-3, 1e3},
    {"sin", iSin, iSinFast, iarr_sin, -1000.0, 1000.0},
    {"cos", iCos, iCosFast, iarr_cos, -1000.0, 1000.0},
};

/// Rounding-scope micro-bench (satellite of the cached-mode change in
/// Rounding.h): cycles for Iters scope entries+exits of each flavor.
uint64_t scopeToggleCycles(int Iters) {
  RoundUpwardScope Up;
  return minCycles([&] {
    double Acc = 0.0;
    for (int I = 0; I < Iters; ++I) {
      RoundNearestScope Near; // mode differs: two fesetround calls
      Acc += 1.0;
    }
    opaque(Acc);
  });
}

uint64_t scopeCachedCycles(int Iters) {
  RoundUpwardScope Up;
  return minCycles([&] {
    double Acc = 0.0;
    for (int I = 0; I < Iters; ++I) {
      RoundUpwardScope Redundant; // cached mode matches: no fesetround
      Acc += 1.0;
    }
    opaque(Acc);
  });
}

} // namespace

int main(int Argc, char **Argv) {
  const char *JsonPath = jsonPathArg(Argc, Argv);
  JsonReport Report;
  JsonReport *Rep = JsonPath ? &Report : nullptr;
  std::printf("table,config,size,intervals_per_cycle\n");

  const int N = 1 << 16;
  std::vector<Interval> X(N), D(N);

  for (const ElemRow &F : Fns) {
    Rng G(benchSeed("elem", F.Name, N));
    fillUlpIntervals(X.data(), N, G, F.Lo, F.Hi);
    std::string Base = F.Name;

    uint64_t CLibm, CPoly;
    {
      RoundUpwardScope Up;
      CLibm = minCycles([&] {
        for (int I = 0; I < N; ++I)
          D[I] = F.Libm(X[I]);
      });
      CPoly = minCycles([&] {
        for (int I = 0; I < N; ++I)
          D[I] = F.Poly(X[I]);
      });
    }
    reportRow(Rep, "elem", (Base + "_libm_scalar").c_str(), N, CLibm, N);
    reportRow(Rep, "elem", (Base + "_poly_scalar").c_str(), N, CPoly, N);

    for (int T = 0; T < NumIsas; ++T) {
      Isa Tier = static_cast<Isa>(T);
      if (!isaSupported(Tier))
        continue;
      forceIsa(Tier);
      uint64_t C = minCycles([&] { F.Arr(D.data(), X.data(), N); });
      clearForcedIsa();
      reportRow(Rep, "elem",
                (Base + "_batch_" + isaName(Tier)).c_str(), N, C, N);
    }
  }

  const int ScopeIters = 1 << 16;
  reportRow(Rep, "rounding", "scope_toggle", ScopeIters,
            scopeToggleCycles(ScopeIters), ScopeIters);
  reportRow(Rep, "rounding", "scope_cached", ScopeIters,
            scopeCachedCycles(ScopeIters), ScopeIters);

  if (JsonPath && !Report.writeTo(JsonPath)) {
    std::fprintf(stderr, "elem_bench: cannot write %s\n", JsonPath);
    return 1;
  }
  return 0;
}
