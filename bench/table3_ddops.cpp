//===- table3_ddops.cpp - Table III: costs of double-double operations ---------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Table III: flops per double-double interval operation and the intrinsic
// counts of the vectorized implementations. Flops are *measured* with the
// counting operation policy (an FMA counts as two flops, comparisons are
// not flops); intrinsic counts of the AVX implementations are static
// properties of the code in DdSimd.h, tabulated here next to the paper's
// numbers. Our multiplication uses FMA-based TwoProd instead of Dekker
// splitting (DESIGN.md substitution 8), so its flop count is lower than
// the paper's.
//
//===----------------------------------------------------------------------===//

#include "interval/DdInterval.h"
#include "interval/DoubleDouble.h"
#include "interval/Rounding.h"

#include <cstdio>

using namespace igen;

namespace {

/// Counts flops of one endpoint-level dd op via the counting policy.
template <typename Fn> uint64_t countFlops(Fn Op) {
  CountingOps::reset();
  Op();
  return CountingOps::flops();
}

} // namespace

int main() {
  RoundUpwardScope Up;
  Dd X(1.25, 3e-18), Y(2.5, -1e-17);

  // Per-endpoint counts; an interval operation runs the endpoint
  // algorithm twice (add) or per candidate (mul: 8 candidates, div: 2
  // sign-selected quotients).
  uint64_t AddEp = countFlops([&] { (void)ddAddUp<CountingOps>(X, Y); });
  uint64_t MulEp = countFlops([&] { (void)ddMulUp<CountingOps>(X, Y); });
  uint64_t DivEp = countFlops([&] { (void)ddDivUp<CountingOps>(X, Y); });

  std::printf("table,operation,metric,ours,paper\n");
  std::printf("table3,addition,flops,%llu,40\n",
              (unsigned long long)(2 * AddEp));
  std::printf("table3,multiplication,flops,%llu,114\n",
              (unsigned long long)(8 * MulEp));
  std::printf("table3,division,flops,%llu,158\n",
              (unsigned long long)(2 * DivEp));

  // Intrinsic counts of the AVX implementations (static; see DdSimd.h).
  // Addition: twoSum256(6) + 2 adds + 2 fastTwoSum256(3) + 3 shuffles.
  std::printf("table3,addition,arith-intrinsics,14,14\n");
  std::printf("table3,addition,shuffles,3,3\n");
  std::printf("table3,addition,total-intrinsics,17,17\n");
  // Multiplication: 4 x ddPairMulUp(12 arith + 4 shuffles) + operand
  // setup (4 dups + 4 xors) + 3 ddPairMax(4 arith-ish + 2 shuffles).
  std::printf("table3,multiplication,arith-intrinsics,%d,27\n",
              4 * 12 + 3 * 4);
  std::printf("table3,multiplication,shuffles,%d,29\n",
              4 * 4 + 8 + 3 * 2);
  std::printf("table3,multiplication,total-intrinsics,%d,56\n",
              4 * 12 + 3 * 4 + 4 * 4 + 8 + 3 * 2);
  // Division: scalar sign-case path in this implementation.
  std::printf("table3,division,total-intrinsics,scalar-path,85\n");
  return 0;
}
