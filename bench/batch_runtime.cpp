//===- batch_runtime.cpp - Batched array runtime: scalar vs SIMD vs par ---===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Measures the batched interval array runtime (src/runtime/) against
// hand-written scalar-Interval loops:
//
//   scalar-loop        per-element iAdd/iMul/... over Interval; the dot
//                      baseline accumulates with SumAccumulatorF64
//   scalar/sse2/avx/avx2
//                      the dispatched iarr_* kernels pinned to one ISA
//                      tier via forceIsa()
//   par-t1/t2/t4       iarr_sum_par / iarr_dot_par at a fixed thread
//                      count (bit-identical to each other by design)
//
// Rows are "kernel,config,size,iops_per_cycle" on stdout; --json <path>
// additionally writes machine-readable rows (BENCH_batch.json in CI).
// Interval op counts: add/sub/scale = N, mul/fma = N, sum = N, dot = 2N.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "interval/Accumulator.h"
#include "interval/Rounding.h"
#include "runtime/BatchKernels.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace igen;
using namespace igen::bench;
using namespace igen::runtime;

namespace {

JsonReport *Report = nullptr;

/// Cache-line-aligned interval array (the runtime's streaming-store path
/// engages on aligned destinations).
struct AlignedArray {
  Interval *P = nullptr;
  explicit AlignedArray(int N)
      : P(static_cast<Interval *>(
            std::aligned_alloc(64, static_cast<size_t>(N) * sizeof(Interval)))) {}
  ~AlignedArray() { std::free(P); }
  AlignedArray(const AlignedArray &) = delete;
  AlignedArray &operator=(const AlignedArray &) = delete;
};

struct Inputs {
  AlignedArray X, Y, C, Dst;

  explicit Inputs(int N, uint64_t Seed) : X(N), Y(N), C(N), Dst(N) {
    Rng R(Seed);
    // Benign centers (|c| in [0.25, 2]): no overflow, no zero products,
    // so every ISA tier takes its fast path.
    for (int K = 0; K < N; ++K) {
      double A = R.uniform(0.25, 2.0) * (R.uniform(-1.0, 1.0) < 0 ? -1 : 1);
      double B = R.uniform(0.25, 2.0) * (R.uniform(-1.0, 1.0) < 0 ? -1 : 1);
      double D = R.uniform(0.25, 2.0);
      X.P[K] = Interval::fromEndpoints(A, nextUp(A));
      Y.P[K] = Interval::fromEndpoints(B, nextUp(B));
      C.P[K] = Interval::fromEndpoints(D, nextUp(D));
    }
  }
};

volatile double Sink; // defeats dead-code elimination of reductions

void benchRow(const char *Kernel, const char *Config, int N, double Iops,
              const std::function<void()> &Fn) {
  // Best-of-N rather than the paper's median: these rows feed ratio
  // checks, and on single-vCPU hosts the median still carries ±15%
  // one-sided scheduling noise.
  uint64_t Cycles = minCycles(Fn, 15);
  reportRow(Report, Kernel, Config, N, Cycles, Iops);
}

/// Hand-written baselines: the status quo this runtime replaces.
void runScalarLoops(Inputs &In, int N) {
  Interval *Dst = In.Dst.P;
  const Interval *X = In.X.P, *Y = In.Y.P, *C = In.C.P;
  benchRow("batch-add", "scalar-loop", N, N, [&] {
    RoundUpwardScope Up;
    for (int K = 0; K < N; ++K)
      Dst[K] = iAdd(X[K], Y[K]);
  });
  benchRow("batch-mul", "scalar-loop", N, N, [&] {
    RoundUpwardScope Up;
    for (int K = 0; K < N; ++K)
      Dst[K] = iMul(X[K], Y[K]);
  });
  benchRow("batch-fma", "scalar-loop", N, N, [&] {
    RoundUpwardScope Up;
    for (int K = 0; K < N; ++K)
      Dst[K] = iAdd(iMul(X[K], Y[K]), C[K]);
  });
  benchRow("batch-sum", "scalar-loop", N, N, [&] {
    RoundUpwardScope Up;
    SumAccumulatorF64 Acc;
    Acc.init(X[0]);
    for (int K = 1; K < N; ++K)
      Acc.accumulate(X[K]);
    Sink = Acc.reduce().Hi;
  });
  benchRow("batch-dot", "scalar-loop", N, 2.0 * N, [&] {
    RoundUpwardScope Up;
    SumAccumulatorF64 Acc;
    Acc.init(iMul(X[0], Y[0]));
    for (int K = 1; K < N; ++K)
      Acc.accumulate(iMul(X[K], Y[K]));
    Sink = Acc.reduce().Hi;
  });
}

/// The dispatched kernels, pinned to one ISA tier.
void runDispatched(Inputs &In, int N, Isa Tier) {
  forceIsa(Tier);
  const char *Config = isaName(Tier);
  Interval *Dst = In.Dst.P;
  const Interval *X = In.X.P, *Y = In.Y.P, *C = In.C.P;
  benchRow("batch-add", Config, N, N,
           [&] { iarr_add(Dst, X, Y, N); });
  benchRow("batch-mul", Config, N, N,
           [&] { iarr_mul(Dst, X, Y, N); });
  benchRow("batch-fma", Config, N, N,
           [&] { iarr_fma(Dst, X, Y, C, N); });
  benchRow("batch-sum", Config, N, N,
           [&] { Sink = iarr_sum(X, N).Hi; });
  benchRow("batch-dot", Config, N, 2.0 * N,
           [&] { Sink = iarr_dot(X, Y, N).Hi; });
  clearForcedIsa();
}

/// Sentinel overhead: the same kernels with the iarr_* entry checks
/// (fenv sentinel, aliasing guard, fault-injection gate) bypassed by
/// calling the dispatched kernel table directly. The nosentinel rows
/// exist only as the denominator for the <1% overhead claim in
/// DESIGN.md; production code must never skip the wrappers.
void runSentinelOverhead(Inputs &In, int N) {
  Interval *Dst = In.Dst.P;
  const Interval *X = In.X.P, *Y = In.Y.P, *C = In.C.P;
  benchRow("batch-add", "nosentinel", N, N, [&] {
    RoundUpwardScope Up;
    kernels().Add(Dst, X, Y, N);
  });
  benchRow("batch-mul", "nosentinel", N, N, [&] {
    RoundUpwardScope Up;
    kernels().Mul(Dst, X, Y, N);
  });
  benchRow("batch-fma", "nosentinel", N, N, [&] {
    RoundUpwardScope Up;
    kernels().Fma(Dst, X, Y, C, N);
  });
  // The guarded counterparts on the same (auto-detected) tier, labeled
  // distinctly so the JSON consumer can pair them up.
  benchRow("batch-add", "sentinel", N, N, [&] { iarr_add(Dst, X, Y, N); });
  benchRow("batch-mul", "sentinel", N, N, [&] { iarr_mul(Dst, X, Y, N); });
  benchRow("batch-fma", "sentinel", N, N,
           [&] { iarr_fma(Dst, X, Y, C, N); });
}

/// Parallel reductions on the auto-detected tier.
void runParallel(Inputs &In, int N) {
  const Interval *X = In.X.P, *Y = In.Y.P;
  for (unsigned T : {1u, 2u, 4u}) {
    char Config[16];
    std::snprintf(Config, sizeof(Config), "par-t%u", T);
    benchRow("batch-sum", Config, N, N,
             [&] { Sink = iarr_sum_par(X, N, T).Hi; });
    benchRow("batch-dot", Config, N, 2.0 * N,
             [&] { Sink = iarr_dot_par(X, Y, N, T).Hi; });
  }
}

} // namespace

int main(int Argc, char **Argv) {
  const char *JsonPath = jsonPathArg(Argc, Argv);
  JsonReport Json;
  if (JsonPath)
    Report = &Json;

  std::printf("kernel,config,size,iops_per_cycle\n");
  for (int N : {1 << 12, 1 << 16, 1 << 18}) {
    Inputs In(N, benchSeed("batch", "inputs", N));
    runScalarLoops(In, N);
    for (int T = 0; T < NumIsas; ++T)
      if (isaSupported(static_cast<Isa>(T)))
        runDispatched(In, N, static_cast<Isa>(T));
    if (N == 1 << 16)
      runSentinelOverhead(In, N);
    runParallel(In, N);
  }

  if (JsonPath && !Json.writeTo(JsonPath)) {
    std::fprintf(stderr, "batch_runtime: cannot write %s\n", JsonPath);
    return 1;
  }
  return 0;
}
