//===- batch_runtime.cpp - Batched array runtime: scalar vs SIMD vs par ---===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Measures the batched interval array runtime (src/runtime/) against
// hand-written scalar-Interval loops:
//
//   scalar-loop        per-element iAdd/iMul/iDiv/iSqrt/... over
//                      Interval; the dot baseline accumulates with
//                      SumAccumulatorF64; the dd-* baselines loop the
//                      scalar ddi operations
//   scalar/sse2/avx/avx2/avx512
//                      the dispatched iarr_*/ddarr_* kernels pinned to
//                      one ISA tier via forceIsa() (the per-size loop is
//                      the ISA sweep: every tier the CPU supports gets
//                      its own rows)
//   par-t1/t2/t4       iarr_sum_par / iarr_dot_par at a fixed thread
//                      count (bit-identical to each other by design)
//
// The div rows divide by strictly positive divisors: a benign pack of
// one divisor class keeps every tier on its sign-specialized fast path,
// which is the case the transformer emits after value-range analysis.
//
// Rows are "kernel,config,size,iops_per_cycle" on stdout; --json <path>
// additionally writes machine-readable rows (BENCH_batch.json in CI).
// Interval op counts: add/sub/scale = N, mul/fma/div/sqrt = N, sum = N,
// dot = 2N; dd rows count ddi operations the same way.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "interval/Accumulator.h"
#include "interval/Rounding.h"
#include "runtime/BatchKernels.h"
#include "runtime/DdBatch.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace igen;
using namespace igen::bench;
using namespace igen::runtime;

namespace {

JsonReport *Report = nullptr;

/// Cache-line-aligned interval array (the runtime's streaming-store path
/// engages on aligned destinations).
struct AlignedArray {
  Interval *P = nullptr;
  explicit AlignedArray(int N)
      : P(static_cast<Interval *>(
            std::aligned_alloc(64, static_cast<size_t>(N) * sizeof(Interval)))) {}
  ~AlignedArray() { std::free(P); }
  AlignedArray(const AlignedArray &) = delete;
  AlignedArray &operator=(const AlignedArray &) = delete;
};

struct Inputs {
  AlignedArray X, Y, C, Dst;

  explicit Inputs(int N, uint64_t Seed) : X(N), Y(N), C(N), Dst(N) {
    Rng R(Seed);
    // Benign centers (|c| in [0.25, 2]): no overflow, no zero products,
    // so every ISA tier takes its fast path.
    for (int K = 0; K < N; ++K) {
      double A = R.uniform(0.25, 2.0) * (R.uniform(-1.0, 1.0) < 0 ? -1 : 1);
      double B = R.uniform(0.25, 2.0) * (R.uniform(-1.0, 1.0) < 0 ? -1 : 1);
      double D = R.uniform(0.25, 2.0);
      X.P[K] = Interval::fromEndpoints(A, nextUp(A));
      Y.P[K] = Interval::fromEndpoints(B, nextUp(B));
      C.P[K] = Interval::fromEndpoints(D, nextUp(D));
    }
  }
};

volatile double Sink; // defeats dead-code elimination of reductions

void benchRow(const char *Kernel, const char *Config, int N, double Iops,
              const std::function<void()> &Fn) {
  // Best-of-N rather than the paper's median: these rows feed ratio
  // checks, and on single-vCPU hosts the median still carries ±15%
  // one-sided scheduling noise.
  uint64_t Cycles = minCycles(Fn, 15);
  reportRow(Report, Kernel, Config, N, Cycles, Iops);
}

/// Hand-written baselines: the status quo this runtime replaces.
void runScalarLoops(Inputs &In, int N) {
  Interval *Dst = In.Dst.P;
  const Interval *X = In.X.P, *Y = In.Y.P, *C = In.C.P;
  benchRow("batch-add", "scalar-loop", N, N, [&] {
    RoundUpwardScope Up;
    for (int K = 0; K < N; ++K)
      Dst[K] = iAdd(X[K], Y[K]);
  });
  benchRow("batch-mul", "scalar-loop", N, N, [&] {
    RoundUpwardScope Up;
    for (int K = 0; K < N; ++K)
      Dst[K] = iMul(X[K], Y[K]);
  });
  benchRow("batch-fma", "scalar-loop", N, N, [&] {
    RoundUpwardScope Up;
    for (int K = 0; K < N; ++K)
      Dst[K] = iAdd(iMul(X[K], Y[K]), C[K]);
  });
  benchRow("batch-sum", "scalar-loop", N, N, [&] {
    RoundUpwardScope Up;
    SumAccumulatorF64 Acc;
    Acc.init(X[0]);
    for (int K = 1; K < N; ++K)
      Acc.accumulate(X[K]);
    Sink = Acc.reduce().Hi;
  });
  benchRow("batch-dot", "scalar-loop", N, 2.0 * N, [&] {
    RoundUpwardScope Up;
    SumAccumulatorF64 Acc;
    Acc.init(iMul(X[0], Y[0]));
    for (int K = 1; K < N; ++K)
      Acc.accumulate(iMul(X[K], Y[K]));
    Sink = Acc.reduce().Hi;
  });
  // The generic iDiv is the status quo a compiler without sign analysis
  // emits; C is strictly positive, so this measures its full candidate
  // set against the kernels' classified path.
  benchRow("batch-div", "scalar-loop", N, N, [&] {
    RoundUpwardScope Up;
    for (int K = 0; K < N; ++K)
      Dst[K] = iDiv(X[K], C[K]);
  });
  benchRow("batch-sqrt", "scalar-loop", N, N, [&] {
    RoundUpwardScope Up;
    for (int K = 0; K < N; ++K)
      Dst[K] = iSqrt(C[K]);
  });
}

/// The dispatched kernels, pinned to one ISA tier.
void runDispatched(Inputs &In, int N, Isa Tier) {
  forceIsa(Tier);
  const char *Config = isaName(Tier);
  Interval *Dst = In.Dst.P;
  const Interval *X = In.X.P, *Y = In.Y.P, *C = In.C.P;
  benchRow("batch-add", Config, N, N,
           [&] { iarr_add(Dst, X, Y, N); });
  benchRow("batch-mul", Config, N, N,
           [&] { iarr_mul(Dst, X, Y, N); });
  benchRow("batch-fma", Config, N, N,
           [&] { iarr_fma(Dst, X, Y, C, N); });
  benchRow("batch-sum", Config, N, N,
           [&] { Sink = iarr_sum(X, N).Hi; });
  benchRow("batch-dot", Config, N, 2.0 * N,
           [&] { Sink = iarr_dot(X, Y, N).Hi; });
  benchRow("batch-div", Config, N, N,
           [&] { iarr_div(Dst, X, C, N); });
  benchRow("batch-sqrt", Config, N, N,
           [&] { iarr_sqrt(Dst, C, N); });
  clearForcedIsa();
}

/// The batched ddi tier against per-element scalar ddi loops. Only the
/// tiers that map to distinct dd kernel tables get their own rows.
void runDdRows(Inputs &In, int N) {
  std::vector<DdInterval> X(N), Y(N), C(N), Dst(N);
  {
    RoundUpwardScope Up;
    for (int K = 0; K < N; ++K) {
      // Products of the f64i inputs populate the full dd precision.
      X[K] = ddiMul(DdInterval::fromInterval(In.X.P[K]),
                    DdInterval::fromInterval(In.C.P[K]));
      Y[K] = ddiMul(DdInterval::fromInterval(In.Y.P[K]),
                    DdInterval::fromInterval(In.C.P[K]));
      C[K] = DdInterval::fromInterval(In.C.P[K]);
    }
  }
  DdInterval *D = Dst.data();
  const DdInterval *XP = X.data(), *YP = Y.data(), *CP = C.data();

  benchRow("dd-add", "scalar-loop", N, N, [&] {
    RoundUpwardScope Up;
    for (int K = 0; K < N; ++K)
      D[K] = ddiAdd(XP[K], YP[K]);
  });
  benchRow("dd-mul", "scalar-loop", N, N, [&] {
    RoundUpwardScope Up;
    for (int K = 0; K < N; ++K)
      D[K] = ddiMul(XP[K], YP[K]);
  });
  for (Isa Tier : {Isa::Scalar, Isa::Avx2Fma}) {
    if (!isaSupported(Tier))
      continue;
    forceIsa(Tier);
    const char *Config = isaName(Tier);
    benchRow("dd-add", Config, N, N, [&] { ddarr_add(D, XP, YP, N); });
    benchRow("dd-mul", Config, N, N, [&] { ddarr_mul(D, XP, YP, N); });
    benchRow("dd-fma", Config, N, N,
             [&] { ddarr_fma(D, XP, YP, CP, N); });
    clearForcedIsa();
  }
  benchRow("dd-sum", "fixed", N, N,
           [&] { Sink = ddarr_sum(XP, N).Hi.H; });
  benchRow("dd-dot", "fixed", N, 2.0 * N,
           [&] { Sink = ddarr_dot(XP, YP, N).Hi.H; });
}

/// Sentinel overhead: the same kernels with the iarr_* entry checks
/// (fenv sentinel, aliasing guard, fault-injection gate) bypassed by
/// calling the dispatched kernel table directly. The nosentinel rows
/// exist only as the denominator for the <1% overhead claim in
/// DESIGN.md; production code must never skip the wrappers.
void runSentinelOverhead(Inputs &In, int N) {
  Interval *Dst = In.Dst.P;
  const Interval *X = In.X.P, *Y = In.Y.P, *C = In.C.P;
  benchRow("batch-add", "nosentinel", N, N, [&] {
    RoundUpwardScope Up;
    kernels().Add(Dst, X, Y, N);
  });
  benchRow("batch-mul", "nosentinel", N, N, [&] {
    RoundUpwardScope Up;
    kernels().Mul(Dst, X, Y, N);
  });
  benchRow("batch-fma", "nosentinel", N, N, [&] {
    RoundUpwardScope Up;
    kernels().Fma(Dst, X, Y, C, N);
  });
  // The guarded counterparts on the same (auto-detected) tier, labeled
  // distinctly so the JSON consumer can pair them up.
  benchRow("batch-add", "sentinel", N, N, [&] { iarr_add(Dst, X, Y, N); });
  benchRow("batch-mul", "sentinel", N, N, [&] { iarr_mul(Dst, X, Y, N); });
  benchRow("batch-fma", "sentinel", N, N,
           [&] { iarr_fma(Dst, X, Y, C, N); });
}

/// Parallel reductions on the auto-detected tier.
void runParallel(Inputs &In, int N) {
  const Interval *X = In.X.P, *Y = In.Y.P;
  for (unsigned T : {1u, 2u, 4u}) {
    char Config[16];
    std::snprintf(Config, sizeof(Config), "par-t%u", T);
    benchRow("batch-sum", Config, N, N,
             [&] { Sink = iarr_sum_par(X, N, T).Hi; });
    benchRow("batch-dot", Config, N, 2.0 * N,
             [&] { Sink = iarr_dot_par(X, Y, N, T).Hi; });
  }
}

} // namespace

int main(int Argc, char **Argv) {
  const char *JsonPath = jsonPathArg(Argc, Argv);
  JsonReport Json;
  if (JsonPath)
    Report = &Json;

  std::printf("kernel,config,size,iops_per_cycle\n");
  for (int N : {1 << 12, 1 << 16, 1 << 18}) {
    Inputs In(N, benchSeed("batch", "inputs", N));
    runScalarLoops(In, N);
    for (int T = 0; T < NumIsas; ++T)
      if (isaSupported(static_cast<Isa>(T)))
        runDispatched(In, N, static_cast<Isa>(T));
    if (N == 1 << 16)
      runSentinelOverhead(In, N);
    runDdRows(In, N);
    runParallel(In, N);
  }

  if (JsonPath && !Json.writeTo(JsonPath)) {
    std::fprintf(stderr, "batch_runtime: cannot write %s\n", JsonPath);
    return 1;
  }
  return 0;
}
