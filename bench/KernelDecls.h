//===- KernelDecls.h - Declarations of generated kernel variants -*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prototypes of the benchmark kernels in every compiled configuration.
/// The definitions are produced at build time: the sources in
/// bench/kernels/ are prefix-renamed per configuration and either compiled
/// natively (base_/basev_) or translated by the igen driver
/// (sv_/ss_/vv_/svdd_/vvdd_/svred_/svddred_); see bench/CMakeLists.txt.
///
/// Interval types by configuration (Table II):
///   sv_, vv_      f64i == igen::IntervalSse, ddi == igen::DdIntervalAvx
///   ss_           f64i == igen::Interval (scalar pairs)
///   svdd_, vvdd_  ddi  == igen::DdIntervalAvx
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_BENCH_KERNELDECLS_H
#define IGEN_BENCH_KERNELDECLS_H

#include "interval/DdSimd.h"
#include "interval/Interval.h"
#include "interval/IntervalSimd.h"

using igen::DdInterval;
using igen::DdIntervalAvx;
using igen::Interval;
using igen::IntervalSse;

// --------------------------------------------------------------------------
// Non-interval baselines (the paper's "original unsound program").
// --------------------------------------------------------------------------
void base_fft(double *re, double *im, const double *wre,
              const double *wim, int *rev, int n);
void basev_fft(double *re, double *im, const double *wre,
               const double *wim, int *rev, int n);
void base_gemm(double *C, const double *A, const double *B, int n);
void basev_gemm(double *C, const double *A, const double *B, int n);
void base_potrf(double *A, int n);
void basev_potrf(double *A, int n);
void base_ffnn(const double *W, const double *b, double *buf0,
               double *buf1, int n, int layers);
void basev_ffnn(const double *W, const double *b, double *buf0,
                double *buf1, int n, int layers);
void base_mvm(const double *A, const double *x, double *y, int m, int n);
double base_henon(double x, double y, int iterations);
double base_horner(const double *coef, double x, int d);
double base_pade(const double *xs, double *out, int n);

// --------------------------------------------------------------------------
// IGen-sv: scalar input -> SSE-backed double intervals.
// --------------------------------------------------------------------------
void sv_fft(IntervalSse *re, IntervalSse *im, IntervalSse *wre,
            IntervalSse *wim, int *rev, int n);
void sv_gemm(IntervalSse *C, IntervalSse *A, IntervalSse *B, int n);
void sv_potrf(IntervalSse *A, int n);
void sv_ffnn(IntervalSse *W, IntervalSse *b, IntervalSse *buf0,
             IntervalSse *buf1, int n, int layers);
void sv_mvm(IntervalSse *A, IntervalSse *x, IntervalSse *y, int m, int n);
void svred_mvm(IntervalSse *A, IntervalSse *x, IntervalSse *y, int m,
               int n);
IntervalSse sv_henon(IntervalSse x, IntervalSse y, int iterations);
IntervalSse sv_horner(IntervalSse *coef, IntervalSse x, int d);
IntervalSse sv_pade(IntervalSse *xs, IntervalSse *out, int n);
IntervalSse sv_gauss(IntervalSse *xs, IntervalSse *out, int n);

// --------------------------------------------------------------------------
// IGen-sv with the mid-end optimizer disabled (-O0), for the Table V
// optimizer-comparison rows.
// --------------------------------------------------------------------------
void sv0_gemm(IntervalSse *C, IntervalSse *A, IntervalSse *B, int n);
void sv0_mvm(IntervalSse *A, IntervalSse *x, IntervalSse *y, int m,
             int n);
IntervalSse sv0_henon(IntervalSse x, IntervalSse y, int iterations);
IntervalSse sv0_horner(IntervalSse *coef, IntervalSse x, int d);
IntervalSse sv0_pade(IntervalSse *xs, IntervalSse *out, int n);
IntervalSse sv0_gauss(IntervalSse *xs, IntervalSse *out, int n);

// --------------------------------------------------------------------------
// IGen-sv with --profile instrumentation (precision profiler overhead
// rows of Table V).
// --------------------------------------------------------------------------
void svp_gemm(IntervalSse *C, IntervalSse *A, IntervalSse *B, int n);
void svp_mvm(IntervalSse *A, IntervalSse *x, IntervalSse *y, int m,
             int n);
IntervalSse svp_henon(IntervalSse x, IntervalSse y, int iterations);
IntervalSse svp_horner(IntervalSse *coef, IntervalSse x, int d);
IntervalSse svp_pade(IntervalSse *xs, IntervalSse *out, int n);

// --------------------------------------------------------------------------
// IGen-svt: adaptive precision tiering (--tier). The wrapper under the
// kernel name runs at f64i speed and escalates on blowup; the emitted
// ddi clone (__dd suffix) stays directly callable and doubles as the
// always-double-double baseline. Array parameters keep the f64i memory
// ABI even in the clone.
// --------------------------------------------------------------------------
IntervalSse svt_henon(IntervalSse x, IntervalSse y, int iterations);
DdIntervalAvx svt_henon__dd(DdIntervalAvx x, DdIntervalAvx y,
                            int iterations);
IntervalSse svt_gauss(IntervalSse *xs, IntervalSse *out, int n);
DdIntervalAvx svt_gauss__dd(IntervalSse *xs, IntervalSse *out, int n);
IntervalSse sv_envmax(IntervalSse *xs, int n);
IntervalSse svt_envmax(IntervalSse *xs, int n);

// --------------------------------------------------------------------------
// IGen-ss: scalar input -> scalar double intervals.
// --------------------------------------------------------------------------
void ss_fft(Interval *re, Interval *im, Interval *wre, Interval *wim,
            int *rev, int n);
void ss_gemm(Interval *C, Interval *A, Interval *B, int n);
void ss_potrf(Interval *A, int n);
void ss_ffnn(Interval *W, Interval *b, Interval *buf0, Interval *buf1,
             int n, int layers);
Interval ss_henon(Interval x, Interval y, int iterations);

// --------------------------------------------------------------------------
// IGen-vv: AVX input -> AVX vector-of-interval code.
// --------------------------------------------------------------------------
void vv_fft(IntervalSse *re, IntervalSse *im, IntervalSse *wre,
            IntervalSse *wim, int *rev, int n);
void vv_gemm(IntervalSse *C, IntervalSse *A, IntervalSse *B, int n);
void vv_potrf(IntervalSse *A, int n);
void vv_ffnn(IntervalSse *W, IntervalSse *b, IntervalSse *buf0,
             IntervalSse *buf1, int n, int layers);

// --------------------------------------------------------------------------
// IGen-sv-dd / IGen-vv-dd: double-double intervals.
// --------------------------------------------------------------------------
void svdd_fft(DdIntervalAvx *re, DdIntervalAvx *im, DdIntervalAvx *wre,
              DdIntervalAvx *wim, int *rev, int n);
void svdd_gemm(DdIntervalAvx *C, DdIntervalAvx *A, DdIntervalAvx *B,
               int n);
void svdd_potrf(DdIntervalAvx *A, int n);
void svdd_ffnn(DdIntervalAvx *W, DdIntervalAvx *b, DdIntervalAvx *buf0,
               DdIntervalAvx *buf1, int n, int layers);
void svdd_mvm(DdIntervalAvx *A, DdIntervalAvx *x, DdIntervalAvx *y, int m,
              int n);
void svddred_mvm(DdIntervalAvx *A, DdIntervalAvx *x, DdIntervalAvx *y,
                 int m, int n);
DdIntervalAvx svdd_henon(DdIntervalAvx x, DdIntervalAvx y, int iterations);

void vvdd_fft(DdIntervalAvx *re, DdIntervalAvx *im, DdIntervalAvx *wre,
              DdIntervalAvx *wim, int *rev, int n);
void vvdd_gemm(DdIntervalAvx *C, DdIntervalAvx *A, DdIntervalAvx *B,
               int n);
void vvdd_potrf(DdIntervalAvx *A, int n);
void vvdd_ffnn(DdIntervalAvx *W, DdIntervalAvx *b, DdIntervalAvx *buf0,
               DdIntervalAvx *buf1, int n, int layers);

#endif // IGEN_BENCH_KERNELDECLS_H
