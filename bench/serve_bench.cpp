//===- serve_bench.cpp - igen-as-a-service amortization benchmark ---------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the persistent daemon buys over one-shot compilation
/// (DESIGN.md, "igen-as-a-service"). Frame-path rows drive ServerCore
/// in-process through the same handleFrame path the socket transport
/// uses, so they capture JSON parse + dispatch + response rendering but
/// not kernel/socket noise:
///
///   serve-compile-cold  full compile transaction (cache evicted
///                       between requests)
///   serve-compile-hit   identical request answered from the
///                       content-hash cache
///   serve-eval-hot      eval against a resident handle
///   cli-oneshot         spawning the igen binary for the same source —
///                       the one-shot CLI round-trip the daemon
///                       replaces (and that still omits the C-compiler
///                       round-trip a CLI user needs before evaluating)
///
/// The binary enforces the service's reason to exist:
///   * compile transaction: answering from the cache (content hash +
///     LRU lookup) must be >= 50x cheaper than running the pipeline,
///     measured at the transaction layer both request kinds share the
///     JSON framing above.
///   * evaluation: a hot serve-mode eval must be >= 10x cheaper than
///     the one-shot CLI round-trip on repeated small kernels.
/// It exits 1 when either amortization claim fails, so CI gates on it.
/// --json writes the rows in the igen_bench schema (iops_per_cycle =
/// requests per cycle) for tools/bench_trend.py.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "server/FunctionCache.h"
#include "server/Json.h"
#include "server/ServerCore.h"
#include "transform/Pipeline.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace igen;
using namespace igen::bench;
using namespace igen::server;

namespace {

struct ServeKernel {
  const char *Name;
  const char *Source;
  const char *Function;
  const char *EvalArgs; // JSON array text
};

const ServeKernel Kernels[] = {
    {"horner",
     "double horner(double x) {\n"
     "  double c0 = 1.0; double c1 = -0.5; double c2 = 0.25;\n"
     "  double c3 = -0.125; double c4 = 0.0625;\n"
     "  return (((c4 * x + c3) * x + c2) * x + c1) * x + c0;\n"
     "}\n",
     "horner", "[{\"lo\":0.25,\"hi\":0.75}]"},
    {"henon",
     "double henon(double x0, double y0, int n) {\n"
     "  double x = x0; double y = y0;\n"
     "  for (int i = 0; i < n; i = i + 1) {\n"
     "    double xn = 1.0 - 1.4 * x * x + y;\n"
     "    y = 0.3 * x;\n"
     "    x = xn;\n"
     "  }\n"
     "  return x;\n"
     "}\n",
     "henon", "[0.1,0.1,{\"int\":20}]"},
    // A small BLAS-ish translation unit: services compile modules, not
    // single functions, so the compile rows measure a multi-function TU
    // while the eval row exercises one entry point with array inputs.
    {"dot",
     "double dot(double a[64], double b[64]) {\n"
     "  double s = 0.0;\n"
     "  for (int i = 0; i < 64; i = i + 1) { s = s + a[i] * b[i]; }\n"
     "  return s;\n"
     "}\n"
     "void axpy(double alpha, double x[64], double y[64]) {\n"
     "  for (int i = 0; i < 64; i = i + 1) { y[i] = alpha * x[i] + y[i]; }\n"
     "}\n"
     "double nrm2sq(double x[64]) {\n"
     "  double s = 0.0;\n"
     "  for (int i = 0; i < 64; i = i + 1) { s = s + x[i] * x[i]; }\n"
     "  return s;\n"
     "}\n"
     "double gemv_row(double a[64], double x[64], double beta, double y0) "
     "{\n"
     "  double s = beta * y0;\n"
     "  for (int i = 0; i < 64; i = i + 1) { s = s + a[i] * x[i]; }\n"
     "  return s;\n"
     "}\n"
     "double asum(double x[64]) {\n"
     "  double s = 0.0;\n"
     "  for (int i = 0; i < 64; i = i + 1) {\n"
     "    double v = x[i];\n"
     "    if (v < 0.0) { v = 0.0 - v; }\n"
     "    s = s + v;\n"
     "  }\n"
     "  return s;\n"
     "}\n",
     "dot", nullptr /* built below: two 64-element arrays */},
};

std::string arrayArg64() {
  std::string S = "{\"array\":[";
  for (int I = 0; I < 64; ++I) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%s0.%02d", I ? "," : "", I + 1);
    S += Buf;
  }
  S += "]}";
  return S;
}

std::string compileFrame(const ServeKernel &K) {
  return "{\"op\":\"compile\",\"source\":\"" + jsonEscape(K.Source) +
         "\",\"options\":{\"opt_level\":0,\"target\":\"ss\"}}";
}

std::string evalFrame(const ServeKernel &K, const std::string &Handle) {
  std::string Args = K.EvalArgs ? K.EvalArgs
                                : "[" + arrayArg64() + "," + arrayArg64() +
                                      "]";
  return "{\"op\":\"eval\",\"handle\":\"" + Handle + "\",\"function\":\"" +
         K.Function + "\",\"args\":" + Args + "}";
}

/// Sends \p Frame and aborts the benchmark on an error response: a row
/// timed against a failing request would be meaningless.
std::string mustOk(ServerCore &Core, const std::string &Frame) {
  std::string Resp = Core.handleFrame(Frame);
  if (Resp.find("\"ok\":true") == std::string::npos &&
      Resp.find("\"ok\": true") == std::string::npos) {
    std::fprintf(stderr, "serve_bench: request failed: %s\n", Resp.c_str());
    std::exit(2);
  }
  return Resp;
}

std::string handleOf(const std::string &CompileResp) {
  JsonParseResult R = parseJson(CompileResp);
  const JsonValue *H = R.Ok ? R.Value.member("handle") : nullptr;
  if (!H || !H->isString()) {
    std::fprintf(stderr, "serve_bench: no handle in: %s\n",
                 CompileResp.c_str());
    std::exit(2);
  }
  return std::string(H->stringValue());
}

/// Transaction-layer cost of a cold compile: the full pipeline to an
/// in-memory program. This is exactly the work a cache hit avoids.
uint64_t coldTransactionCycles(const ServeKernel &K) {
  TransformOptions Opts;
  Opts.OptLevel = 0;
  Opts.ScalarLibrary = true;
  return minCycles([&] {
    DiagnosticsEngine Diags;
    auto P = compileToProgram(K.Source, Opts, Diags);
    if (!P)
      std::exit(2);
  });
}

/// Transaction-layer cost of a cache hit: content hash + LRU lookup.
uint64_t hitTransactionCycles(const ServeKernel &K) {
  TransformOptions Opts;
  Opts.OptLevel = 0;
  Opts.ScalarLibrary = true;
  DiagnosticsEngine Diags;
  FunctionCache Cache(4);
  std::shared_ptr<const InMemoryProgram> P =
      compileToProgram(K.Source, Opts, Diags);
  if (!P)
    std::exit(2);
  uint64_t H = hashCompileRequest(K.Source, Opts);
  Cache.insert(H, P);
  // Hash + lookup runs in hundreds of cycles; batch it so the rdtsc
  // fencing overhead does not dominate the per-transaction cost.
  constexpr int Batch = 256;
  uint64_t Total = minCycles([&] {
    for (int I = 0; I < Batch; ++I) {
      uint64_t Key = hashCompileRequest(K.Source, Opts);
      if (!Cache.lookup(Key))
        std::exit(2);
    }
  });
  return Total / Batch > 0 ? Total / Batch : 1;
}

/// One-shot CLI round-trip: exec the igen driver on the same source.
uint64_t cliOneShotCycles(const ServeKernel &K, const char *Driver) {
  char SrcPath[] = "/tmp/igen_serve_bench_XXXXXX";
  int Fd = mkstemp(SrcPath);
  if (Fd < 0)
    std::exit(2);
  FILE *F = fdopen(Fd, "w");
  std::fputs(K.Source, F);
  std::fclose(F);
  std::string Cmd = std::string(Driver) + " " + SrcPath + " -o " + SrcPath +
                    ".out.cpp --target=ss -O0 > /dev/null 2>&1";
  uint64_t Best = minCycles(
      [&] {
        if (std::system(Cmd.c_str()) != 0)
          std::exit(2);
      },
      /*Reps=*/5);
  std::remove(SrcPath);
  std::string Out = std::string(SrcPath) + ".out.cpp";
  std::remove(Out.c_str());
  return Best;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *JsonPath = jsonPathArg(Argc, Argv);
  JsonReport Report;
  bool AmortizationOk = true;

  for (const ServeKernel &K : Kernels) {
    ServerCore Core(16);
    const std::string Compile = compileFrame(K);
    const std::string Handle = handleOf(mustOk(Core, Compile));
    const std::string Eval = evalFrame(K, Handle);
    const std::string EvictAll = "{\"op\":\"evict\",\"all\":true}";

    // Frame-path rows: what a client observes over the wire (minus the
    // socket). Evictions happen outside the timed region.
    uint64_t ColdCycles = ~uint64_t{0};
    for (int R = 0; R < 11; ++R) {
      mustOk(Core, EvictAll);
      uint64_t T0 = readCycles();
      mustOk(Core, Compile);
      ColdCycles = std::min(ColdCycles, readCycles() - T0);
    }
    uint64_t HitCycles = minCycles([&] { mustOk(Core, Compile); });
    uint64_t EvalCycles = minCycles([&] { mustOk(Core, Eval); });
    uint64_t CliCycles = cliOneShotCycles(K, IGEN_DRIVER_PATH);

    reportRow(&Report, K.Name, "serve-compile-cold", 1, ColdCycles, 1.0);
    reportRow(&Report, K.Name, "serve-compile-hit", 1, HitCycles, 1.0);
    reportRow(&Report, K.Name, "serve-eval-hot", 1, EvalCycles, 1.0);
    reportRow(&Report, K.Name, "cli-oneshot", 1, CliCycles, 1.0);

    // Amortization claims.
    uint64_t TxnCold = coldTransactionCycles(K);
    uint64_t TxnHit = hitTransactionCycles(K);
    double CompileSpeedup =
        static_cast<double>(TxnCold) / static_cast<double>(TxnHit);
    double EvalSpeedup =
        static_cast<double>(CliCycles) / static_cast<double>(EvalCycles);
    std::printf("# %s: cache lookup %.0fx cheaper than pipeline, hot eval "
                "%.0fx cheaper than CLI round-trip\n",
                K.Name, CompileSpeedup, EvalSpeedup);
    if (CompileSpeedup < 50.0) {
      std::fprintf(stderr,
                   "serve_bench: FAIL %s: cache hit only %.1fx cheaper "
                   "than cold compile (want >= 50x)\n",
                   K.Name, CompileSpeedup);
      AmortizationOk = false;
    }
    if (EvalSpeedup < 10.0) {
      std::fprintf(stderr,
                   "serve_bench: FAIL %s: hot eval only %.1fx cheaper "
                   "than one-shot CLI round-trip (want >= 10x)\n",
                   K.Name, EvalSpeedup);
      AmortizationOk = false;
    }
  }

  if (JsonPath && !Report.writeTo(JsonPath)) {
    std::fprintf(stderr, "serve_bench: cannot write %s\n", JsonPath);
    return 2;
  }
  return AmortizationOk ? 0 : 1;
}
