//===- serve_bench.cpp - igen-as-a-service amortization benchmark ---------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the persistent daemon buys over one-shot compilation
/// (DESIGN.md, "igen-as-a-service"). Frame-path rows drive ServerCore
/// in-process through the same handleFrame path the socket transport
/// uses, so they capture JSON parse + dispatch + response rendering but
/// not kernel/socket noise:
///
///   serve-compile-cold  full compile transaction (cache evicted
///                       between requests)
///   serve-compile-hit   identical request answered from the
///                       content-hash cache
///   serve-eval-hot      eval against a resident handle
///   serve-eval-deadline serve-eval-hot with a (large) deadline_ms
///                       attached — the price of the cooperative
///                       deadline checks, gated loosely at <= 5%
///   serve-restart-hit   compile hit against a daemon warm-restarted
///                       from IGEN_SERVE_CACHE_DIR (replayed journal
///                       must retain the >= 50x amortization)
///   cli-oneshot         spawning the igen binary for the same source —
///                       the one-shot CLI round-trip the daemon
///                       replaces (and that still omits the C-compiler
///                       round-trip a CLI user needs before evaluating)
///
/// The binary enforces the service's reason to exist:
///   * compile transaction: answering from the cache (content hash +
///     LRU lookup) must be >= 50x cheaper than running the pipeline,
///     measured at the transaction layer both request kinds share the
///     JSON framing above.
///   * evaluation: a hot serve-mode eval must be >= 10x cheaper than
///     the one-shot CLI round-trip on repeated small kernels.
/// It exits 1 when either amortization claim fails, so CI gates on it.
/// --json writes the rows in the igen_bench schema (iops_per_cycle =
/// requests per cycle) for tools/bench_trend.py.
///
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "server/FunctionCache.h"
#include "server/Json.h"
#include "server/PersistCache.h"
#include "server/ServerCore.h"
#include "transform/Pipeline.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace igen;
using namespace igen::bench;
using namespace igen::server;

namespace {

struct ServeKernel {
  const char *Name;
  const char *Source;
  const char *Function;
  const char *EvalArgs; // JSON array text
};

const ServeKernel Kernels[] = {
    {"horner",
     "double horner(double x) {\n"
     "  double c0 = 1.0; double c1 = -0.5; double c2 = 0.25;\n"
     "  double c3 = -0.125; double c4 = 0.0625;\n"
     "  return (((c4 * x + c3) * x + c2) * x + c1) * x + c0;\n"
     "}\n",
     "horner", "[{\"lo\":0.25,\"hi\":0.75}]"},
    {"henon",
     "double henon(double x0, double y0, int n) {\n"
     "  double x = x0; double y = y0;\n"
     "  for (int i = 0; i < n; i = i + 1) {\n"
     "    double xn = 1.0 - 1.4 * x * x + y;\n"
     "    y = 0.3 * x;\n"
     "    x = xn;\n"
     "  }\n"
     "  return x;\n"
     "}\n",
     "henon", "[0.1,0.1,{\"int\":20}]"},
    // A small BLAS-ish translation unit: services compile modules, not
    // single functions, so the compile rows measure a multi-function TU
    // while the eval row exercises one entry point with array inputs.
    {"dot",
     "double dot(double a[64], double b[64]) {\n"
     "  double s = 0.0;\n"
     "  for (int i = 0; i < 64; i = i + 1) { s = s + a[i] * b[i]; }\n"
     "  return s;\n"
     "}\n"
     "void axpy(double alpha, double x[64], double y[64]) {\n"
     "  for (int i = 0; i < 64; i = i + 1) { y[i] = alpha * x[i] + y[i]; }\n"
     "}\n"
     "double nrm2sq(double x[64]) {\n"
     "  double s = 0.0;\n"
     "  for (int i = 0; i < 64; i = i + 1) { s = s + x[i] * x[i]; }\n"
     "  return s;\n"
     "}\n"
     "double gemv_row(double a[64], double x[64], double beta, double y0) "
     "{\n"
     "  double s = beta * y0;\n"
     "  for (int i = 0; i < 64; i = i + 1) { s = s + a[i] * x[i]; }\n"
     "  return s;\n"
     "}\n"
     "double asum(double x[64]) {\n"
     "  double s = 0.0;\n"
     "  for (int i = 0; i < 64; i = i + 1) {\n"
     "    double v = x[i];\n"
     "    if (v < 0.0) { v = 0.0 - v; }\n"
     "    s = s + v;\n"
     "  }\n"
     "  return s;\n"
     "}\n",
     "dot", nullptr /* built below: two 64-element arrays */},
};

std::string arrayArg64() {
  std::string S = "{\"array\":[";
  for (int I = 0; I < 64; ++I) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%s0.%02d", I ? "," : "", I + 1);
    S += Buf;
  }
  S += "]}";
  return S;
}

std::string compileFrame(const ServeKernel &K) {
  return "{\"op\":\"compile\",\"source\":\"" + jsonEscape(K.Source) +
         "\",\"options\":{\"opt_level\":0,\"target\":\"ss\"}}";
}

std::string evalFrame(const ServeKernel &K, const std::string &Handle) {
  std::string Args = K.EvalArgs ? K.EvalArgs
                                : "[" + arrayArg64() + "," + arrayArg64() +
                                      "]";
  return "{\"op\":\"eval\",\"handle\":\"" + Handle + "\",\"function\":\"" +
         K.Function + "\",\"args\":" + Args + "}";
}

/// The same eval with a far-future deadline attached: measures the cost
/// of the deadline bookkeeping, not of ever hitting one.
std::string evalFrameWithDeadline(const ServeKernel &K,
                                  const std::string &Handle) {
  std::string Frame = evalFrame(K, Handle);
  const std::string Prefix = "{\"op\":\"eval\",";
  return Prefix + "\"deadline_ms\":3600000," + Frame.substr(Prefix.size());
}

/// Sends \p Frame and aborts the benchmark on an error response: a row
/// timed against a failing request would be meaningless.
std::string mustOk(ServerCore &Core, const std::string &Frame) {
  std::string Resp = Core.handleFrame(Frame);
  if (Resp.find("\"ok\":true") == std::string::npos &&
      Resp.find("\"ok\": true") == std::string::npos) {
    std::fprintf(stderr, "serve_bench: request failed: %s\n", Resp.c_str());
    std::exit(2);
  }
  return Resp;
}

std::string handleOf(const std::string &CompileResp) {
  JsonParseResult R = parseJson(CompileResp);
  const JsonValue *H = R.Ok ? R.Value.member("handle") : nullptr;
  if (!H || !H->isString()) {
    std::fprintf(stderr, "serve_bench: no handle in: %s\n",
                 CompileResp.c_str());
    std::exit(2);
  }
  return std::string(H->stringValue());
}

/// Transaction-layer cost of a cold compile: the full pipeline to an
/// in-memory program. This is exactly the work a cache hit avoids.
uint64_t coldTransactionCycles(const ServeKernel &K) {
  TransformOptions Opts;
  Opts.OptLevel = 0;
  Opts.ScalarLibrary = true;
  return minCycles([&] {
    DiagnosticsEngine Diags;
    auto P = compileToProgram(K.Source, Opts, Diags);
    if (!P)
      std::exit(2);
  });
}

/// Transaction-layer cost of a cache hit: content hash + LRU lookup.
uint64_t hitTransactionCycles(const ServeKernel &K) {
  TransformOptions Opts;
  Opts.OptLevel = 0;
  Opts.ScalarLibrary = true;
  DiagnosticsEngine Diags;
  FunctionCache Cache(4);
  std::shared_ptr<const InMemoryProgram> P =
      compileToProgram(K.Source, Opts, Diags);
  if (!P)
    std::exit(2);
  uint64_t H = hashCompileRequest(K.Source, Opts);
  Cache.insert(H, P);
  // Hash + lookup runs in hundreds of cycles; batch it so the rdtsc
  // fencing overhead does not dominate the per-transaction cost.
  constexpr int Batch = 256;
  uint64_t Total = minCycles([&] {
    for (int I = 0; I < Batch; ++I) {
      uint64_t Key = hashCompileRequest(K.Source, Opts);
      if (!Cache.lookup(Key))
        std::exit(2);
    }
  });
  return Total / Batch > 0 ? Total / Batch : 1;
}

/// One-shot CLI round-trip: exec the igen driver on the same source.
uint64_t cliOneShotCycles(const ServeKernel &K, const char *Driver) {
  char SrcPath[] = "/tmp/igen_serve_bench_XXXXXX";
  int Fd = mkstemp(SrcPath);
  if (Fd < 0)
    std::exit(2);
  FILE *F = fdopen(Fd, "w");
  std::fputs(K.Source, F);
  std::fclose(F);
  std::string Cmd = std::string(Driver) + " " + SrcPath + " -o " + SrcPath +
                    ".out.cpp --target=ss -O0 > /dev/null 2>&1";
  uint64_t Best = minCycles(
      [&] {
        if (std::system(Cmd.c_str()) != 0)
          std::exit(2);
      },
      /*Reps=*/5);
  std::remove(SrcPath);
  std::string Out = std::string(SrcPath) + ".out.cpp";
  std::remove(Out.c_str());
  return Best;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *JsonPath = jsonPathArg(Argc, Argv);
  JsonReport Report;
  bool AmortizationOk = true;

  for (const ServeKernel &K : Kernels) {
    ServerCore Core(16);
    const std::string Compile = compileFrame(K);
    const std::string Handle = handleOf(mustOk(Core, Compile));
    const std::string Eval = evalFrame(K, Handle);
    const std::string EvictAll = "{\"op\":\"evict\",\"all\":true}";

    // Frame-path rows: what a client observes over the wire (minus the
    // socket). Evictions happen outside the timed region.
    uint64_t ColdCycles = ~uint64_t{0};
    for (int R = 0; R < 11; ++R) {
      mustOk(Core, EvictAll);
      uint64_t T0 = readCycles();
      mustOk(Core, Compile);
      ColdCycles = std::min(ColdCycles, readCycles() - T0);
    }
    uint64_t HitCycles = minCycles([&] { mustOk(Core, Compile); });
    // The deadline gate is a few-percent ratio, so it needs two
    // controls: (a) the comparison baseline is a frame of *identical
    // length* carrying an ignored field where `deadline_ms` sits, so
    // the diff isolates deadline bookkeeping (budget resolution at
    // dispatch + evaluator cancellation polls) rather than the cost of
    // parsing 22 more bytes of JSON; (b) all three variants are
    // measured interleaved, because frequency drift between
    // back-to-back minCycles blocks would swamp the difference.
    const std::string EvalDl = evalFrameWithDeadline(K, Handle);
    std::string EvalPad = EvalDl;
    size_t DlPos = EvalPad.find("\"deadline_ms\"");
    EvalPad.replace(DlPos, 13, "\"x_padding_f\"");
    uint64_t EvalCycles = ~uint64_t{0};
    uint64_t EvalPadCycles = ~uint64_t{0};
    uint64_t EvalDlCycles = ~uint64_t{0};
    for (int R = 0; R < 33; ++R) {
      uint64_t T0 = readCycles();
      mustOk(Core, Eval);
      uint64_t T1 = readCycles();
      mustOk(Core, EvalPad);
      uint64_t T2 = readCycles();
      mustOk(Core, EvalDl);
      uint64_t T3 = readCycles();
      EvalCycles = std::min(EvalCycles, T1 - T0);
      EvalPadCycles = std::min(EvalPadCycles, T2 - T1);
      EvalDlCycles = std::min(EvalDlCycles, T3 - T2);
    }
    uint64_t CliCycles = cliOneShotCycles(K, IGEN_DRIVER_PATH);

    reportRow(&Report, K.Name, "serve-compile-cold", 1, ColdCycles, 1.0);
    reportRow(&Report, K.Name, "serve-compile-hit", 1, HitCycles, 1.0);
    reportRow(&Report, K.Name, "serve-eval-hot", 1, EvalCycles, 1.0);
    reportRow(&Report, K.Name, "serve-eval-deadline", 1, EvalDlCycles, 1.0);
    reportRow(&Report, K.Name, "cli-oneshot", 1, CliCycles, 1.0);

    // Deadline bookkeeping must be invisible on the hot path: the check
    // is amortized over evaluator steps, so a generous deadline should
    // cost low single digits of a percent at worst. The gate is looser
    // than the design target (<1%) to keep CI off the noise floor.
    double DeadlinePct = 100.0 *
                         (static_cast<double>(EvalDlCycles) -
                          static_cast<double>(EvalPadCycles)) /
                         static_cast<double>(EvalPadCycles);
    std::printf("# %s: deadline bookkeeping costs %.2f%% on the hot eval\n",
                K.Name, DeadlinePct);
    if (DeadlinePct > 5.0) {
      std::fprintf(stderr,
                   "serve_bench: FAIL %s: deadline checks cost %.1f%% on "
                   "the hot eval (want <= 5%%)\n",
                   K.Name, DeadlinePct);
      AmortizationOk = false;
    }

    // Amortization claims.
    uint64_t TxnCold = coldTransactionCycles(K);
    uint64_t TxnHit = hitTransactionCycles(K);
    double CompileSpeedup =
        static_cast<double>(TxnCold) / static_cast<double>(TxnHit);
    double EvalSpeedup =
        static_cast<double>(CliCycles) / static_cast<double>(EvalCycles);
    std::printf("# %s: cache lookup %.0fx cheaper than pipeline, hot eval "
                "%.0fx cheaper than CLI round-trip\n",
                K.Name, CompileSpeedup, EvalSpeedup);
    if (CompileSpeedup < 50.0) {
      std::fprintf(stderr,
                   "serve_bench: FAIL %s: cache hit only %.1fx cheaper "
                   "than cold compile (want >= 50x)\n",
                   K.Name, CompileSpeedup);
      AmortizationOk = false;
    }
    if (EvalSpeedup < 10.0) {
      std::fprintf(stderr,
                   "serve_bench: FAIL %s: hot eval only %.1fx cheaper "
                   "than one-shot CLI round-trip (want >= 10x)\n",
                   K.Name, EvalSpeedup);
      AmortizationOk = false;
    }
  }

  // Warm restart: a daemon brought back up over the same
  // IGEN_SERVE_CACHE_DIR must answer previously compiled requests from
  // the replayed journal, and those replayed hits must retain the same
  // >= 50x amortization as in-process hits.
  {
    char DirTmpl[] = "/tmp/igen_serve_bench_cache_XXXXXX";
    if (!mkdtemp(DirTmpl)) {
      std::perror("serve_bench: mkdtemp");
      return 2;
    }
    ServerCoreConfig Cfg;
    Cfg.CacheCapacity = 16;
    Cfg.CacheDir = DirTmpl;
    {
      ServerCore First(Cfg);
      for (const ServeKernel &K : Kernels)
        mustOk(First, compileFrame(K));
    }
    ServerCore Restarted(Cfg); // constructor replays the journal
    for (const ServeKernel &K : Kernels) {
      std::string Resp = mustOk(Restarted, compileFrame(K));
      if (Resp.find("\"cached\": true") == std::string::npos &&
          Resp.find("\"cached\":true") == std::string::npos) {
        std::fprintf(stderr,
                     "serve_bench: FAIL %s: warm restart answered a known "
                     "request without the replayed cache\n",
                     K.Name);
        AmortizationOk = false;
      }
    }

    const ServeKernel &K = Kernels[0];
    uint64_t RestartHitCycles =
        minCycles([&] { mustOk(Restarted, compileFrame(K)); });
    reportRow(&Report, K.Name, "serve-restart-hit", 1, RestartHitCycles, 1.0);

    // Transaction-layer gate against a cache populated purely by journal
    // replay — the same hash + lookup measurement as the in-process gate.
    FunctionCache Replayed(16);
    PersistentCacheDir Persist(DirTmpl);
    PersistentCacheDir::ReplayStats RS = Persist.replay(Replayed, 16);
    TransformOptions Opts;
    Opts.OptLevel = 0;
    Opts.ScalarLibrary = true;
    uint64_t Key = hashCompileRequest(K.Source, Opts);
    if (RS.Replayed == 0 || !Replayed.lookup(Key)) {
      std::fprintf(stderr,
                   "serve_bench: FAIL: journal replay restored %zu entries "
                   "and misses kernel %s\n",
                   RS.Replayed, K.Name);
      AmortizationOk = false;
    } else {
      constexpr int Batch = 256;
      uint64_t Total = minCycles([&] {
        for (int I = 0; I < Batch; ++I) {
          uint64_t H = hashCompileRequest(K.Source, Opts);
          if (!Replayed.lookup(H))
            std::exit(2);
        }
      });
      uint64_t ReplayHit = Total / Batch > 0 ? Total / Batch : 1;
      uint64_t TxnCold = coldTransactionCycles(K);
      double Speedup =
          static_cast<double>(TxnCold) / static_cast<double>(ReplayHit);
      std::printf("# %s: replayed cache hit %.0fx cheaper than pipeline "
                  "after warm restart\n",
                  K.Name, Speedup);
      if (Speedup < 50.0) {
        std::fprintf(stderr,
                     "serve_bench: FAIL %s: replayed hit only %.1fx cheaper "
                     "than cold compile (want >= 50x)\n",
                     K.Name, Speedup);
        AmortizationOk = false;
      }
    }
    std::string Cleanup = std::string("rm -rf ") + DirTmpl;
    if (std::system(Cleanup.c_str()) != 0)
      std::fprintf(stderr, "serve_bench: warning: cannot remove %s\n",
                   DirTmpl);
  }

  if (JsonPath && !Report.writeTo(JsonPath)) {
    std::fprintf(stderr, "serve_bench: cannot write %s\n", JsonPath);
    return 2;
  }
  return AmortizationOk ? 0 : 1;
}
