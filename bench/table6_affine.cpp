//===- table6_affine.cpp - Table VI: intervals vs affine arithmetic ------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Table VI: certified accuracy (bits) and slowdown vs the non-interval
// program for the Henon map and the FFT, comparing IGen double intervals
// (f64i), IGen double-double intervals (ddi) and affine arithmetic
// (Section VII-C). Expected shape: on Henon, f64i accuracy collapses with
// the iteration count, ddi later, affine stays ~constant; affine is 2-3
// orders of magnitude slower than ddi.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "KernelDecls.h"
#include "KernelsT.h"

#include "affine/AffineForm.h"
#include "interval/Accuracy.h"

#include <cstring>
#include <string>
#include <vector>

using namespace igen;
using namespace igen::bench;

namespace {

Rng R(31337);

/// Accuracy protocol of the paper: average of the minimum certified bits
/// across runs (inputs are the exact initial condition x0 = y0 = 0, so a
/// single run is deterministic here).

void henonRows(int Iters) {
  double X0 = 0.0, Y0 = 0.0;
  // Accuracy.
  double BitsF64 =
      accuracyBits(sv_henon(IntervalSse::fromPoint(X0),
                            IntervalSse::fromPoint(Y0), Iters)
                       .toInterval());
  double BitsDd = accuracyBits(
      svdd_henon(DdIntervalAvx::fromPoint(X0),
                 DdIntervalAvx::fromPoint(Y0), Iters)
          .toScalar());
  AffineForm AffRes = henonT(
      AffineForm::fromPoint(X0), AffineForm::fromPoint(Y0), Iters,
      AffineForm::fromPoint(1.05), AffineForm::fromPoint(0.3),
      AffineForm::fromPoint(1.0));
  double BitsAff = accuracyBits(AffRes.toInterval());

  // Slowdowns.
  uint64_t Base;
  {
    RoundNearestScope RN;
    Base = medianCycles([&] {
      volatile double Sink = base_henon(X0, Y0, Iters);
      (void)Sink;
    });
  }
  uint64_t F64 = medianCycles([&] {
    volatile double Sink =
        sv_henon(IntervalSse::fromPoint(X0), IntervalSse::fromPoint(Y0),
                 Iters)
            .hi();
    (void)Sink;
  });
  uint64_t Ddc = medianCycles([&] {
    volatile double Sink = svdd_henon(DdIntervalAvx::fromPoint(X0),
                                      DdIntervalAvx::fromPoint(Y0), Iters)
                               .toScalar()
                               .Hi.H;
    (void)Sink;
  });
  uint64_t Aff = medianCycles(
      [&] {
        AffineForm Res = henonT(
            AffineForm::fromPoint(X0), AffineForm::fromPoint(Y0), Iters,
            AffineForm::fromPoint(1.05), AffineForm::fromPoint(0.3),
            AffineForm::fromPoint(1.0));
        volatile double Sink = Res.center();
        (void)Sink;
      },
      3);
  std::printf("table6-henon,%d,accuracy,%.0f,%.0f,%.0f\n", Iters, BitsF64,
              BitsDd, BitsAff);
  std::printf("table6-henon,%d,slowdown,%.1f,%.1f,%.0f\n", Iters,
              (double)F64 / Base, (double)Ddc / Base, (double)Aff / Base);
}

template <typename T, typename Fn>
double fftMinBits(Fn Kernel, int N, const FftSetup &S,
                  const std::vector<double> &Re0,
                  const std::vector<double> &Im0,
                  double (*Bits)(const T &)) {
  std::vector<T> Re(N), Im(N), Wre(S.Wre.size()), Wim(S.Wim.size());
  for (int K = 0; K < N; ++K) {
    Re[K] = T::fromEndpoints(Re0[K], nextUp(Re0[K]));
    Im[K] = T::fromEndpoints(Im0[K], nextUp(Im0[K]));
  }
  for (size_t K = 0; K < S.Wre.size(); ++K) {
    Wre[K] = T::fromPoint(S.Wre[K]);
    Wim[K] = T::fromPoint(S.Wim[K]);
  }
  std::vector<int> Rev = S.Rev;
  Kernel(Re.data(), Im.data(), Wre.data(), Wim.data(), Rev.data(), N);
  double Min = 1e9;
  for (int K = 0; K < N; ++K)
    Min = std::min(Min, Bits(Re[K]));
  return Min;
}

double bitsSse(const IntervalSse &I) {
  return accuracyBits(I.toInterval());
}
double bitsDd(const DdIntervalAvx &I) {
  return accuracyBits(I.toScalar());
}

void fftRows(int N) {
  FftSetup S(N);
  std::vector<double> Re0(N), Im0(N);
  for (int K = 0; K < N; ++K) {
    Re0[K] = R.uniform(-1, 1);
    Im0[K] = R.uniform(-1, 1);
  }
  double BitsF64 = fftMinBits<IntervalSse>(sv_fft, N, S, Re0, Im0,
                                           bitsSse);
  double BitsDd = fftMinBits<DdIntervalAvx>(svdd_fft, N, S, Re0, Im0,
                                            bitsDd);
  // Affine FFT via the templated library kernel.
  std::vector<AffineForm> ARe(N), AIm(N), AWre(S.Wre.size()),
      AWim(S.Wim.size());
  for (int K = 0; K < N; ++K) {
    ARe[K] = AffineForm::fromInterval(Re0[K], nextUp(Re0[K]));
    AIm[K] = AffineForm::fromInterval(Im0[K], nextUp(Im0[K]));
  }
  for (size_t K = 0; K < S.Wre.size(); ++K) {
    AWre[K] = AffineForm::fromPoint(S.Wre[K]);
    AWim[K] = AffineForm::fromPoint(S.Wim[K]);
  }
  std::vector<AffineForm> ARe0 = ARe, AIm0 = AIm;
  fftT<AffineForm>(ARe.data(), AIm.data(), AWre.data(), AWim.data(),
                   S.Rev.data(), N);
  double BitsAff = 1e9;
  for (int K = 0; K < N; ++K)
    BitsAff = std::min(BitsAff, accuracyBits(ARe[K].toInterval()));

  // Slowdowns.
  std::vector<double> Re = Re0, Im = Im0, Wre = S.Wre, Wim = S.Wim;
  std::vector<int> Rev = S.Rev;
  uint64_t Base;
  {
    RoundNearestScope RN;
    Base = medianCycles([&] {
      std::memcpy(Re.data(), Re0.data(), N * sizeof(double));
      std::memcpy(Im.data(), Im0.data(), N * sizeof(double));
      base_fft(Re.data(), Im.data(), Wre.data(), Wim.data(), Rev.data(),
               N);
    });
  }
  auto TimeI = [&](auto Kernel, auto Tag) -> uint64_t {
    using T = std::remove_pointer_t<decltype(Tag)>;
    std::vector<T> IRe(N), IIm(N), IWre(S.Wre.size()), IWim(S.Wim.size());
    for (int K = 0; K < N; ++K) {
      IRe[K] = T::fromEndpoints(Re0[K], nextUp(Re0[K]));
      IIm[K] = T::fromEndpoints(Im0[K], nextUp(Im0[K]));
    }
    for (size_t K = 0; K < S.Wre.size(); ++K) {
      IWre[K] = T::fromPoint(S.Wre[K]);
      IWim[K] = T::fromPoint(S.Wim[K]);
    }
    std::vector<T> IRe0 = IRe, IIm0 = IIm;
    return medianCycles([&] {
      std::memcpy(IRe.data(), IRe0.data(), N * sizeof(T));
      std::memcpy(IIm.data(), IIm0.data(), N * sizeof(T));
      Kernel(IRe.data(), IIm.data(), IWre.data(), IWim.data(), Rev.data(),
             N);
    });
  };
  uint64_t F64 = TimeI(sv_fft, (IntervalSse *)nullptr);
  uint64_t Ddc = TimeI(svdd_fft, (DdIntervalAvx *)nullptr);
  uint64_t Aff = medianCycles(
      [&] {
        ARe = ARe0;
        AIm = AIm0;
        fftT<AffineForm>(ARe.data(), AIm.data(), AWre.data(), AWim.data(),
                         S.Rev.data(), N);
      },
      1);
  std::printf("table6-fft,%d,accuracy,%.0f,%.0f,%.0f\n", N, BitsF64,
              BitsDd, BitsAff);
  std::printf("table6-fft,%d,slowdown,%.1f,%.1f,%.0f\n", N,
              (double)F64 / Base, (double)Ddc / Base, (double)Aff / Base);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Full = Argc > 1 && std::string(Argv[1]) == "--full";
  RoundUpwardScope Up;
  std::printf("table,size,metric,f64i,ddi,affine\n");
  for (int Iters : Full ? std::vector<int>{10, 50, 90, 130, 170}
                        : std::vector<int>{10, 50, 90, 170})
    henonRows(Iters);
  for (int N : Full ? std::vector<int>{16, 32, 64, 128, 256}
                    : std::vector<int>{16, 64})
    fftRows(N);
  return 0;
}
