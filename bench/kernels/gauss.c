/* Transcendental-heavy kernel: one exp, one log, one sin and one cos per
   point. At the default -O the elementary calls lower to the certified
   polynomial fast path (ia_*_fast); at -O0 they stay on the per-call
   libm-widened path, so the Table V optimizer row isolates the
   fast-kernel speedup. */

double k_gauss(const double *xs, double *out, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) {
    double xi = xs[i];
    double g = exp(0.0 - xi * xi);
    double h = log(1.0 + g) + sin(xi) * cos(xi);
    out[i] = h;
    s = s + h;
  }
  return s;
}
