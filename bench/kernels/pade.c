/* Rational (Pade-style) approximation evaluated pointwise. Under the
   positivity guard the denominator is provably >= 2, so the optimizer
   may emit the restricted division ia_div_p and specialized FMAs. */

double k_pade(const double *xs, double *out, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) {
    double xi = xs[i];
    if (xi > 0.0) {
      double p = 0.125 + xi * (2.0 + xi);
      double q = 2.0 + xi * (0.5 + xi);
      double r = p / q;
      out[i] = r;
      s = s + r;
    } else {
      out[i] = 0.0;
    }
  }
  return s;
}
