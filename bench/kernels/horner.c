/* Horner evaluation of a degree-d polynomial at a positive point.
   The positivity guard lets the optimizer prove sign facts for xi and
   lower the multiply-accumulate to the specialized fused FMA. */

double k_horner(const double *coef, double x, int d) {
  double r = 0.0;
  if (x > 0.0) {
    double xi = x;
    r = coef[d];
    for (int k = d - 1; k >= 0; k--) {
      r = r * xi + coef[k];
    }
  }
  return r;
}
