/* Movability-pruning kernel for the tier benchmark: the envelope bound
   is built entirely from exact-transfer operations (fabs/fmax selection,
   unary negation, the integral literal 0.0), so the --tier movability
   analysis classifies the result immovable. On wide inputs the blowup
   predicate fires at region exit, but the wrapper must skip the ddi
   rerun: a recompute provably returns the identical interval. The
   tiered row should therefore time within noise of the plain row. */

double k_envmax(const double *xs, int n) {
  double m = 0.0;
  for (int i = 0; i < n; i++) {
    m = fmax(m, fabs(xs[i]));
  }
  return -m;
}
