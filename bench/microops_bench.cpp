//===- microops_bench.cpp - Interval operation micro-benchmarks ----------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark latencies/throughputs of the individual interval
// operations across implementations: the ablation behind the Fig. 8
// design choices (scalar vs SSE vs precompiled vs branchy multiplication,
// double vs double-double).
//
//===----------------------------------------------------------------------===//

#include "baselines/BaselineIntervals.h"
#include "interval/DdSimd.h"
#include "interval/Interval.h"
#include "interval/IntervalSimd.h"

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

using namespace igen;

namespace {

// One shared upward-rounding scope for the whole binary (benchmark
// runs everything on the main thread).
RoundUpwardScope *Up = new RoundUpwardScope();

template <typename I> std::vector<I> makeInputs(int N) {
  std::vector<I> V;
  V.reserve(N);
  std::mt19937_64 Gen(99);
  std::uniform_real_distribution<double> D(-2.0, 2.0);
  for (int K = 0; K < N; ++K) {
    double C = D(Gen);
    V.push_back(I::fromEndpoints(C, nextUp(C)));
  }
  return V;
}

constexpr int N = 1024;

template <typename I, typename Op>
void runOp(benchmark::State &State, Op O) {
  auto A = makeInputs<I>(N);
  auto B = makeInputs<I>(N);
  for (auto _ : State) {
    for (int K = 0; K < N; ++K) {
      I R = O(A[K], B[K]);
      benchmark::DoNotOptimize(R);
    }
  }
  State.SetItemsProcessed(State.iterations() * N);
}

void BM_AddScalar(benchmark::State &S) {
  runOp<Interval>(S, [](const Interval &A, const Interval &B) {
    return iAdd(A, B);
  });
}
void BM_AddSse(benchmark::State &S) {
  runOp<IntervalSse>(S, [](const IntervalSse &A, const IntervalSse &B) {
    return iAdd(A, B);
  });
}
void BM_AddDd(benchmark::State &S) {
  runOp<DdIntervalAvx>(
      S, [](const DdIntervalAvx &A, const DdIntervalAvx &B) {
        return ddiAdd(A, B);
      });
}
void BM_MulScalar(benchmark::State &S) {
  runOp<Interval>(S, [](const Interval &A, const Interval &B) {
    return iMul(A, B);
  });
}
void BM_MulSse(benchmark::State &S) {
  runOp<IntervalSse>(S, [](const IntervalSse &A, const IntervalSse &B) {
    return iMul(A, B);
  });
}
void BM_MulDd(benchmark::State &S) {
  runOp<DdIntervalAvx>(
      S, [](const DdIntervalAvx &A, const DdIntervalAvx &B) {
        return ddiMul(A, B);
      });
}
void BM_MulBoostLike(benchmark::State &S) {
  runOp<BoostLikeInterval>(
      S, [](const BoostLikeInterval &A, const BoostLikeInterval &B) {
        return A * B;
      });
}
void BM_MulFilibLike(benchmark::State &S) {
  runOp<FilibLikeInterval>(
      S, [](const FilibLikeInterval &A, const FilibLikeInterval &B) {
        return A * B;
      });
}
void BM_MulGaolLike(benchmark::State &S) {
  runOp<GaolLikeInterval>(
      S, [](const GaolLikeInterval &A, const GaolLikeInterval &B) {
        return A * B;
      });
}
void BM_DivScalar(benchmark::State &S) {
  runOp<Interval>(S, [](const Interval &A, const Interval &B) {
    return iDiv(A, B);
  });
}
void BM_DivSse(benchmark::State &S) {
  runOp<IntervalSse>(S, [](const IntervalSse &A, const IntervalSse &B) {
    return iDiv(A, B);
  });
}
void BM_DivDd(benchmark::State &S) {
  runOp<DdIntervalAvx>(
      S, [](const DdIntervalAvx &A, const DdIntervalAvx &B) {
        return ddiDiv(A, B);
      });
}

} // namespace

BENCHMARK(BM_AddScalar);
BENCHMARK(BM_AddSse);
BENCHMARK(BM_AddDd);
BENCHMARK(BM_MulScalar);
BENCHMARK(BM_MulSse);
BENCHMARK(BM_MulDd);
BENCHMARK(BM_MulBoostLike);
BENCHMARK(BM_MulFilibLike);
BENCHMARK(BM_MulGaolLike);
BENCHMARK(BM_DivScalar);
BENCHMARK(BM_DivSse);
BENCHMARK(BM_DivDd);

BENCHMARK_MAIN();
