//===- table5_slowdown.cpp - Table V: interval vs non-interval slowdown --------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Table V: slowdown of the IGen-generated interval code relative to the
// non-interval input program, for {sv, vv} x {double, double-double} on
// the four benchmarks. Expected shape: double 2.3x-13x; double-double
// one to two orders of magnitude, and noticeably worse for vv-dd (the
// automatic intrinsic path).
//
// The second half measures the mid-end optimizer: each kernel compiled
// at the default -O (sign-specialized multiplies, FMA fusion, CSE) vs
// -O0, reported as the speedup O0-cycles / O1-cycles together with the
// geometric mean. `--json <path>` writes all rows machine-readably.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "KernelDecls.h"

#include <cstring>
#include <string>
#include <vector>

using namespace igen;
using namespace igen::bench;

namespace {

Rng R(555);

template <typename Fn> uint64_t timeNearest(Fn F, int Reps = 5) {
  RoundNearestScope RN;
  return medianCycles(F, Reps);
}

struct SlowdownRow {
  std::string Bench, Config;
  int Size;
  double Slowdown;
};

struct OptRow {
  std::string Kernel;
  int Size;
  uint64_t CyclesO0, CyclesO1;
  double Speedup;
};

struct ProfRow {
  std::string Kernel;
  int Size;
  uint64_t CyclesPlain, CyclesProf;
  double Overhead;
};

std::vector<SlowdownRow> SlowdownRows;
std::vector<OptRow> OptRows;
std::vector<ProfRow> ProfRows;

void row(const char *Bench, int Size, const char *Config, uint64_t Cyc,
         uint64_t BaseCyc) {
  double S = static_cast<double>(Cyc) / BaseCyc;
  std::printf("table5,%s-%d,%s,%.1f\n", Bench, Size, Config, S);
  SlowdownRows.push_back({Bench, Config, Size, S});
}

/// One optimizer-comparison row: the same kernel built at -O0 and at the
/// default -O. Uses minCycles (ratio rows; noise is one-sided).
void optRow(const char *Kernel, int Size, const std::function<void()> &O0,
            const std::function<void()> &O1, int Reps = 9) {
  uint64_t C0 = minCycles(O0, Reps);
  uint64_t C1 = minCycles(O1, Reps);
  double Speedup = static_cast<double>(C0) / C1;
  std::printf("table5opt,%s-%d,O0-vs-O1,%.2f\n", Kernel, Size, Speedup);
  OptRows.push_back({Kernel, Size, C0, C1, Speedup});
}

/// One profiler-overhead row: the sv kernel vs the same kernel compiled
/// with --profile (svp_). Uses minCycles like the other ratio rows.
void profRow(const char *Kernel, int Size, const std::function<void()> &Plain,
             const std::function<void()> &Prof, int Reps = 9) {
  uint64_t CP = minCycles(Plain, Reps);
  uint64_t CI = minCycles(Prof, Reps);
  double Overhead = static_cast<double>(CI) / CP;
  std::printf("table5prof,%s-%d,profile-overhead,%.2f\n", Kernel, Size,
              Overhead);
  ProfRows.push_back({Kernel, Size, CP, CI, Overhead});
}

double geomean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 1.0;
  double LogSum = 0.0;
  for (double X : Xs)
    LogSum += std::log(X);
  return std::exp(LogSum / Xs.size());
}

bool writeJson(const char *Path) {
  JsonWriter W;
  W.beginObject();
  W.field("schema_version", 1);
  W.field("table", "table5");
  W.key("slowdown");
  W.beginArray();
  for (const SlowdownRow &S : SlowdownRows) {
    W.beginObject();
    W.field("kernel", S.Bench);
    W.field("size", S.Size);
    W.field("config", S.Config);
    W.field("slowdown", S.Slowdown);
    W.endObject();
  }
  W.endArray();
  W.key("opt_compare");
  W.beginArray();
  std::vector<double> Speedups;
  for (const OptRow &O : OptRows) {
    Speedups.push_back(O.Speedup);
    W.beginObject();
    W.field("kernel", O.Kernel);
    W.field("size", O.Size);
    W.field("cycles_O0", O.CyclesO0);
    W.field("cycles_O1", O.CyclesO1);
    W.field("speedup", O.Speedup);
    W.endObject();
  }
  W.endArray();
  W.field("opt_geomean_speedup", geomean(Speedups));
  W.key("profile_overhead");
  W.beginArray();
  std::vector<double> Overheads;
  for (const ProfRow &P : ProfRows) {
    Overheads.push_back(P.Overhead);
    W.beginObject();
    W.field("kernel", P.Kernel);
    W.field("size", P.Size);
    W.field("cycles_plain", P.CyclesPlain);
    W.field("cycles_profiled", P.CyclesProf);
    W.field("overhead", P.Overhead);
    W.endObject();
  }
  W.endArray();
  W.field("profile_overhead_geomean", geomean(Overheads));
  W.endObject();
  return W.writeTo(Path);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Full = false;
  for (int I = 1; I < Argc; ++I)
    if (std::string(Argv[I]) == "--full")
      Full = true;
  const char *JsonPath = jsonPathArg(Argc, Argv);
  RoundUpwardScope Up;
  std::printf("table,benchmark,config,slowdown\n");

  // ---- fft-64 ----
  {
    const int N = 64;
    FftSetup S(N);
    std::vector<double> Re0(N), Im0(N);
    for (int K = 0; K < N; ++K) {
      Re0[K] = R.uniform(-1, 1);
      Im0[K] = R.uniform(-1, 1);
    }
    std::vector<double> Re = Re0, Im = Im0, Wre = S.Wre, Wim = S.Wim;
    std::vector<int> Rev = S.Rev;
    uint64_t Base = timeNearest([&] {
      std::memcpy(Re.data(), Re0.data(), N * sizeof(double));
      std::memcpy(Im.data(), Im0.data(), N * sizeof(double));
      base_fft(Re.data(), Im.data(), Wre.data(), Wim.data(), Rev.data(),
               N);
    });
    auto TimeIt = [&](auto *Kernel, auto Tag) -> uint64_t {
      using T = std::remove_pointer_t<decltype(Tag)>;
      std::vector<T> IRe(N), IIm(N), IWre(Wre.size()), IWim(Wim.size());
      for (int K = 0; K < N; ++K) {
        IRe[K] = T::fromEndpoints(Re0[K], nextUp(Re0[K]));
        IIm[K] = T::fromEndpoints(Im0[K], nextUp(Im0[K]));
      }
      for (size_t K = 0; K < Wre.size(); ++K) {
        IWre[K] = T::fromPoint(Wre[K]);
        IWim[K] = T::fromPoint(Wim[K]);
      }
      std::vector<T> IRe0 = IRe, IIm0 = IIm;
      return medianCycles([&] {
        std::memcpy(IRe.data(), IRe0.data(), N * sizeof(T));
        std::memcpy(IIm.data(), IIm0.data(), N * sizeof(T));
        Kernel(IRe.data(), IIm.data(), IWre.data(), IWim.data(),
               Rev.data(), N);
      });
    };
    row("fft", N, "sv-dbl", TimeIt(sv_fft, (IntervalSse *)nullptr), Base);
    row("fft", N, "vv-dbl", TimeIt(vv_fft, (IntervalSse *)nullptr), Base);
    row("fft", N, "sv-dd", TimeIt(svdd_fft, (DdIntervalAvx *)nullptr),
        Base);
    row("fft", N, "vv-dd", TimeIt(vvdd_fft, (DdIntervalAvx *)nullptr),
        Base);
  }

  // ---- potrf-124 ----
  {
    const int N = 124;
    std::vector<double> Spd = spdMatrix(N, R), A = Spd;
    uint64_t Base = timeNearest([&] {
      std::memcpy(A.data(), Spd.data(), N * N * sizeof(double));
      base_potrf(A.data(), N);
    });
    auto TimeIt = [&](auto *Kernel, auto Tag) -> uint64_t {
      using T = std::remove_pointer_t<decltype(Tag)>;
      std::vector<T> IA0(N * N), IA(N * N);
      for (int K = 0; K < N * N; ++K)
        IA0[K] = T::fromEndpoints(Spd[K], nextUp(Spd[K]));
      return medianCycles([&] {
        std::memcpy(IA.data(), IA0.data(), N * N * sizeof(T));
        Kernel(IA.data(), N);
      });
    };
    row("potrf", N, "sv-dbl", TimeIt(sv_potrf, (IntervalSse *)nullptr),
        Base);
    row("potrf", N, "vv-dbl", TimeIt(vv_potrf, (IntervalSse *)nullptr),
        Base);
    row("potrf", N, "sv-dd", TimeIt(svdd_potrf, (DdIntervalAvx *)nullptr),
        Base);
    row("potrf", N, "vv-dd", TimeIt(vvdd_potrf, (DdIntervalAvx *)nullptr),
        Base);
  }

  // ---- ffnn ----
  {
    const int N = Full ? 200 : 104;
    const int Layers = 9;
    std::vector<double> W(Layers * N * N), B(Layers * N), In(N), B0(N),
        B1(N);
    double Scale = 1.0 / std::sqrt(static_cast<double>(N));
    for (double &V : W)
      V = R.uniform(-Scale, Scale);
    for (double &V : B)
      V = R.uniform(-0.1, 0.1);
    for (double &V : In)
      V = R.uniform(0.0, 1.0);
    uint64_t Base = timeNearest([&] {
      std::memcpy(B0.data(), In.data(), N * sizeof(double));
      base_ffnn(W.data(), B.data(), B0.data(), B1.data(), N, Layers);
    });
    auto TimeIt = [&](auto *Kernel, auto Tag) -> uint64_t {
      using T = std::remove_pointer_t<decltype(Tag)>;
      std::vector<T> IW(W.size()), IB(B.size()), I0(N), I1(N), IIn(N);
      for (size_t K = 0; K < W.size(); ++K)
        IW[K] = T::fromEndpoints(W[K], nextUp(W[K]));
      for (size_t K = 0; K < B.size(); ++K)
        IB[K] = T::fromEndpoints(B[K], nextUp(B[K]));
      for (int K = 0; K < N; ++K)
        IIn[K] = T::fromEndpoints(In[K], nextUp(In[K]));
      return medianCycles([&] {
        std::memcpy(I0.data(), IIn.data(), N * sizeof(T));
        Kernel(IW.data(), IB.data(), I0.data(), I1.data(), N, Layers);
      });
    };
    row("ffnn", N, "sv-dbl", TimeIt(sv_ffnn, (IntervalSse *)nullptr),
        Base);
    row("ffnn", N, "vv-dbl", TimeIt(vv_ffnn, (IntervalSse *)nullptr),
        Base);
    row("ffnn", N, "sv-dd", TimeIt(svdd_ffnn, (DdIntervalAvx *)nullptr),
        Base);
    row("ffnn", N, "vv-dd", TimeIt(vvdd_ffnn, (DdIntervalAvx *)nullptr),
        Base);
  }

  // ---- gemm ----
  {
    const int N = Full ? 616 : 120;
    std::vector<double> A(N * N), B(N * N), C0(N * N), C(N * N);
    for (int K = 0; K < N * N; ++K) {
      A[K] = R.uniform(-1, 1);
      B[K] = R.uniform(-1, 1);
      C0[K] = R.uniform(-1, 1);
    }
    uint64_t Base = timeNearest(
        [&] {
          std::memcpy(C.data(), C0.data(), N * N * sizeof(double));
          base_gemm(C.data(), A.data(), B.data(), N);
        },
        3);
    auto TimeIt = [&](auto *Kernel, auto Tag, int Reps) -> uint64_t {
      using T = std::remove_pointer_t<decltype(Tag)>;
      std::vector<T> IA(N * N), IB(N * N), IC(N * N), IC0(N * N);
      for (int K = 0; K < N * N; ++K) {
        IA[K] = T::fromEndpoints(A[K], nextUp(A[K]));
        IB[K] = T::fromEndpoints(B[K], nextUp(B[K]));
        IC0[K] = T::fromEndpoints(C0[K], nextUp(C0[K]));
      }
      return medianCycles(
          [&] {
            std::memcpy(IC.data(), IC0.data(), N * N * sizeof(T));
            Kernel(IC.data(), IA.data(), IB.data(), N);
          },
          Reps);
    };
    row("gemm", N, "sv-dbl", TimeIt(sv_gemm, (IntervalSse *)nullptr, 3),
        Base);
    row("gemm", N, "vv-dbl", TimeIt(vv_gemm, (IntervalSse *)nullptr, 3),
        Base);
    row("gemm", N, "sv-dd", TimeIt(svdd_gemm, (DdIntervalAvx *)nullptr, 1),
        Base);
    row("gemm", N, "vv-dd", TimeIt(vvdd_gemm, (DdIntervalAvx *)nullptr, 1),
        Base);
  }

  // ------------------------------------------------------------------
  // Mid-end optimizer: -O0 vs default -O on the sv configuration.
  // ------------------------------------------------------------------
  std::printf("table,benchmark,config,speedup\n");

  // ---- gemm: add+mul fuses to ia_fma in the inner loop ----
  {
    const int N = Full ? 256 : 120;
    std::vector<IntervalSse> IA(N * N), IB(N * N), IC0(N * N), IC(N * N);
    Rng G(benchSeed("table5opt", "gemm", N));
    fillUlpIntervals(IA.data(), N * N, G);
    fillUlpIntervals(IB.data(), N * N, G);
    fillUlpIntervals(IC0.data(), N * N, G);
    auto Run = [&](auto *Kernel) {
      return [&, Kernel] {
        std::memcpy(IC.data(), IC0.data(), N * N * sizeof(IntervalSse));
        Kernel(IC.data(), IA.data(), IB.data(), N);
      };
    };
    optRow("gemm", N, Run(sv0_gemm), Run(sv_gemm), 5);
  }

  // ---- mvm: the same fusion in a reduction-shaped loop ----
  {
    const int M = Full ? 1024 : 400, N = M;
    std::vector<IntervalSse> IA(M * N), IX(N), IY0(M), IY(M);
    Rng G(benchSeed("table5opt", "mvm", M));
    fillUlpIntervals(IA.data(), M * N, G);
    fillUlpIntervals(IX.data(), N, G);
    fillUlpIntervals(IY0.data(), M, G);
    auto Run = [&](auto *Kernel) {
      return [&, Kernel] {
        std::memcpy(IY.data(), IY0.data(), M * sizeof(IntervalSse));
        Kernel(IA.data(), IX.data(), IY.data(), M, N);
      };
    };
    optRow("mvm", M, Run(sv0_mvm), Run(sv_mvm));
  }

  // ---- henon: constant-sign multiplies (ia_mul_pu) plus fusion ----
  {
    const int Points = 256, Iters = 40;
    std::vector<IntervalSse> PX(Points), PY(Points);
    Rng G(benchSeed("table5opt", "henon", Points));
    fillUlpIntervals(PX.data(), Points, G, -0.5, 0.5);
    fillUlpIntervals(PY.data(), Points, G, -0.5, 0.5);
    volatile double Sink = 0.0;
    auto Run = [&](auto *Kernel) {
      return [&, Kernel] {
        double S = 0.0;
        for (int P = 0; P < Points; ++P)
          S += Kernel(PX[P], PY[P], Iters).toInterval().Hi;
        Sink = Sink + S;
      };
    };
    optRow("henon", Iters, Run(sv0_henon), Run(sv_henon));
  }

  // ---- horner: guard-derived sign fact enables ia_fma_pu ----
  {
    const int D = 30, Points = 2048;
    std::vector<IntervalSse> Coef(D + 1), XS(Points);
    Rng G(benchSeed("table5opt", "horner", D));
    fillUlpIntervals(Coef.data(), D + 1, G, -2.0, 2.0);
    fillUlpIntervals(XS.data(), Points, G, 0.001, 1.5);
    volatile double Sink = 0.0;
    auto Run = [&](auto *Kernel) {
      return [&, Kernel] {
        double S = 0.0;
        for (int P = 0; P < Points; ++P)
          S += Kernel(Coef.data(), XS[P], D).toInterval().Hi;
        Sink = Sink + S;
      };
    };
    optRow("horner", D, Run(sv0_horner), Run(sv_horner));
  }

  // ---- pade: ia_fma_pp numerator/denominator and ia_div_p ----
  {
    const int N = 8192;
    std::vector<IntervalSse> XS(N), Out(N);
    Rng G(benchSeed("table5opt", "pade", N));
    fillUlpIntervals(XS.data(), N, G, 0.001, 50.0);
    volatile double Sink = 0.0;
    auto Run = [&](auto *Kernel) {
      return [&, Kernel] {
        Sink = Sink + Kernel(XS.data(), Out.data(), N).toInterval().Hi;
      };
    };
    optRow("pade", N, Run(sv0_pade), Run(sv_pade));
  }

  // ---- gauss: -O lowers exp/log/sin/cos to the certified polynomial
  // fast path (no fesetround per call); -O0 keeps the libm substitution.
  {
    const int N = 8192;
    std::vector<IntervalSse> XS(N), Out(N);
    Rng G(benchSeed("table5opt", "gauss", N));
    fillUlpIntervals(XS.data(), N, G, -3.0, 3.0);
    volatile double Sink = 0.0;
    auto Run = [&](auto *Kernel) {
      return [&, Kernel] {
        Sink = Sink + Kernel(XS.data(), Out.data(), N).toInterval().Hi;
      };
    };
    optRow("gauss", N, Run(sv0_gauss), Run(sv_gauss));
  }

  double LogSum = 0.0;
  for (const OptRow &O : OptRows)
    LogSum += std::log(O.Speedup);
  if (!OptRows.empty())
    std::printf("table5opt,geomean,O0-vs-O1,%.2f\n",
                std::exp(LogSum / OptRows.size()));

  // ------------------------------------------------------------------
  // Precision profiler: --profile instrumentation overhead on the sv
  // configuration (target: < 2.5x).
  // ------------------------------------------------------------------
  std::printf("table,benchmark,config,overhead\n");

  // ---- gemm ----
  {
    const int N = 120;
    std::vector<IntervalSse> IA(N * N), IB(N * N), IC0(N * N), IC(N * N);
    Rng G(benchSeed("table5prof", "gemm", N));
    fillUlpIntervals(IA.data(), N * N, G);
    fillUlpIntervals(IB.data(), N * N, G);
    fillUlpIntervals(IC0.data(), N * N, G);
    auto Run = [&](auto *Kernel) {
      return [&, Kernel] {
        std::memcpy(IC.data(), IC0.data(), N * N * sizeof(IntervalSse));
        Kernel(IC.data(), IA.data(), IB.data(), N);
      };
    };
    profRow("gemm", N, Run(sv_gemm), Run(svp_gemm), 5);
  }

  // ---- mvm ----
  {
    const int M = 400, N = M;
    std::vector<IntervalSse> IA(M * N), IX(N), IY0(M), IY(M);
    Rng G(benchSeed("table5prof", "mvm", M));
    fillUlpIntervals(IA.data(), M * N, G);
    fillUlpIntervals(IX.data(), N, G);
    fillUlpIntervals(IY0.data(), M, G);
    auto Run = [&](auto *Kernel) {
      return [&, Kernel] {
        std::memcpy(IY.data(), IY0.data(), M * sizeof(IntervalSse));
        Kernel(IA.data(), IX.data(), IY.data(), M, N);
      };
    };
    profRow("mvm", M, Run(sv_mvm), Run(svp_mvm));
  }

  // ---- henon ----
  {
    const int Points = 256, Iters = 40;
    std::vector<IntervalSse> PX(Points), PY(Points);
    Rng G(benchSeed("table5prof", "henon", Points));
    fillUlpIntervals(PX.data(), Points, G, -0.5, 0.5);
    fillUlpIntervals(PY.data(), Points, G, -0.5, 0.5);
    volatile double Sink = 0.0;
    auto Run = [&](auto *Kernel) {
      return [&, Kernel] {
        double S = 0.0;
        for (int P = 0; P < Points; ++P)
          S += Kernel(PX[P], PY[P], Iters).toInterval().Hi;
        Sink = Sink + S;
      };
    };
    profRow("henon", Iters, Run(sv_henon), Run(svp_henon));
  }

  // ---- horner ----
  {
    const int D = 30, Points = 2048;
    std::vector<IntervalSse> Coef(D + 1), XS(Points);
    Rng G(benchSeed("table5prof", "horner", D));
    fillUlpIntervals(Coef.data(), D + 1, G, -2.0, 2.0);
    fillUlpIntervals(XS.data(), Points, G, 0.001, 1.5);
    volatile double Sink = 0.0;
    auto Run = [&](auto *Kernel) {
      return [&, Kernel] {
        double S = 0.0;
        for (int P = 0; P < Points; ++P)
          S += Kernel(Coef.data(), XS[P], D).toInterval().Hi;
        Sink = Sink + S;
      };
    };
    profRow("horner", D, Run(sv_horner), Run(svp_horner));
  }

  // ---- pade ----
  {
    const int N = 8192;
    std::vector<IntervalSse> XS(N), Out(N);
    Rng G(benchSeed("table5prof", "pade", N));
    fillUlpIntervals(XS.data(), N, G, 0.001, 50.0);
    volatile double Sink = 0.0;
    auto Run = [&](auto *Kernel) {
      return [&, Kernel] {
        Sink = Sink + Kernel(XS.data(), Out.data(), N).toInterval().Hi;
      };
    };
    profRow("pade", N, Run(sv_pade), Run(svp_pade));
  }

  {
    std::vector<double> Overheads;
    for (const ProfRow &P : ProfRows)
      Overheads.push_back(P.Overhead);
    if (!Overheads.empty())
      std::printf("table5prof,geomean,profile-overhead,%.2f\n",
                  geomean(Overheads));
  }

  if (JsonPath && !writeJson(JsonPath)) {
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath);
    return 1;
  }
  return 0;
}
