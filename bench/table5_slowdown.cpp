//===- table5_slowdown.cpp - Table V: interval vs non-interval slowdown --------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Table V: slowdown of the IGen-generated interval code relative to the
// non-interval input program, for {sv, vv} x {double, double-double} on
// the four benchmarks. Expected shape: double 2.3x-13x; double-double
// one to two orders of magnitude, and noticeably worse for vv-dd (the
// automatic intrinsic path).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "KernelDecls.h"

#include <cstring>
#include <string>
#include <vector>

using namespace igen;
using namespace igen::bench;

namespace {

Rng R(555);

template <typename Fn> uint64_t timeNearest(Fn F, int Reps = 5) {
  RoundNearestScope RN;
  return medianCycles(F, Reps);
}

void row(const char *Bench, int Size, const char *Config, uint64_t Cyc,
         uint64_t BaseCyc) {
  std::printf("table5,%s-%d,%s,%.1f\n", Bench, Size, Config,
              static_cast<double>(Cyc) / BaseCyc);
}

} // namespace

int main(int Argc, char **Argv) {
  bool Full = Argc > 1 && std::string(Argv[1]) == "--full";
  RoundUpwardScope Up;
  std::printf("table,benchmark,config,slowdown\n");

  // ---- fft-64 ----
  {
    const int N = 64;
    FftSetup S(N);
    std::vector<double> Re0(N), Im0(N);
    for (int K = 0; K < N; ++K) {
      Re0[K] = R.uniform(-1, 1);
      Im0[K] = R.uniform(-1, 1);
    }
    std::vector<double> Re = Re0, Im = Im0, Wre = S.Wre, Wim = S.Wim;
    std::vector<int> Rev = S.Rev;
    uint64_t Base = timeNearest([&] {
      std::memcpy(Re.data(), Re0.data(), N * sizeof(double));
      std::memcpy(Im.data(), Im0.data(), N * sizeof(double));
      base_fft(Re.data(), Im.data(), Wre.data(), Wim.data(), Rev.data(),
               N);
    });
    auto TimeIt = [&](auto *Kernel, auto Tag) -> uint64_t {
      using T = std::remove_pointer_t<decltype(Tag)>;
      std::vector<T> IRe(N), IIm(N), IWre(Wre.size()), IWim(Wim.size());
      for (int K = 0; K < N; ++K) {
        IRe[K] = T::fromEndpoints(Re0[K], nextUp(Re0[K]));
        IIm[K] = T::fromEndpoints(Im0[K], nextUp(Im0[K]));
      }
      for (size_t K = 0; K < Wre.size(); ++K) {
        IWre[K] = T::fromPoint(Wre[K]);
        IWim[K] = T::fromPoint(Wim[K]);
      }
      std::vector<T> IRe0 = IRe, IIm0 = IIm;
      return medianCycles([&] {
        std::memcpy(IRe.data(), IRe0.data(), N * sizeof(T));
        std::memcpy(IIm.data(), IIm0.data(), N * sizeof(T));
        Kernel(IRe.data(), IIm.data(), IWre.data(), IWim.data(),
               Rev.data(), N);
      });
    };
    row("fft", N, "sv-dbl", TimeIt(sv_fft, (IntervalSse *)nullptr), Base);
    row("fft", N, "vv-dbl", TimeIt(vv_fft, (IntervalSse *)nullptr), Base);
    row("fft", N, "sv-dd", TimeIt(svdd_fft, (DdIntervalAvx *)nullptr),
        Base);
    row("fft", N, "vv-dd", TimeIt(vvdd_fft, (DdIntervalAvx *)nullptr),
        Base);
  }

  // ---- potrf-124 ----
  {
    const int N = 124;
    std::vector<double> Spd = spdMatrix(N, R), A = Spd;
    uint64_t Base = timeNearest([&] {
      std::memcpy(A.data(), Spd.data(), N * N * sizeof(double));
      base_potrf(A.data(), N);
    });
    auto TimeIt = [&](auto *Kernel, auto Tag) -> uint64_t {
      using T = std::remove_pointer_t<decltype(Tag)>;
      std::vector<T> IA0(N * N), IA(N * N);
      for (int K = 0; K < N * N; ++K)
        IA0[K] = T::fromEndpoints(Spd[K], nextUp(Spd[K]));
      return medianCycles([&] {
        std::memcpy(IA.data(), IA0.data(), N * N * sizeof(T));
        Kernel(IA.data(), N);
      });
    };
    row("potrf", N, "sv-dbl", TimeIt(sv_potrf, (IntervalSse *)nullptr),
        Base);
    row("potrf", N, "vv-dbl", TimeIt(vv_potrf, (IntervalSse *)nullptr),
        Base);
    row("potrf", N, "sv-dd", TimeIt(svdd_potrf, (DdIntervalAvx *)nullptr),
        Base);
    row("potrf", N, "vv-dd", TimeIt(vvdd_potrf, (DdIntervalAvx *)nullptr),
        Base);
  }

  // ---- ffnn ----
  {
    const int N = Full ? 200 : 104;
    const int Layers = 9;
    std::vector<double> W(Layers * N * N), B(Layers * N), In(N), B0(N),
        B1(N);
    double Scale = 1.0 / std::sqrt(static_cast<double>(N));
    for (double &V : W)
      V = R.uniform(-Scale, Scale);
    for (double &V : B)
      V = R.uniform(-0.1, 0.1);
    for (double &V : In)
      V = R.uniform(0.0, 1.0);
    uint64_t Base = timeNearest([&] {
      std::memcpy(B0.data(), In.data(), N * sizeof(double));
      base_ffnn(W.data(), B.data(), B0.data(), B1.data(), N, Layers);
    });
    auto TimeIt = [&](auto *Kernel, auto Tag) -> uint64_t {
      using T = std::remove_pointer_t<decltype(Tag)>;
      std::vector<T> IW(W.size()), IB(B.size()), I0(N), I1(N), IIn(N);
      for (size_t K = 0; K < W.size(); ++K)
        IW[K] = T::fromEndpoints(W[K], nextUp(W[K]));
      for (size_t K = 0; K < B.size(); ++K)
        IB[K] = T::fromEndpoints(B[K], nextUp(B[K]));
      for (int K = 0; K < N; ++K)
        IIn[K] = T::fromEndpoints(In[K], nextUp(In[K]));
      return medianCycles([&] {
        std::memcpy(I0.data(), IIn.data(), N * sizeof(T));
        Kernel(IW.data(), IB.data(), I0.data(), I1.data(), N, Layers);
      });
    };
    row("ffnn", N, "sv-dbl", TimeIt(sv_ffnn, (IntervalSse *)nullptr),
        Base);
    row("ffnn", N, "vv-dbl", TimeIt(vv_ffnn, (IntervalSse *)nullptr),
        Base);
    row("ffnn", N, "sv-dd", TimeIt(svdd_ffnn, (DdIntervalAvx *)nullptr),
        Base);
    row("ffnn", N, "vv-dd", TimeIt(vvdd_ffnn, (DdIntervalAvx *)nullptr),
        Base);
  }

  // ---- gemm ----
  {
    const int N = Full ? 616 : 120;
    std::vector<double> A(N * N), B(N * N), C0(N * N), C(N * N);
    for (int K = 0; K < N * N; ++K) {
      A[K] = R.uniform(-1, 1);
      B[K] = R.uniform(-1, 1);
      C0[K] = R.uniform(-1, 1);
    }
    uint64_t Base = timeNearest(
        [&] {
          std::memcpy(C.data(), C0.data(), N * N * sizeof(double));
          base_gemm(C.data(), A.data(), B.data(), N);
        },
        3);
    auto TimeIt = [&](auto *Kernel, auto Tag, int Reps) -> uint64_t {
      using T = std::remove_pointer_t<decltype(Tag)>;
      std::vector<T> IA(N * N), IB(N * N), IC(N * N), IC0(N * N);
      for (int K = 0; K < N * N; ++K) {
        IA[K] = T::fromEndpoints(A[K], nextUp(A[K]));
        IB[K] = T::fromEndpoints(B[K], nextUp(B[K]));
        IC0[K] = T::fromEndpoints(C0[K], nextUp(C0[K]));
      }
      return medianCycles(
          [&] {
            std::memcpy(IC.data(), IC0.data(), N * N * sizeof(T));
            Kernel(IC.data(), IA.data(), IB.data(), N);
          },
          Reps);
    };
    row("gemm", N, "sv-dbl", TimeIt(sv_gemm, (IntervalSse *)nullptr, 3),
        Base);
    row("gemm", N, "vv-dbl", TimeIt(vv_gemm, (IntervalSse *)nullptr, 3),
        Base);
    row("gemm", N, "sv-dd", TimeIt(svdd_gemm, (DdIntervalAvx *)nullptr, 1),
        Base);
    row("gemm", N, "vv-dd", TimeIt(vvdd_gemm, (DdIntervalAvx *)nullptr, 1),
        Base);
  }
  return 0;
}
