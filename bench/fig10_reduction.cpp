//===- fig10_reduction.cpp - Fig. 10: reduction accuracy improvement -----------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Fig. 10: average accuracy of y = A*x + y (m = 10, n = 10^s) in double
// and double-double precision, with and without the reduction
// transformation, for inputs with 10% and 45% negative values. Also
// reports the runtime ratios quoted in Section VII-B. Expected shape:
// without the transformation accuracy degrades with n; with it accuracy
// stays roughly constant (gains of ~3-13 bits).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "KernelDecls.h"

#include "interval/Accuracy.h"

#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

using namespace igen;
using igen::Dd;
using namespace igen::bench;

namespace {

Rng R(424242);

/// Magnitudes drawn like the paper: random doubles, a fraction negative.
std::vector<double> inputs(int N, int PercentNeg) {
  std::vector<double> V(N);
  for (int K = 0; K < N; ++K) {
    double Mag = R.uniform(0.0, 1.0);
    bool Neg = R.uniform(0.0, 100.0) < PercentNeg;
    V[K] = Neg ? -Mag : Mag;
  }
  return V;
}

/// Width-1-ulp input interval at the type's own precision: for double
/// intervals ulp of the value; for double-double intervals ulp of the low
/// word of a random double-double (the paper's protocol, Section VII).
template <typename T> T ulpInput(double V) {
  if constexpr (std::is_same_v<T, DdIntervalAvx>) {
    Dd X(V, V * 0x1.3p-55); // dd value with a nonzero low word
    Dd Hi = X;
    Hi.L = nextUp(Hi.L);
    return DdIntervalAvx::fromScalar(
        igen::DdInterval::fromEndpoints(X, Hi));
  } else {
    return T::fromEndpoints(V, nextUp(V));
  }
}

template <typename T, typename Fn>
double avgAccuracy(Fn Kernel, const std::vector<double> &A,
                   const std::vector<double> &X,
                   const std::vector<double> &Y, int M, int N,
                   double (*Bits)(const T &)) {
  std::vector<T> IA(M * N), IX(N), IY(M);
  for (int K = 0; K < M * N; ++K)
    IA[K] = ulpInput<T>(A[K]);
  for (int K = 0; K < N; ++K)
    IX[K] = ulpInput<T>(X[K]);
  for (int K = 0; K < M; ++K)
    IY[K] = ulpInput<T>(Y[K]);
  Kernel(IA.data(), IX.data(), IY.data(), M, N);
  double Sum = 0;
  for (int K = 0; K < M; ++K)
    Sum += Bits(IY[K]);
  return Sum / M;
}

double bitsSse(const IntervalSse &I) {
  return accuracyBits(I.toInterval());
}
double bitsDd(const DdIntervalAvx &I) {
  return accuracyBits(I.toScalar());
}

} // namespace

int main(int Argc, char **Argv) {
  bool Full = Argc > 1 && std::string(Argv[1]) == "--full";
  RoundUpwardScope Up;
  const int M = 10;
  std::printf("table,test,config,avg_bits\n");

  std::vector<int> Exps = Full ? std::vector<int>{2, 3, 4, 5}
                               : std::vector<int>{2, 3, 4};
  for (int PercentNeg : {10, 45}) {
    for (int E : Exps) {
      int N = 1;
      for (int K = 0; K < E; ++K)
        N *= 10;
      std::vector<double> A = inputs(M * N, PercentNeg);
      std::vector<double> X = inputs(N, PercentNeg);
      std::vector<double> Y = inputs(M, PercentNeg);
      char Test[64];
      std::snprintf(Test, sizeof(Test), "(%d;%d)", E, PercentNeg);
      std::printf("fig10,%s,double-plain,%.1f\n", Test,
                  avgAccuracy<IntervalSse>(sv_mvm, A, X, Y, M, N,
                                           bitsSse));
      std::printf("fig10,%s,double-reduce,%.1f\n", Test,
                  avgAccuracy<IntervalSse>(svred_mvm, A, X, Y, M, N,
                                           bitsSse));
      std::printf("fig10,%s,dd-plain,%.1f\n", Test,
                  avgAccuracy<DdIntervalAvx>(svdd_mvm, A, X, Y, M, N,
                                             bitsDd));
      std::printf("fig10,%s,dd-reduce,%.1f\n", Test,
                  avgAccuracy<DdIntervalAvx>(svddred_mvm, A, X, Y, M, N,
                                             bitsDd));
    }
  }

  // Runtime ratios (Section VII-B text): interval vs non-interval, with
  // and without the transformation.
  {
    const int N = 10000;
    std::vector<double> A = inputs(M * N, 10), X = inputs(N, 10),
                        Y0 = inputs(M, 10), Y = Y0;
    uint64_t Base;
    {
      RoundNearestScope RN;
      Base = medianCycles([&] {
        std::memcpy(Y.data(), Y0.data(), M * sizeof(double));
        base_mvm(A.data(), X.data(), Y.data(), M, N);
      });
    }
    auto TimeIt = [&](auto Kernel, auto Tag) -> uint64_t {
      using T = std::remove_pointer_t<decltype(Tag)>;
      std::vector<T> IA(M * N), IX(N), IY(M), IY0(M);
      for (int K = 0; K < M * N; ++K)
        IA[K] = T::fromEndpoints(A[K], nextUp(A[K]));
      for (int K = 0; K < N; ++K)
        IX[K] = T::fromEndpoints(X[K], nextUp(X[K]));
      for (int K = 0; K < M; ++K)
        IY0[K] = T::fromEndpoints(Y0[K], nextUp(Y0[K]));
      return medianCycles([&] {
        std::memcpy(IY.data(), IY0.data(), M * sizeof(T));
        Kernel(IA.data(), IX.data(), IY.data(), M, N);
      });
    };
    std::printf("fig10-runtime,slowdown,double-plain,%.1f\n",
                (double)TimeIt(sv_mvm, (IntervalSse *)nullptr) / Base);
    std::printf("fig10-runtime,slowdown,double-reduce,%.1f\n",
                (double)TimeIt(svred_mvm, (IntervalSse *)nullptr) / Base);
    std::printf("fig10-runtime,slowdown,dd-plain,%.1f\n",
                (double)TimeIt(svdd_mvm, (DdIntervalAvx *)nullptr) / Base);
    std::printf(
        "fig10-runtime,slowdown,dd-reduce,%.1f\n",
        (double)TimeIt(svddred_mvm, (DdIntervalAvx *)nullptr) / Base);
  }
  return 0;
}
