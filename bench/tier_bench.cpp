//===- tier_bench.cpp - Adaptive precision tiering cost/benefit -------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Measures the --tier contract on henon and gauss plus the
// movability-pruning envelope kernel:
//
//  * easy inputs (tight enclosures): the tiered build must ride the
//    f64i tier -- zero escalations and within a few percent of the
//    plain sv build, far from the always-double-double cost;
//  * hard inputs (blowup at f64i): every call escalates, the result
//    width collapses to the ddi clone's, and the cost approaches
//    sv + dd (the price of one recompute, paid only when needed);
//  * envmax (immovable result): the predicate fires but the rerun is
//    pruned, so the tiered row times like the plain row.
//
// Configs: sv-easy/tier-easy/dd-easy and the -hard triple per kernel
// (envmax: sv-hard/tier-hard only). The dd rows call the tier build's
// ddi clones directly. The escalation-counter contract is checked
// deterministically; any violation exits nonzero. `--json <path>`
// writes the rows machine-readably (BENCH_tier.json).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "KernelDecls.h"
#include "profile/TierRuntime.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

using namespace igen;
using namespace igen::bench;

namespace {

bool ContractViolated = false;

struct RegionCounts {
  uint64_t Escalations = 0, Pruned = 0;
};

RegionCounts counts(const char *Fn) {
  RegionCounts C;
  for (const tier::RegionReport &R : tier::snapshot())
    if (R.Func == Fn) {
      C.Escalations = R.Escalations;
      C.Pruned = R.Pruned;
    }
  return C;
}

/// Times one tiered row and checks its escalation contract: EveryCall
/// -> every invocation escalated; Never -> none did (NeverPruned
/// additionally requires the predicate to have fired and been pruned).
enum class Expect { EveryCall, Never, NeverPruned };

uint64_t timedTierRow(const char *Region, Expect Want,
                      const std::function<void()> &Fn, int Reps) {
  RegionCounts Before = counts(Region);
  uint64_t Cycles = minCycles(Fn, Reps);
  RegionCounts After = counts(Region);
  uint64_t Calls = static_cast<uint64_t>(Reps) + 1; // + warm-up
  uint64_t Esc = After.Escalations - Before.Escalations;
  uint64_t Pruned = After.Pruned - Before.Pruned;
  bool Ok = true;
  switch (Want) {
  case Expect::EveryCall:
    Ok = Esc == Calls;
    break;
  case Expect::Never:
    Ok = Esc == 0;
    break;
  case Expect::NeverPruned:
    Ok = Esc == 0 && Pruned == Calls;
    break;
  }
  if (!Ok) {
    std::fprintf(stderr,
                 "tier_bench: ERROR: %s escalation contract violated "
                 "(%llu escalations, %llu pruned over %llu calls)\n",
                 Region, static_cast<unsigned long long>(Esc),
                 static_cast<unsigned long long>(Pruned),
                 static_cast<unsigned long long>(Calls));
    ContractViolated = true;
  }
  return Cycles;
}

double width(IntervalSse V) {
  Interval I = V.toInterval();
  return I.Hi + I.NegLo;
}

double width(DdIntervalAvx V) {
  DdInterval I = V.toScalar();
  return (I.Hi.H + I.Hi.L) + (I.NegLo.H + I.NegLo.L);
}

//===--------------------------------------------------------------------===//
// henon: size = iteration count. Point inputs; easy stays under the
// blowup threshold, hard crosses it (the f64i width is rounding-induced
// and grows exponentially, so the ddi rerun collapses it).
//===--------------------------------------------------------------------===//

double henonIops(int Iters) { return 5.0 * Iters; }

void benchHenon(JsonReport *Rep, bool Hard) {
  const int Iters = Hard ? 60 : 12;
  const char *Suffix = Hard ? "hard" : "easy";
  const int Reps = 33;
  IntervalSse X = IntervalSse::fromPoint(0.3);
  IntervalSse Y = IntervalSse::fromPoint(0.24);
  DdIntervalAvx Xd = DdIntervalAvx::fromPoint(0.3);
  DdIntervalAvx Yd = DdIntervalAvx::fromPoint(0.24);

  IntervalSse RSv, RTier;
  DdIntervalAvx RDd;
  uint64_t CSv = minCycles([&] { RSv = sv_henon(X, Y, Iters); }, Reps);
  uint64_t CTier = timedTierRow(
      "svt_henon", Hard ? Expect::EveryCall : Expect::Never,
      [&] { RTier = svt_henon(X, Y, Iters); }, Reps);
  uint64_t CDd = minCycles([&] { RDd = svt_henon__dd(Xd, Yd, Iters); },
                           Reps);

  reportRow(Rep, "henon", (std::string("sv-") + Suffix).c_str(), Iters,
            CSv, henonIops(Iters));
  reportRow(Rep, "henon", (std::string("tier-") + Suffix).c_str(), Iters,
            CTier, henonIops(Iters));
  reportRow(Rep, "henon", (std::string("dd-") + Suffix).c_str(), Iters,
            CDd, henonIops(Iters));
  std::printf("# henon-%s: tier/sv %.2fx, dd/sv %.2fx; widths sv %.3g "
              "tier %.3g dd %.3g\n",
              Suffix, double(CTier) / CSv, double(CDd) / CSv, width(RSv),
              width(RTier), width(RDd));
}

//===--------------------------------------------------------------------===//
// gauss: size = element count. Easy: width-1-ulp inputs. Hard: 1e-4-wide
// inputs push the accumulated sum past the threshold.
//===--------------------------------------------------------------------===//

double gaussIops(int N) { return 10.0 * N; }

void benchGauss(JsonReport *Rep, bool Hard) {
  const int N = 256;
  const char *Suffix = Hard ? "hard" : "easy";
  const int Reps = 11;
  Rng R(benchSeed("tier_gauss", Suffix, N));
  std::vector<IntervalSse> Xs(N), Out(N);
  for (int I = 0; I < N; ++I) {
    double C = R.uniform(-1.0, 1.0);
    Xs[I] = Hard ? IntervalSse::fromEndpoints(C, C + 1e-4)
                 : IntervalSse::fromEndpoints(C, nextUp(C));
  }

  IntervalSse RSv, RTier;
  DdIntervalAvx RDd;
  uint64_t CSv =
      minCycles([&] { RSv = sv_gauss(Xs.data(), Out.data(), N); }, Reps);
  uint64_t CTier = timedTierRow(
      "svt_gauss", Hard ? Expect::EveryCall : Expect::Never,
      [&] { RTier = svt_gauss(Xs.data(), Out.data(), N); }, Reps);
  uint64_t CDd =
      minCycles([&] { RDd = svt_gauss__dd(Xs.data(), Out.data(), N); },
                Reps);

  reportRow(Rep, "gauss", (std::string("sv-") + Suffix).c_str(), N, CSv,
            gaussIops(N));
  reportRow(Rep, "gauss", (std::string("tier-") + Suffix).c_str(), N,
            CTier, gaussIops(N));
  reportRow(Rep, "gauss", (std::string("dd-") + Suffix).c_str(), N, CDd,
            gaussIops(N));
  std::printf("# gauss-%s: tier/sv %.2fx, dd/sv %.2fx; widths sv %.3g "
              "tier %.3g dd %.3g\n",
              Suffix, double(CTier) / CSv, double(CDd) / CSv, width(RSv),
              width(RTier), width(RDd));
}

//===--------------------------------------------------------------------===//
// envmax: size = element count. Wide inputs fire the predicate, but the
// immovable result prunes the rerun: tier must time like sv.
//===--------------------------------------------------------------------===//

void benchEnvmax(JsonReport *Rep) {
  const int N = 1024;
  const int Reps = 11;
  Rng R(benchSeed("tier_envmax", "hard", N));
  std::vector<IntervalSse> Xs(N);
  for (int I = 0; I < N; ++I) {
    double C = R.uniform(-1.0, 1.0);
    Xs[I] = IntervalSse::fromEndpoints(C, C + 0.1);
  }

  IntervalSse RSv, RTier;
  uint64_t CSv = minCycles([&] { RSv = sv_envmax(Xs.data(), N); }, Reps);
  uint64_t CTier = timedTierRow(
      "svt_envmax", Expect::NeverPruned,
      [&] { RTier = svt_envmax(Xs.data(), N); }, Reps);

  reportRow(Rep, "envmax", "sv-hard", N, CSv, 2.0 * N);
  reportRow(Rep, "envmax", "tier-hard", N, CTier, 2.0 * N);
  std::printf("# envmax-hard: tier/sv %.2fx (pruned, no rerun); widths "
              "sv %.3g tier %.3g\n",
              double(CTier) / CSv, width(RSv), width(RTier));
}

} // namespace

int main(int argc, char **argv) {
  const char *JsonPath = jsonPathArg(argc, argv);
  JsonReport Report;
  JsonReport *Rep = JsonPath ? &Report : nullptr;

  RoundUpwardScope Up;
  igen_tier_env_refresh();
  igen_tier_reset();

  benchHenon(Rep, /*Hard=*/false);
  benchHenon(Rep, /*Hard=*/true);
  benchGauss(Rep, /*Hard=*/false);
  benchGauss(Rep, /*Hard=*/true);
  benchEnvmax(Rep);

  std::printf("\n");
  igen_tier_report(stdout);

  if (JsonPath && !Report.writeTo(JsonPath)) {
    std::fprintf(stderr, "tier_bench: cannot write %s\n", JsonPath);
    return 1;
  }
  return ContractViolated ? 1 : 0;
}
