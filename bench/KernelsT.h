//===- KernelsT.h - Library-baseline kernels --------------------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark kernels written the way one uses an interval *library*:
/// manually, via overloaded operators on the library's interval type
/// (Section VII: "Only the scalar code of the benchmarks is manually
/// implemented with the libraries"). Instantiated with BoostLikeInterval,
/// FilibLikeInterval and GaolLikeInterval for Fig. 8, and with AffineForm
/// for the Table VI comparison.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_BENCH_KERNELST_H
#define IGEN_BENCH_KERNELST_H

namespace igen::bench {

template <typename I>
void fftT(I *Re, I *Im, const I *Wre, const I *Wim, const int *Rev,
          int N) {
  for (int K = 0; K < N; ++K) {
    int J = Rev[K];
    if (J > K) {
      I T = Re[K];
      Re[K] = Re[J];
      Re[J] = T;
      T = Im[K];
      Im[K] = Im[J];
      Im[J] = T;
    }
  }
  int TBase = 0;
  for (int Len = 2; Len <= N; Len *= 2) {
    int Half = Len / 2;
    for (int K = 0; K < N; K += Len) {
      for (int J = 0; J < Half; ++J) {
        I Wr = Wre[TBase + J];
        I Wi = Wim[TBase + J];
        I Xr = Re[K + J + Half];
        I Xi = Im[K + J + Half];
        I Vr = Xr * Wr - Xi * Wi;
        I Vi = Xr * Wi + Xi * Wr;
        I Ur = Re[K + J];
        I Ui = Im[K + J];
        Re[K + J] = Ur + Vr;
        Im[K + J] = Ui + Vi;
        Re[K + J + Half] = Ur - Vr;
        Im[K + J + Half] = Ui - Vi;
      }
    }
    TBase += Half;
  }
}

template <typename I>
void gemmT(I *C, const I *A, const I *B, int N) {
  for (int Row = 0; Row < N; ++Row)
    for (int K = 0; K < N; ++K) {
      I AV = A[Row * N + K];
      for (int Col = 0; Col < N; ++Col)
        C[Row * N + Col] = C[Row * N + Col] + AV * B[K * N + Col];
    }
}

template <typename I> void potrfT(I *A, int N) {
  for (int J = 0; J < N; ++J) {
    I S = A[J * N + J];
    for (int K = 0; K < J; ++K)
      S = S - A[J * N + K] * A[J * N + K];
    I D = I::sqrtI(S);
    A[J * N + J] = D;
    for (int Row = J + 1; Row < N; ++Row) {
      I T = A[Row * N + J];
      for (int K = 0; K < J; ++K)
        T = T - A[Row * N + K] * A[J * N + K];
      A[Row * N + J] = T / D;
    }
  }
}

template <typename I>
void ffnnT(const I *W, const I *B, I *Buf0, I *Buf1, int N, int Layers) {
  for (int L = 0; L < Layers; ++L) {
    for (int O = 0; O < N; ++O) {
      I S = B[L * N + O];
      for (int K = 0; K < N; ++K)
        S = S + W[(L * N + O) * N + K] * Buf0[K];
      Buf1[O] = I::maxI(S, I::fromPoint(0.0));
    }
    for (int O = 0; O < N; ++O)
      Buf0[O] = Buf1[O];
  }
}

/// The Henon map over any arithmetic type with +,-,* (Fig. 11).
template <typename I> I henonT(I X, I Y, int Iterations, I A, I B, I One) {
  for (int K = 0; K < Iterations; ++K) {
    I XI = X;
    X = One - A * XI * XI + Y;
    Y = B * XI;
  }
  return X;
}

} // namespace igen::bench

#endif // IGEN_BENCH_KERNELST_H
