//===- fig9_perf_accuracy.cpp - Fig. 9: flops/cycle and certified bits ---------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Fig. 9a: real floating-point performance (flops/cycle) of IGen-vv and
// of the non-interval AVX baseline, per benchmark at its largest size.
// Interval flops are counted from the operation mix (add = 2 flops, mul =
// 8 flops + 6 comparisons -> we report the paper's iops-derived flop
// count: interval code performs ~5x the flops of the baseline for
// add/mul-balanced kernels).
//
// Fig. 9b: certified accuracy in bits for double and double-double
// interval results on width-1-ulp inputs.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "KernelDecls.h"

#include "interval/Accuracy.h"

#include <cstring>
#include <string>
#include <vector>

using namespace igen;
using igen::Dd;
using namespace igen::bench;

namespace {

Rng R(909);

/// Flops actually executed per interval operation in our implementation
/// (the add/mul mix of these kernels is roughly 1:1): interval add = 2
/// flops, interval mul = 8 flops (+6 comparisons, not counted as flops).
constexpr double FlopsPerIop = 5.0;

template <typename Vec> double minAccuracySse(const Vec &V) {
  double Min = 53.0;
  for (const IntervalSse &I : V)
    Min = std::min(Min, accuracyBits(I.toInterval()));
  return Min;
}

template <typename Vec> double minAccuracyDd(const Vec &V) {
  double Min = 106.0;
  for (const DdIntervalAvx &I : V)
    Min = std::min(Min, accuracyBits(I.toScalar()));
  return Min;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Full = Argc > 1 && std::string(Argv[1]) == "--full";
  RoundUpwardScope Up;
  std::printf("table,benchmark,metric,value\n");

  const int FftN = Full ? 256 : 64;
  const int GemmN = Full ? 616 : 120;
  const int PotrfN = 124;
  const int FfnnN = Full ? 200 : 104;
  const int Layers = 9;

  // ---------------- fft ----------------
  {
    FftSetup S(FftN);
    int N = FftN;
    std::vector<double> Re(N), Im(N);
    for (int K = 0; K < N; ++K) {
      Re[K] = R.uniform(-1, 1);
      Im[K] = R.uniform(-1, 1);
    }
    std::vector<double> Re0 = Re, Im0 = Im, Wre = S.Wre, Wim = S.Wim;
    std::vector<int> Rev = S.Rev;
    uint64_t BaseCyc;
    {
      RoundNearestScope RN;
      BaseCyc = medianCycles([&] {
        std::memcpy(Re.data(), Re0.data(), N * sizeof(double));
        std::memcpy(Im.data(), Im0.data(), N * sizeof(double));
        basev_fft(Re.data(), Im.data(), Wre.data(), Wim.data(), Rev.data(),
                  N);
      });
    }
    std::vector<IntervalSse> IRe(N), IIm(N), IWre(Wre.size()),
        IWim(Wim.size());
    for (int K = 0; K < N; ++K) {
      IRe[K] = IntervalSse::fromEndpoints(Re0[K], nextUp(Re0[K]));
      IIm[K] = IntervalSse::fromEndpoints(Im0[K], nextUp(Im0[K]));
    }
    for (size_t K = 0; K < Wre.size(); ++K) {
      IWre[K] = IntervalSse::fromPoint(Wre[K]);
      IWim[K] = IntervalSse::fromPoint(Wim[K]);
    }
    std::vector<IntervalSse> IRe0 = IRe, IIm0 = IIm;
    uint64_t VvCyc = medianCycles([&] {
      std::memcpy(IRe.data(), IRe0.data(), N * sizeof(IntervalSse));
      std::memcpy(IIm.data(), IIm0.data(), N * sizeof(IntervalSse));
      vv_fft(IRe.data(), IIm.data(), IWre.data(), IWim.data(), Rev.data(),
             N);
    });
    printRow("fig9a-flops-per-cycle", "fft-baseline", N,
             fftIops(N) / BaseCyc);
    printRow("fig9a-flops-per-cycle", "fft-igen-vv", N,
             fftIops(N) * FlopsPerIop / VvCyc);
    printRow("fig9b-accuracy-bits", "fft-double", N, minAccuracySse(IRe));

    std::vector<DdIntervalAvx> DRe(N), DIm(N), DWre(Wre.size()),
        DWim(Wim.size());
    for (int K = 0; K < N; ++K) {
      DRe[K] = ddUlpInput(Re0[K]);
      DIm[K] = ddUlpInput(Im0[K]);
    }
    for (size_t K = 0; K < Wre.size(); ++K) {
      DWre[K] = DdIntervalAvx::fromPoint(Wre[K]);
      DWim[K] = DdIntervalAvx::fromPoint(Wim[K]);
    }
    svdd_fft(DRe.data(), DIm.data(), DWre.data(), DWim.data(), Rev.data(),
             N);
    printRow("fig9b-accuracy-bits", "fft-dd", N, minAccuracyDd(DRe));
  }

  // ---------------- gemm ----------------
  {
    int N = GemmN;
    std::vector<double> A(N * N), B(N * N), C0(N * N), C(N * N);
    for (int K = 0; K < N * N; ++K) {
      A[K] = R.uniform(-1, 1);
      B[K] = R.uniform(-1, 1);
      C0[K] = R.uniform(-1, 1);
    }
    uint64_t BaseCyc;
    {
      RoundNearestScope RN;
      BaseCyc = medianCycles([&] {
        std::memcpy(C.data(), C0.data(), N * N * sizeof(double));
        basev_gemm(C.data(), A.data(), B.data(), N);
      }, 3);
    }
    std::vector<IntervalSse> IA(N * N), IB(N * N), IC(N * N), IC0(N * N);
    for (int K = 0; K < N * N; ++K) {
      IA[K] = IntervalSse::fromEndpoints(A[K], nextUp(A[K]));
      IB[K] = IntervalSse::fromEndpoints(B[K], nextUp(B[K]));
      IC0[K] = IntervalSse::fromEndpoints(C0[K], nextUp(C0[K]));
    }
    uint64_t VvCyc = medianCycles([&] {
      std::memcpy(IC.data(), IC0.data(), N * N * sizeof(IntervalSse));
      vv_gemm(IC.data(), IA.data(), IB.data(), N);
    }, 3);
    printRow("fig9a-flops-per-cycle", "gemm-baseline", N,
             gemmIops(N) / BaseCyc);
    printRow("fig9a-flops-per-cycle", "gemm-igen-vv", N,
             gemmIops(N) * FlopsPerIop / VvCyc);
    printRow("fig9b-accuracy-bits", "gemm-double", N, minAccuracySse(IC));

    std::vector<DdIntervalAvx> DA(N * N), DB(N * N), DC(N * N);
    for (int K = 0; K < N * N; ++K) {
      DA[K] = ddUlpInput(A[K]);
      DB[K] = ddUlpInput(B[K]);
      DC[K] = ddUlpInput(C0[K]);
    }
    svdd_gemm(DC.data(), DA.data(), DB.data(), N);
    printRow("fig9b-accuracy-bits", "gemm-dd", N, minAccuracyDd(DC));
  }

  // ---------------- potrf ----------------
  {
    int N = PotrfN;
    std::vector<double> Spd = spdMatrix(N, R), A = Spd;
    uint64_t BaseCyc;
    {
      RoundNearestScope RN;
      BaseCyc = medianCycles([&] {
        std::memcpy(A.data(), Spd.data(), N * N * sizeof(double));
        basev_potrf(A.data(), N);
      });
    }
    std::vector<IntervalSse> IA0(N * N), IA(N * N);
    for (int K = 0; K < N * N; ++K)
      IA0[K] = IntervalSse::fromEndpoints(Spd[K], nextUp(Spd[K]));
    uint64_t VvCyc = medianCycles([&] {
      std::memcpy(IA.data(), IA0.data(), N * N * sizeof(IntervalSse));
      vv_potrf(IA.data(), N);
    });
    printRow("fig9a-flops-per-cycle", "potrf-baseline", N,
             potrfIops(N) / BaseCyc);
    printRow("fig9a-flops-per-cycle", "potrf-igen-vv", N,
             potrfIops(N) * FlopsPerIop / VvCyc);
    printRow("fig9b-accuracy-bits", "potrf-double", N,
             minAccuracySse(IA));

    std::vector<DdIntervalAvx> DA(N * N);
    for (int K = 0; K < N * N; ++K)
      DA[K] = ddUlpInput(Spd[K]);
    svdd_potrf(DA.data(), N);
    printRow("fig9b-accuracy-bits", "potrf-dd", N, minAccuracyDd(DA));
  }

  // ---------------- ffnn ----------------
  {
    int N = FfnnN;
    std::vector<double> W(Layers * N * N), B(Layers * N), In(N), B0(N),
        B1(N);
    double Scale = 1.0 / std::sqrt(static_cast<double>(N));
    for (double &V : W)
      V = R.uniform(-Scale, Scale);
    for (double &V : B)
      V = R.uniform(-0.1, 0.1);
    for (double &V : In)
      V = R.uniform(0.0, 1.0);
    uint64_t BaseCyc;
    {
      RoundNearestScope RN;
      BaseCyc = medianCycles([&] {
        std::memcpy(B0.data(), In.data(), N * sizeof(double));
        basev_ffnn(W.data(), B.data(), B0.data(), B1.data(), N, Layers);
      });
    }
    std::vector<IntervalSse> IW(Layers * N * N), IB(Layers * N), I0(N),
        I1(N), IIn(N);
    for (size_t K = 0; K < W.size(); ++K)
      IW[K] = IntervalSse::fromEndpoints(W[K], nextUp(W[K]));
    for (size_t K = 0; K < B.size(); ++K)
      IB[K] = IntervalSse::fromEndpoints(B[K], nextUp(B[K]));
    for (int K = 0; K < N; ++K)
      IIn[K] = IntervalSse::fromEndpoints(In[K], nextUp(In[K]));
    uint64_t VvCyc = medianCycles([&] {
      std::memcpy(I0.data(), IIn.data(), N * sizeof(IntervalSse));
      vv_ffnn(IW.data(), IB.data(), I0.data(), I1.data(), N, Layers);
    });
    printRow("fig9a-flops-per-cycle", "ffnn-baseline", N,
             ffnnIops(N, Layers) / BaseCyc);
    printRow("fig9a-flops-per-cycle", "ffnn-igen-vv", N,
             ffnnIops(N, Layers) * FlopsPerIop / VvCyc);
    printRow("fig9b-accuracy-bits", "ffnn-double", N, minAccuracySse(I0));

    std::vector<DdIntervalAvx> DW(Layers * N * N), DB(Layers * N), D0(N),
        D1(N);
    for (size_t K = 0; K < W.size(); ++K)
      DW[K] = ddUlpInput(W[K]);
    for (size_t K = 0; K < B.size(); ++K)
      DB[K] = ddUlpInput(B[K]);
    for (int K = 0; K < N; ++K)
      D0[K] = ddUlpInput(In[K]);
    svdd_ffnn(DW.data(), DB.data(), D0.data(), D1.data(), N, Layers);
    printRow("fig9b-accuracy-bits", "ffnn-dd", N, minAccuracyDd(D0));
  }
  return 0;
}
