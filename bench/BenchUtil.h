//===- BenchUtil.h - Shared benchmark harness utilities ---------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cycle-accurate timing (rdtsc), the paper's measurement protocol
/// (repetitions with the median taken, warm cache; Section VII), input
/// generation (random width-1-ulp intervals), and operation counts for the
/// iops/flops-per-cycle metrics of Fig. 8/9.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_BENCH_BENCHUTIL_H
#define IGEN_BENCH_BENCHUTIL_H

#include "interval/DdSimd.h"
#include "interval/Interval.h"
#include "interval/Ulp.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <random>
#include <vector>
#include <x86intrin.h>

namespace igen::bench {

/// Serialized cycle counter read.
inline uint64_t readCycles() {
  unsigned Aux;
  _mm_lfence();
  uint64_t T = __rdtscp(&Aux);
  _mm_lfence();
  return T;
}

/// Runs \p Fn `Reps` times (after one warm-up run) and returns the median
/// cycle count, following the paper's protocol (median of repetitions,
/// warm cache).
inline uint64_t medianCycles(const std::function<void()> &Fn,
                             int Reps = 5) {
  Fn(); // warm-up
  std::vector<uint64_t> Times;
  Times.reserve(Reps);
  for (int R = 0; R < Reps; ++R) {
    uint64_t T0 = readCycles();
    Fn();
    Times.push_back(readCycles() - T0);
  }
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

/// Deterministic RNG shared by the benches.
class Rng {
public:
  explicit Rng(uint64_t Seed) : Gen(Seed) {}
  double uniform(double Lo, double Hi) {
    return std::uniform_real_distribution<double>(Lo, Hi)(Gen);
  }
  /// A random double and the width-1-ulp interval around it (the paper's
  /// input distribution: "each input interval has a length of 1 ulp").
  double point(double Lo = -1.0, double Hi = 1.0) {
    return uniform(Lo, Hi);
  }

private:
  std::mt19937_64 Gen;
};

/// Fills interval array \p Out (any type constructible via
/// fromEndpoints(lo,hi)) with width-1-ulp intervals around random points.
template <typename I>
void fillUlpIntervals(I *Out, int N, Rng &R, double Lo = -1.0,
                      double Hi = 1.0) {
  for (int K = 0; K < N; ++K) {
    double C = R.uniform(Lo, Hi);
    Out[K] = I::fromEndpoints(C, nextUp(C));
  }
}

/// Width-1-ulp-of-the-low-word double-double input interval (the paper's
/// input protocol for double-double runs, Section VII).
inline DdIntervalAvx ddUlpInput(double V) {
  Dd X(V, V * 0x1.3p-55);
  Dd Hi = X;
  Hi.L = nextUp(Hi.L);
  return DdIntervalAvx::fromScalar(DdInterval::fromEndpoints(X, Hi));
}

/// Generates a well-conditioned SPD matrix for potrf: A = B*B^T + n*I.
inline std::vector<double> spdMatrix(int N, Rng &R) {
  std::vector<double> B(N * N), A(N * N, 0.0);
  for (double &V : B)
    V = R.uniform(-1.0, 1.0);
  for (int I = 0; I < N; ++I)
    for (int J = 0; J <= I; ++J) {
      double S = 0;
      for (int K = 0; K < N; ++K)
        S += B[I * N + K] * B[J * N + K];
      A[I * N + J] = A[J * N + I] = S;
    }
  for (int I = 0; I < N; ++I)
    A[I * N + I] += N;
  return A;
}

/// Precomputes FFT twiddles (per-stage contiguous) and the bit-reversal
/// table for size N (power of two).
struct FftSetup {
  std::vector<double> Wre, Wim;
  std::vector<int> Rev;

  explicit FftSetup(int N) {
    Rev.resize(N);
    int LogN = 0;
    while ((1 << LogN) < N)
      ++LogN;
    for (int I = 0; I < N; ++I) {
      int R = 0;
      for (int B = 0; B < LogN; ++B)
        if (I & (1 << B))
          R |= 1 << (LogN - 1 - B);
      Rev[I] = R;
    }
    for (int Len = 2; Len <= N; Len <<= 1) {
      int Half = Len / 2;
      for (int J = 0; J < Half; ++J) {
        long double Ang = -2.0L * 3.14159265358979323846L * J / Len;
        Wre.push_back(static_cast<double>(cosl(Ang)));
        Wim.push_back(static_cast<double>(sinl(Ang)));
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// Operation counts (interval ops / flops) for the per-cycle metrics
//===----------------------------------------------------------------------===//

/// Interval operations of each kernel (an interval add and an interval
/// multiply count as one operation each, Section VII-A).
inline double fftIops(int N) {
  double LogN = std::log2(static_cast<double>(N));
  return 10.0 * (N / 2.0) * LogN; // 10 real ops per butterfly
}
inline double gemmIops(int N) {
  return 2.0 * N * static_cast<double>(N) * N;
}
inline double potrfIops(int N) {
  return N * static_cast<double>(N) * N / 3.0;
}
inline double ffnnIops(int N, int Layers) {
  return 2.0 * Layers * static_cast<double>(N) * N;
}
inline double mvmIops(int M, int N) {
  return 2.0 * M * static_cast<double>(N);
}

/// Prints one CSV row ("label,size,value").
inline void printRow(const char *Table, const char *Config, int Size,
                     double Value) {
  std::printf("%s,%s,%d,%.4f\n", Table, Config, Size, Value);
}

} // namespace igen::bench

#endif // IGEN_BENCH_BENCHUTIL_H
