//===- BenchUtil.h - Shared benchmark harness utilities ---------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cycle-accurate timing (rdtsc), the paper's measurement protocol
/// (repetitions with the median taken, warm cache; Section VII), input
/// generation (random width-1-ulp intervals), and operation counts for the
/// iops/flops-per-cycle metrics of Fig. 8/9.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_BENCH_BENCHUTIL_H
#define IGEN_BENCH_BENCHUTIL_H

#include "interval/DdSimd.h"
#include "interval/Interval.h"
#include "interval/Ulp.h"
#include "support/JsonWriter.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <random>
#include <string>
#include <vector>
#include <x86intrin.h>

namespace igen::bench {

/// Serialized cycle counter read.
inline uint64_t readCycles() {
  unsigned Aux;
  _mm_lfence();
  uint64_t T = __rdtscp(&Aux);
  _mm_lfence();
  return T;
}

/// Runs \p Fn `Reps` times (after one warm-up run) and returns the median
/// cycle count, following the paper's protocol (median of repetitions,
/// warm cache).
inline uint64_t medianCycles(const std::function<void()> &Fn,
                             int Reps = 5) {
  Fn(); // warm-up
  std::vector<uint64_t> Times;
  Times.reserve(Reps);
  for (int R = 0; R < Reps; ++R) {
    uint64_t T0 = readCycles();
    Fn();
    Times.push_back(readCycles() - T0);
  }
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

/// Runs \p Fn `Reps` times (after one warm-up run) and returns the
/// minimum cycle count. Timing noise on shared/virtualized hosts is
/// one-sided (interrupts, VM exits only ever add cycles), so the minimum
/// is the sharpest estimator of the true cost; use it for rows that feed
/// ratio comparisons.
inline uint64_t minCycles(const std::function<void()> &Fn, int Reps = 11) {
  Fn(); // warm-up
  uint64_t Best = ~uint64_t{0};
  for (int R = 0; R < Reps; ++R) {
    uint64_t T0 = readCycles();
    Fn();
    Best = std::min(Best, readCycles() - T0);
  }
  return Best;
}

/// Deterministic RNG. Each measurement constructs its own instance from
/// benchSeed() so inputs depend only on the row identity, never on how
/// many rows ran before it (reproducible run-to-run and across subsets).
class Rng {
public:
  explicit Rng(uint64_t Seed) : Gen(Seed) {}
  double uniform(double Lo, double Hi) {
    return std::uniform_real_distribution<double>(Lo, Hi)(Gen);
  }
  /// A random double and the width-1-ulp interval around it (the paper's
  /// input distribution: "each input interval has a length of 1 ulp").
  double point(double Lo = -1.0, double Hi = 1.0) {
    return uniform(Lo, Hi);
  }

private:
  std::mt19937_64 Gen;
};

/// Per-row input seed: FNV-1a over (table, config, size). Two rows share
/// inputs exactly when they measure the same problem, so configurations
/// of one (table, size) cell stay comparable.
inline uint64_t benchSeed(const char *Table, const char *Config, long Size) {
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](const char *S) {
    for (; *S; ++S) {
      H ^= static_cast<unsigned char>(*S);
      H *= 0x100000001b3ull;
    }
  };
  Mix(Table);
  Mix(Config);
  for (int B = 0; B < 8; ++B) {
    H ^= static_cast<uint64_t>(Size >> (8 * B)) & 0xff;
    H *= 0x100000001b3ull;
  }
  return H;
}

/// Fills interval array \p Out (any type constructible via
/// fromEndpoints(lo,hi)) with width-1-ulp intervals around random points.
template <typename I>
void fillUlpIntervals(I *Out, int N, Rng &R, double Lo = -1.0,
                      double Hi = 1.0) {
  for (int K = 0; K < N; ++K) {
    double C = R.uniform(Lo, Hi);
    Out[K] = I::fromEndpoints(C, nextUp(C));
  }
}

/// Width-1-ulp-of-the-low-word double-double input interval (the paper's
/// input protocol for double-double runs, Section VII).
inline DdIntervalAvx ddUlpInput(double V) {
  Dd X(V, V * 0x1.3p-55);
  Dd Hi = X;
  Hi.L = nextUp(Hi.L);
  return DdIntervalAvx::fromScalar(DdInterval::fromEndpoints(X, Hi));
}

/// Generates a well-conditioned SPD matrix for potrf: A = B*B^T + n*I.
inline std::vector<double> spdMatrix(int N, Rng &R) {
  std::vector<double> B(N * N), A(N * N, 0.0);
  for (double &V : B)
    V = R.uniform(-1.0, 1.0);
  for (int I = 0; I < N; ++I)
    for (int J = 0; J <= I; ++J) {
      double S = 0;
      for (int K = 0; K < N; ++K)
        S += B[I * N + K] * B[J * N + K];
      A[I * N + J] = A[J * N + I] = S;
    }
  for (int I = 0; I < N; ++I)
    A[I * N + I] += N;
  return A;
}

/// Precomputes FFT twiddles (per-stage contiguous) and the bit-reversal
/// table for size N (power of two).
struct FftSetup {
  std::vector<double> Wre, Wim;
  std::vector<int> Rev;

  explicit FftSetup(int N) {
    Rev.resize(N);
    int LogN = 0;
    while ((1 << LogN) < N)
      ++LogN;
    for (int I = 0; I < N; ++I) {
      int R = 0;
      for (int B = 0; B < LogN; ++B)
        if (I & (1 << B))
          R |= 1 << (LogN - 1 - B);
      Rev[I] = R;
    }
    for (int Len = 2; Len <= N; Len <<= 1) {
      int Half = Len / 2;
      for (int J = 0; J < Half; ++J) {
        long double Ang = -2.0L * 3.14159265358979323846L * J / Len;
        Wre.push_back(static_cast<double>(cosl(Ang)));
        Wim.push_back(static_cast<double>(sinl(Ang)));
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// Operation counts (interval ops / flops) for the per-cycle metrics
//===----------------------------------------------------------------------===//

/// Interval operations of each kernel (an interval add and an interval
/// multiply count as one operation each, Section VII-A).
inline double fftIops(int N) {
  double LogN = std::log2(static_cast<double>(N));
  return 10.0 * (N / 2.0) * LogN; // 10 real ops per butterfly
}
inline double gemmIops(int N) {
  return 2.0 * N * static_cast<double>(N) * N;
}
inline double potrfIops(int N) {
  return N * static_cast<double>(N) * N / 3.0;
}
inline double ffnnIops(int N, int Layers) {
  return 2.0 * Layers * static_cast<double>(N) * N;
}
inline double mvmIops(int M, int N) {
  return 2.0 * M * static_cast<double>(N);
}

/// Prints one CSV row ("label,size,value").
inline void printRow(const char *Table, const char *Config, int Size,
                     double Value) {
  std::printf("%s,%s,%d,%.4f\n", Table, Config, Size, Value);
}

//===----------------------------------------------------------------------===//
// Machine-readable output (--json <path>)
//===----------------------------------------------------------------------===//

/// Collects benchmark rows and writes them through the shared
/// igen::JsonWriter as {"schema_version": 1, "report": "igen_bench",
/// "rows": [{"kernel", "config", "size", "cycles", "iops_per_cycle"},
/// ...]}. Rows are also echoed as CSV on stdout by reportRow() so the
/// human-readable output is unchanged.
class JsonReport {
public:
  struct Row {
    std::string Kernel, Config;
    long Size;
    double Cycles, IopsPerCycle;
  };

  void add(const char *Kernel, const char *Config, long Size, double Cycles,
           double IopsPerCycle) {
    Rows.push_back({Kernel, Config, Size, Cycles, IopsPerCycle});
  }

  /// Writes the collected rows to \p Path; returns false on I/O failure.
  bool writeTo(const char *Path) const {
    JsonWriter W;
    W.beginObject();
    W.field("schema_version", 1);
    W.field("report", "igen_bench");
    W.key("rows");
    W.beginArray();
    for (const Row &R : Rows) {
      W.beginObject();
      W.field("kernel", R.Kernel);
      W.field("config", R.Config);
      W.field("size", static_cast<int64_t>(R.Size));
      W.field("cycles", R.Cycles);
      W.field("iops_per_cycle", R.IopsPerCycle);
      W.endObject();
    }
    W.endArray();
    W.endObject();
    return W.writeTo(Path);
  }

private:
  std::vector<Row> Rows;
};

/// Returns the value of a `--json <path>` argument, or nullptr.
inline const char *jsonPathArg(int Argc, char **Argv) {
  for (int I = 1; I + 1 < Argc; ++I)
    if (std::strcmp(Argv[I], "--json") == 0)
      return Argv[I + 1];
  return nullptr;
}

/// Emits one measurement: CSV on stdout, plus a JSON row when \p Report
/// is non-null.
inline void reportRow(JsonReport *Report, const char *Table,
                      const char *Config, int Size, uint64_t Cycles,
                      double Iops) {
  double Value = Iops / static_cast<double>(Cycles);
  printRow(Table, Config, Size, Value);
  if (Report)
    Report->add(Table, Config, Size, static_cast<double>(Cycles), Value);
}

} // namespace igen::bench

#endif // IGEN_BENCH_BENCHUTIL_H
