//===- fig8_perf.cpp - Fig. 8: interval ops per cycle vs size -----------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Fig. 8: interval operations per cycle over the problem size
// for fft/gemm/potrf/ffnn in the configurations
//
//   IGen-vv, IGen-sv, IGen-ss, IGen-sv-dd   (this compiler)
//   boost, filib, gaol                      (library design points)
//
// Sizes are scaled down from the paper's largest points so the whole
// suite runs in seconds; pass --full for the paper's ranges. Expected
// shape: IGen-vv > IGen-sv > IGen-ss >~ libraries, dd far below.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "KernelDecls.h"
#include "KernelsT.h"

#include "baselines/BaselineIntervals.h"

#include <cstring>
#include <string>
#include <vector>

using namespace igen;
using namespace igen::bench;

namespace {

JsonReport *Report = nullptr;

/// Runs one configuration of the fft benchmark and prints its row.
template <typename I, typename Fn>
void runFft(const char *Config, int N, const FftSetup &S, Fn Kernel) {
  Rng R(benchSeed("fig8-fft", Config, N));
  std::vector<I> Re(N), Im(N), Wre(S.Wre.size()), Wim(S.Wim.size());
  fillUlpIntervals(Re.data(), N, R);
  fillUlpIntervals(Im.data(), N, R);
  for (size_t K = 0; K < S.Wre.size(); ++K) {
    Wre[K] = I::fromPoint(S.Wre[K]);
    Wim[K] = I::fromPoint(S.Wim[K]);
  }
  std::vector<I> Re0 = Re, Im0 = Im;
  std::vector<int> Rev = S.Rev;
  uint64_t Cycles = medianCycles([&] {
    std::memcpy(Re.data(), Re0.data(), N * sizeof(I));
    std::memcpy(Im.data(), Im0.data(), N * sizeof(I));
    Kernel(Re.data(), Im.data(), Wre.data(), Wim.data(), Rev.data(), N);
  });
  reportRow(Report, "fig8-fft", Config, N, Cycles, fftIops(N));
}

template <typename I, typename Fn>
void runGemm(const char *Config, int N, Fn Kernel) {
  Rng R(benchSeed("fig8-gemm", Config, N));
  std::vector<I> A(N * N), B(N * N), C(N * N), C0(N * N);
  fillUlpIntervals(A.data(), N * N, R);
  fillUlpIntervals(B.data(), N * N, R);
  fillUlpIntervals(C0.data(), N * N, R);
  uint64_t Cycles = medianCycles([&] {
    std::memcpy(C.data(), C0.data(), N * N * sizeof(I));
    Kernel(C.data(), A.data(), B.data(), N);
  });
  reportRow(Report, "fig8-gemm", Config, N, Cycles, gemmIops(N));
}

template <typename I, typename Fn>
void runPotrf(const char *Config, int N, const std::vector<double> &Spd,
              Fn Kernel) {
  std::vector<I> A0(N * N), A(N * N);
  for (int K = 0; K < N * N; ++K)
    A0[K] = I::fromEndpoints(Spd[K], nextUp(Spd[K]));
  uint64_t Cycles = medianCycles([&] {
    std::memcpy(A.data(), A0.data(), N * N * sizeof(I));
    Kernel(A.data(), N);
  });
  reportRow(Report, "fig8-potrf", Config, N, Cycles, potrfIops(N));
}

template <typename I, typename Fn>
void runFfnn(const char *Config, int N, int Layers, Fn Kernel) {
  Rng R(benchSeed("fig8-ffnn", Config, N));
  std::vector<I> W(Layers * N * N), B(Layers * N), Buf0(N), Buf1(N),
      In(N);
  // Xavier-like weight scale keeps activations bounded.
  double Scale = 1.0 / std::sqrt(static_cast<double>(N));
  for (int K = 0; K < Layers * N * N; ++K) {
    double V = R.uniform(-Scale, Scale);
    W[K] = I::fromEndpoints(V, nextUp(V));
  }
  fillUlpIntervals(B.data(), Layers * N, R, -0.1, 0.1);
  fillUlpIntervals(In.data(), N, R, 0.0, 1.0);
  uint64_t Cycles = medianCycles([&] {
    std::memcpy(Buf0.data(), In.data(), N * sizeof(I));
    Kernel(W.data(), B.data(), Buf0.data(), Buf1.data(), N, Layers);
  });
  reportRow(Report, "fig8-ffnn", Config, N, Cycles, ffnnIops(N, Layers));
}

} // namespace

int main(int Argc, char **Argv) {
  bool Full = false;
  for (int I = 1; I < Argc; ++I)
    if (std::string(Argv[I]) == "--full")
      Full = true;
  const char *JsonPath = jsonPathArg(Argc, Argv);
  JsonReport Json;
  if (JsonPath)
    Report = &Json;
  RoundUpwardScope Up;

  std::vector<int> FftSizes = Full ? std::vector<int>{16, 32, 64, 128, 256}
                                   : std::vector<int>{16, 64, 256};
  std::vector<int> GemmSizes = Full
                                   ? std::vector<int>{56, 168, 280, 616}
                                   : std::vector<int>{56, 120};
  std::vector<int> PotrfSizes = Full ? std::vector<int>{4, 28, 52, 76, 124}
                                     : std::vector<int>{28, 76, 124};
  std::vector<int> FfnnSizes = Full ? std::vector<int>{40, 80, 120, 200}
                                    : std::vector<int>{40, 104};
  const int Layers = 9; // the paper's network depth

  std::printf("table,config,size,iops_per_cycle\n");

  for (int N : FftSizes) {
    FftSetup S(N);
    runFft<IntervalSse>("igen-vv", N, S, vv_fft);
    runFft<IntervalSse>("igen-sv", N, S, sv_fft);
    runFft<Interval>("igen-ss", N, S, ss_fft);
    runFft<DdIntervalAvx>("igen-sv-dd", N, S, svdd_fft);
    runFft<BoostLikeInterval>("boost", N, S,
                              fftT<BoostLikeInterval>);
    runFft<FilibLikeInterval>("filib", N, S,
                              fftT<FilibLikeInterval>);
    runFft<GaolLikeInterval>("gaol", N, S, fftT<GaolLikeInterval>);
  }

  for (int N : GemmSizes) {
    runGemm<IntervalSse>("igen-vv", N, vv_gemm);
    runGemm<IntervalSse>("igen-sv", N, sv_gemm);
    runGemm<Interval>("igen-ss", N, ss_gemm);
    runGemm<DdIntervalAvx>("igen-sv-dd", N, svdd_gemm);
    runGemm<BoostLikeInterval>("boost", N, gemmT<BoostLikeInterval>);
    runGemm<FilibLikeInterval>("filib", N, gemmT<FilibLikeInterval>);
    runGemm<GaolLikeInterval>("gaol", N, gemmT<GaolLikeInterval>);
  }

  for (int N : PotrfSizes) {
    // One SPD input per size, shared by every configuration of that cell.
    Rng R(benchSeed("fig8-potrf", "spd", N));
    std::vector<double> Spd = spdMatrix(N, R);
    runPotrf<IntervalSse>("igen-vv", N, Spd, vv_potrf);
    runPotrf<IntervalSse>("igen-sv", N, Spd, sv_potrf);
    runPotrf<Interval>("igen-ss", N, Spd, ss_potrf);
    runPotrf<DdIntervalAvx>("igen-sv-dd", N, Spd, svdd_potrf);
    runPotrf<BoostLikeInterval>("boost", N, Spd,
                                potrfT<BoostLikeInterval>);
    runPotrf<FilibLikeInterval>("filib", N, Spd,
                                potrfT<FilibLikeInterval>);
    runPotrf<GaolLikeInterval>("gaol", N, Spd,
                               potrfT<GaolLikeInterval>);
  }

  for (int N : FfnnSizes) {
    runFfnn<IntervalSse>("igen-vv", N, Layers, vv_ffnn);
    runFfnn<IntervalSse>("igen-sv", N, Layers, sv_ffnn);
    runFfnn<Interval>("igen-ss", N, Layers, ss_ffnn);
    runFfnn<DdIntervalAvx>("igen-sv-dd", N, Layers, svdd_ffnn);
    runFfnn<BoostLikeInterval>("boost", N, Layers,
                               ffnnT<BoostLikeInterval>);
    runFfnn<FilibLikeInterval>("filib", N, Layers,
                               ffnnT<FilibLikeInterval>);
    runFfnn<GaolLikeInterval>("gaol", N, Layers,
                              ffnnT<GaolLikeInterval>);
  }

  if (JsonPath && !Json.writeTo(JsonPath)) {
    std::fprintf(stderr, "fig8_perf: cannot write %s\n", JsonPath);
    return 1;
  }
  return 0;
}
