//===- BatchHardenTest.cpp - End-to-end hardening of the batch runtime ----===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// End-to-end fault-injection and edge-case coverage for the batched
// runtime:
//  (a) the fault matrix: every environment fault (ftz/daz/rnd) injected
//      at scope entry is detected on every supported dispatch tier
//      (Scalar/SSE2/AVX/AVX2+FMA/AVX-512), for the f64i kernels
//      (including div and sqrt) and the batched ddi tier alike; poison
//      results verified sound, repair results verified identical to an
//      uncontested run, and a zero-containing divisor shown to be an
//      ordinary sound input rather than a sentinel event;
//  (b) operand faults (nan/inf) flow through the kernels to sound
//      outputs without disturbing uncorrupted elements;
//  (c) the allocation fault (and by extension real std::bad_alloc in
//      the reduction scratch) degrades sum/dot to the whole line;
//  (d) the aliasing/empty-range contract: n == 0 is a no-op, full
//      aliasing (Dst == X, Dst == X == Y) is exact, and partial overlap
//      dies on the debug assert.
//
//===----------------------------------------------------------------------===//

#include "runtime/BatchKernels.h"
#include "runtime/DdBatch.h"

#include "harden/FaultInject.h"
#include "../interval/TestHelpers.h"

#include <cfenv>
#include <cstring>
#include <limits>
#include <vector>

#include "gtest/gtest.h"

using namespace igen;
using namespace igen::harden;
using namespace igen::runtime;

namespace {

std::vector<Isa> supportedIsas() {
  std::vector<Isa> Out;
  for (int I = 0; I < NumIsas; ++I)
    if (isaSupported(static_cast<Isa>(I)))
      Out.push_back(static_cast<Isa>(I));
  return Out;
}

bool isEntire(const Interval &R) {
  double Inf = std::numeric_limits<double>::infinity();
  return R.lo() == -Inf && R.hi() == Inf;
}

class BatchHardenTest : public ::testing::Test {
protected:
  void SetUp() override { resetAll(); }
  void TearDown() override { resetAll(); }

  static void resetAll() {
    faultsArmedFromEnv(); // consume the one-time IGEN_FAULT env check
    disarmFaults();
    clearForcedIsa();
    std::fesetround(FE_TONEAREST);
    writeMxcsr(readMxcsr() & ~(kMxcsrFtz | kMxcsrDaz));
    invalidateRoundingCache();
    setFenvPolicy(FenvPolicy::Repair);
    resetFenvStats();
  }

  static std::vector<Interval> moderate(size_t N, uint64_t Seed) {
    test::Rng R(Seed);
    std::vector<Interval> V(N);
    for (auto &I : V)
      I = R.moderateInterval();
    return V;
  }

  /// Strictly positive intervals: valid divisors and sqrt inputs.
  static std::vector<Interval> positive(size_t N, uint64_t Seed) {
    test::Rng R(Seed);
    std::vector<Interval> V(N);
    for (auto &I : V) {
      double Lo = R.uniform(0.25, 2.0);
      I = Interval::fromEndpoints(Lo, Lo * R.uniform(1.0, 4.0));
    }
    return V;
  }

  static std::vector<DdInterval> moderateDd(size_t N, uint64_t Seed) {
    test::Rng R(Seed);
    RoundUpwardScope Up;
    std::vector<DdInterval> V(N);
    for (auto &I : V)
      I = ddiMul(DdInterval::fromInterval(R.moderateInterval()),
                 DdInterval::fromInterval(R.moderateInterval()));
    return V;
  }

  static bool isEntireDd(const DdInterval &R) {
    double Inf = std::numeric_limits<double>::infinity();
    return R.NegLo.H == Inf && R.Hi.H == Inf;
  }
};

//===----------------------------------------------------------------------===//
// (a) Fault matrix: ftz/daz/rnd x every dispatch tier x poison/repair
//===----------------------------------------------------------------------===//

TEST_F(BatchHardenTest, FaultMatrixPoisonIsSoundOnEveryTier) {
  const size_t N = 100; // covers vector body + scalar tail on every tier
  std::vector<Interval> X = moderate(N, 11), Y = moderate(N, 22);
  std::vector<Interval> Dst(N);
  for (Isa Tier : supportedIsas()) {
    forceIsa(Tier);
    for (const char *Spec : {"ftz@0", "daz@0", "rnd@0"}) {
      setFenvPolicy(FenvPolicy::Poison);
      resetFenvStats();
      armFaults(Spec); // fires at iarr_mul's own scope entry below
      iarr_mul(Dst.data(), X.data(), Y.data(), N);
      disarmFaults();
      invalidateRoundingCache(); // a rnd fault leaves a stale cache

      FenvStats S = fenvStats();
      EXPECT_EQ(S.Violations, 1u)
          << "tier " << isaName(Tier) << " fault " << Spec;
      EXPECT_EQ(S.Poisoned, 1u)
          << "tier " << isaName(Tier) << " fault " << Spec;
      for (size_t I = 0; I < N; ++I)
        EXPECT_TRUE(isEntire(Dst[I]))
            << "tier " << isaName(Tier) << " fault " << Spec
            << " element " << I;
    }
  }
}

TEST_F(BatchHardenTest, FaultMatrixRepairRecoversOnEveryTier) {
  const size_t N = 100;
  std::vector<Interval> X = moderate(N, 33), Y = moderate(N, 44);
  std::vector<Interval> Dst(N), Ref(N);
  for (Isa Tier : supportedIsas()) {
    forceIsa(Tier);
    Ref.assign(N, Interval());
    iarr_fma(Ref.data(), X.data(), Y.data(), X.data(), N); // uncontested
    for (const char *Spec : {"ftz@0", "daz@0", "rnd@0"}) {
      setFenvPolicy(FenvPolicy::Repair);
      resetFenvStats();
      armFaults(Spec);
      iarr_fma(Dst.data(), X.data(), Y.data(), X.data(), N);
      disarmFaults();
      invalidateRoundingCache();

      EXPECT_EQ(fenvStats().Violations, 1u)
          << "tier " << isaName(Tier) << " fault " << Spec;
      EXPECT_EQ(fenvStats().Poisoned, 0u);
      // Repair restores the environment before the hot loop runs, so
      // the results are bit-identical to the uncontested run.
      EXPECT_EQ(std::memcmp(Dst.data(), Ref.data(), N * sizeof(Interval)),
                0)
          << "tier " << isaName(Tier) << " fault " << Spec;
    }
  }
}

TEST_F(BatchHardenTest, DivSqrtFaultMatrixPoisonIsSoundOnEveryTier) {
  const size_t N = 100;
  std::vector<Interval> X = moderate(N, 211), Y = positive(N, 222);
  std::vector<Interval> Dst(N);
  for (Isa Tier : supportedIsas()) {
    forceIsa(Tier);
    for (const char *Spec : {"ftz@0", "daz@0", "rnd@0"}) {
      setFenvPolicy(FenvPolicy::Poison);
      resetFenvStats();
      armFaults(Spec);
      iarr_div(Dst.data(), X.data(), Y.data(), N);
      disarmFaults();
      invalidateRoundingCache();
      EXPECT_EQ(fenvStats().Poisoned, 1u)
          << "tier " << isaName(Tier) << " div fault " << Spec;
      for (size_t I = 0; I < N; ++I)
        EXPECT_TRUE(isEntire(Dst[I]))
            << "tier " << isaName(Tier) << " div fault " << Spec
            << " element " << I;

      resetFenvStats();
      armFaults(Spec);
      iarr_sqrt(Dst.data(), Y.data(), N);
      disarmFaults();
      invalidateRoundingCache();
      EXPECT_EQ(fenvStats().Poisoned, 1u)
          << "tier " << isaName(Tier) << " sqrt fault " << Spec;
      for (size_t I = 0; I < N; ++I)
        EXPECT_TRUE(isEntire(Dst[I]))
            << "tier " << isaName(Tier) << " sqrt fault " << Spec
            << " element " << I;
    }
  }
}

TEST_F(BatchHardenTest, DdFaultMatrixPoisonIsSoundOnEveryTier) {
  const size_t N = 50;
  std::vector<DdInterval> X = moderateDd(N, 311), Y = moderateDd(N, 322);
  std::vector<DdInterval> Dst(N);
  for (Isa Tier : supportedIsas()) {
    forceIsa(Tier);
    for (const char *Spec : {"ftz@0", "daz@0", "rnd@0"}) {
      setFenvPolicy(FenvPolicy::Poison);
      resetFenvStats();
      armFaults(Spec);
      ddarr_mul(Dst.data(), X.data(), Y.data(), N);
      disarmFaults();
      invalidateRoundingCache();
      EXPECT_EQ(fenvStats().Poisoned, 1u)
          << "tier " << isaName(Tier) << " ddarr_mul fault " << Spec;
      for (size_t I = 0; I < N; ++I)
        EXPECT_TRUE(isEntireDd(Dst[I]))
            << "tier " << isaName(Tier) << " ddarr_mul fault " << Spec
            << " element " << I;
    }

    // The reductions poison their (single) return value instead.
    setFenvPolicy(FenvPolicy::Poison);
    resetFenvStats();
    armFaults("rnd@0");
    DdInterval Sum = ddarr_sum(X.data(), N);
    disarmFaults();
    invalidateRoundingCache();
    EXPECT_TRUE(isEntireDd(Sum)) << "tier " << isaName(Tier);
    DdInterval Again = ddarr_sum(X.data(), N);
    EXPECT_FALSE(isEntireDd(Again)) << "tier " << isaName(Tier);
  }
}

TEST_F(BatchHardenTest, DivByZeroContainingDivisorIsSoundNotPoisoned) {
  // A divisor straddling zero is a legitimate (if useless) input: the
  // generic routine returns the whole line for that element, the fenv
  // sentinel never fires, and neighbours are unaffected.
  const size_t N = 9;
  std::vector<Interval> X = moderate(N, 411), Y = positive(N, 422);
  Y[4] = Interval::fromEndpoints(-0.5, 0.5); // contains zero
  std::vector<Interval> Dst(N);
  for (Isa Tier : supportedIsas()) {
    forceIsa(Tier);
    setFenvPolicy(FenvPolicy::Poison);
    resetFenvStats();
    iarr_div(Dst.data(), X.data(), Y.data(), N);
    EXPECT_EQ(fenvStats().Violations, 0u) << isaName(Tier);
    EXPECT_TRUE(isEntire(Dst[4])) << isaName(Tier);
    for (size_t I = 0; I < N; ++I) {
      if (I == 4)
        continue;
      EXPECT_FALSE(isEntire(Dst[I])) << isaName(Tier) << " element " << I;
      // Quotients of positive divisors stay sound around the poisoned
      // neighbour.
      __float128 Q = static_cast<__float128>(X[I].lo()) / Y[I].hi();
      EXPECT_TRUE(test::containsQuad(Dst[I], Q))
          << isaName(Tier) << " element " << I;
    }
  }
}

TEST_F(BatchHardenTest, OneShotFaultLeavesLaterCallsClean) {
  const size_t N = 16;
  std::vector<Interval> X = moderate(N, 55), Dst(N);
  setFenvPolicy(FenvPolicy::Poison);
  armFaults("rnd@0");
  iarr_exp(Dst.data(), X.data(), N);
  invalidateRoundingCache();
  EXPECT_TRUE(isEntire(Dst[0]));

  resetFenvStats();
  iarr_exp(Dst.data(), X.data(), N); // fault already consumed
  EXPECT_EQ(fenvStats().Violations, 0u);
  EXPECT_FALSE(isEntire(Dst[0]));
}

//===----------------------------------------------------------------------===//
// (b) Operand faults
//===----------------------------------------------------------------------===//

TEST_F(BatchHardenTest, NanOperandFaultPropagatesSoundly) {
  const size_t N = 8;
  std::vector<Interval> X = moderate(N, 66), Y = moderate(N, 77);
  std::vector<Interval> Dst(N), Ref(N);
  iarr_add(Ref.data(), X.data(), Y.data(), N); // uncorrupted reference

  armFaults("nan@0"); // first operand check: X of the next call, elem 0
  iarr_add(Dst.data(), X.data(), Y.data(), N);
  disarmFaults();

  EXPECT_TRUE(Dst[0].hasNaN()); // NaN operand -> NaN result (sound: any)
  for (size_t I = 1; I < N; ++I) {
    EXPECT_EQ(Dst[I].NegLo, Ref[I].NegLo) << "element " << I;
    EXPECT_EQ(Dst[I].Hi, Ref[I].Hi) << "element " << I;
  }
  // The caller's array was never written (corruption is scratch-local).
  EXPECT_FALSE(X[0].hasNaN());
}

TEST_F(BatchHardenTest, NanOperandFaultPropagatesThroughDivAndDd) {
  const size_t N = 8;
  std::vector<Interval> X = moderate(N, 166), Y = positive(N, 177);
  std::vector<Interval> Dst(N), Ref(N);
  iarr_div(Ref.data(), X.data(), Y.data(), N);
  armFaults("nan@0");
  iarr_div(Dst.data(), X.data(), Y.data(), N);
  disarmFaults();
  EXPECT_TRUE(Dst[0].hasNaN());
  for (size_t I = 1; I < N; ++I)
    EXPECT_TRUE(Dst[I].NegLo == Ref[I].NegLo && Dst[I].Hi == Ref[I].Hi)
        << "element " << I;

  std::vector<DdInterval> DX = moderateDd(N, 188), DY = moderateDd(N, 199);
  std::vector<DdInterval> DDst(N), DRef(N);
  ddarr_add(DRef.data(), DX.data(), DY.data(), N);
  armFaults("nan@0");
  ddarr_add(DDst.data(), DX.data(), DY.data(), N);
  disarmFaults();
  EXPECT_TRUE(DDst[0].hasNaN());
  for (size_t I = 1; I < N; ++I)
    EXPECT_EQ(std::memcmp(&DDst[I], &DRef[I], sizeof(DdInterval)), 0)
        << "element " << I;
  EXPECT_FALSE(DX[0].hasNaN()); // corruption stays scratch-local
}

TEST_F(BatchHardenTest, InfOperandFaultSelectsArmedElement) {
  const size_t N = 8;
  std::vector<Interval> X = moderate(N, 88);
  std::vector<Interval> Dst(N), Ref(N);
  iarr_exp(Ref.data(), X.data(), N);

  // inf@2 fires on the third single-input invocation; the armed count
  // doubles as the corrupted element index (2 % 8 == 2).
  armFaults("inf@2");
  iarr_exp(Dst.data(), X.data(), N); // occurrence 0
  iarr_exp(Dst.data(), X.data(), N); // occurrence 1
  iarr_exp(Dst.data(), X.data(), N); // occurrence 2: fires
  disarmFaults();

  // exp([+inf, +inf]) must report an upper bound of +inf (or NaN).
  EXPECT_TRUE(Dst[2].hasNaN() ||
              Dst[2].hi() == std::numeric_limits<double>::infinity());
  for (size_t I = 0; I < N; ++I) {
    if (I == 2)
      continue;
    EXPECT_EQ(Dst[I].NegLo, Ref[I].NegLo) << "element " << I;
    EXPECT_EQ(Dst[I].Hi, Ref[I].Hi) << "element " << I;
  }
}

//===----------------------------------------------------------------------===//
// (c) Allocation faults in the reduction scratch
//===----------------------------------------------------------------------===//

TEST_F(BatchHardenTest, AllocFaultDegradesReductionsSoundly) {
  const size_t N = 4096; // several chunks
  std::vector<Interval> X = moderate(N, 99), Y = moderate(N, 111);

  armFaults("alloc@0");
  Interval Sum = iarr_sum(X.data(), N);
  disarmFaults();
  EXPECT_TRUE(isEntire(Sum)); // degraded but encloses the true sum

  Interval Again = iarr_sum(X.data(), N); // one-shot: normal result
  EXPECT_FALSE(isEntire(Again));

  armFaults("alloc@0");
  Interval Dot = iarr_dot(X.data(), Y.data(), N);
  disarmFaults();
  EXPECT_TRUE(isEntire(Dot));
}

//===----------------------------------------------------------------------===//
// (d) Aliasing and empty-range contract
//===----------------------------------------------------------------------===//

TEST_F(BatchHardenTest, EmptyRangesAreNoOps) {
  // Null pointers with n == 0 must not be touched (or dereferenced).
  Interval *D = nullptr;
  const Interval *Src = nullptr;
  iarr_add(D, Src, Src, 0);
  iarr_fma(D, Src, Src, Src, 0);
  iarr_exp(D, Src, 0);
  iarr_div(D, Src, Src, 0);
  iarr_sqrt(D, Src, 0);
  Interval S = Interval::fromPoint(1.0);
  iarr_scale(D, Src, S, 0);
  DdInterval *DD = nullptr;
  const DdInterval *DSrc = nullptr;
  ddarr_add(DD, DSrc, DSrc, 0);
  ddarr_mul(DD, DSrc, DSrc, 0);
  ddarr_fma(DD, DSrc, DSrc, DSrc, 0);

  Interval Sum = iarr_sum(Src, 0);
  EXPECT_EQ(Sum.lo(), 0.0);
  EXPECT_EQ(Sum.hi(), 0.0);
  Interval Dot = iarr_dot(Src, Src, 0);
  EXPECT_EQ(Dot.lo(), 0.0);
  EXPECT_EQ(Dot.hi(), 0.0);
}

TEST_F(BatchHardenTest, FullAliasingIsExact) {
  const size_t N = 37; // odd: exercises the scalar tail too
  for (Isa Tier : supportedIsas()) {
    forceIsa(Tier);
    std::vector<Interval> V = moderate(N, 123);
    std::vector<Interval> Ref(N);
    iarr_mul(Ref.data(), V.data(), V.data(), N);
    iarr_mul(V.data(), V.data(), V.data(), N); // Dst == X == Y
    EXPECT_EQ(std::memcmp(V.data(), Ref.data(), N * sizeof(Interval)), 0)
        << "tier " << isaName(Tier);

    std::vector<Interval> W = moderate(N, 456);
    std::vector<Interval> RefExp(N);
    iarr_exp(RefExp.data(), W.data(), N);
    iarr_exp(W.data(), W.data(), N); // Dst == X
    EXPECT_EQ(std::memcmp(W.data(), RefExp.data(), N * sizeof(Interval)),
              0)
        << "tier " << isaName(Tier);

    std::vector<Interval> P = positive(N, 457);
    std::vector<Interval> RefDiv(N), RefSqrt(N);
    iarr_div(RefDiv.data(), P.data(), P.data(), N);
    std::vector<Interval> Q = P;
    iarr_div(Q.data(), Q.data(), Q.data(), N); // Dst == X == Y
    EXPECT_EQ(std::memcmp(Q.data(), RefDiv.data(), N * sizeof(Interval)),
              0)
        << "tier " << isaName(Tier) << " div";
    iarr_sqrt(RefSqrt.data(), P.data(), N);
    iarr_sqrt(P.data(), P.data(), N); // Dst == X
    EXPECT_EQ(std::memcmp(P.data(), RefSqrt.data(), N * sizeof(Interval)),
              0)
        << "tier " << isaName(Tier) << " sqrt";

    std::vector<DdInterval> DV = moderateDd(N, 458);
    std::vector<DdInterval> DRef(N);
    ddarr_mul(DRef.data(), DV.data(), DV.data(), N);
    ddarr_mul(DV.data(), DV.data(), DV.data(), N); // Dst == X == Y
    EXPECT_EQ(
        std::memcmp(DV.data(), DRef.data(), N * sizeof(DdInterval)), 0)
        << "tier " << isaName(Tier) << " ddarr_mul";
  }
}

#ifndef NDEBUG
TEST_F(BatchHardenTest, PartialOverlapDiesInDebug) {
  std::vector<Interval> Buf = moderate(8, 789);
  std::vector<Interval> Y = moderate(4, 790);
  EXPECT_DEATH(iarr_add(Buf.data() + 1, Buf.data(), Y.data(), 4),
               "partially overlaps");
  EXPECT_DEATH(iarr_div(Buf.data() + 1, Buf.data(), Y.data(), 4),
               "partially overlaps");

  std::vector<DdInterval> DBuf = moderateDd(8, 791);
  std::vector<DdInterval> DY = moderateDd(4, 792);
  EXPECT_DEATH(ddarr_add(DBuf.data() + 1, DBuf.data(), DY.data(), 4),
               "partially overlaps");
}
#endif

} // namespace
