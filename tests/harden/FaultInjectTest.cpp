//===- FaultInjectTest.cpp - Fault-injector unit tests --------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Covers the deterministic fault injector (harden/FaultInject.h) itself:
// the IGEN_FAULT grammar (kind[@N] lists, malformed-item skipping), the
// one-shot @N countdown semantics, and the rounding-scope hook install /
// uninstall lifecycle. End-to-end behavior of the injected faults is in
// BatchHardenTest.cpp.
//
//===----------------------------------------------------------------------===//

#include "harden/FaultInject.h"

#include <cfenv>

#include "gtest/gtest.h"

using namespace igen;
using namespace igen::harden;

namespace {

class FaultInjectTest : public ::testing::Test {
protected:
  void SetUp() override {
    // Consume the one-time IGEN_FAULT environment check so the lazily
    // checking trigger points cannot overwrite the programmatic arming
    // below with the (empty) environment spec.
    faultsArmedFromEnv();
    disarmFaults();
  }
  void TearDown() override {
    disarmFaults();
    std::fesetround(FE_TONEAREST);
    writeMxcsr(readMxcsr() & ~(kMxcsrFtz | kMxcsrDaz));
    invalidateRoundingCache();
  }
};

TEST_F(FaultInjectTest, DisarmedByDefault) {
  EXPECT_FALSE(faultsArmed());
  EXPECT_FALSE(faultFires(FaultKind::Nan));
  EXPECT_FALSE(faultFires(FaultKind::Alloc));
}

TEST_F(FaultInjectTest, OneShotCountdown) {
  armFaults("alloc@2");
  EXPECT_TRUE(faultsArmed());
  EXPECT_FALSE(faultFires(FaultKind::Alloc)); // occurrence 0
  EXPECT_FALSE(faultFires(FaultKind::Alloc)); // occurrence 1
  long long N = -1;
  EXPECT_TRUE(faultFires(FaultKind::Alloc, &N)); // occurrence 2: fires
  EXPECT_EQ(N, 2);
  EXPECT_FALSE(faultFires(FaultKind::Alloc)); // one-shot: disarmed now
}

TEST_F(FaultInjectTest, CountDefaultsToZeroAndListsParse) {
  armFaults("nan,inf@1");
  long long N = -1;
  EXPECT_TRUE(faultFires(FaultKind::Nan, &N));
  EXPECT_EQ(N, 0);
  EXPECT_FALSE(faultFires(FaultKind::Inf)); // occurrence 0
  EXPECT_TRUE(faultFires(FaultKind::Inf));  // occurrence 1
}

TEST_F(FaultInjectTest, MalformedItemsAreSkippedOthersStillArm) {
  // Unknown kind, negative count, and trailing junk are each dropped
  // (with a once-only warning); the valid item still arms.
  armFaults("bogus,ftz@-1,daz@2x,nan@0");
  EXPECT_TRUE(faultsArmed());
  EXPECT_FALSE(faultFires(FaultKind::Ftz));
  EXPECT_FALSE(faultFires(FaultKind::Daz));
  EXPECT_TRUE(faultFires(FaultKind::Nan));
}

TEST_F(FaultInjectTest, NullOrEmptySpecDisarms) {
  armFaults("nan");
  EXPECT_TRUE(faultsArmed());
  armFaults("");
  EXPECT_FALSE(faultsArmed());
  armFaults("nan");
  armFaults(nullptr);
  EXPECT_FALSE(faultsArmed());
}

TEST_F(FaultInjectTest, ScopeHookInstalledOnlyForFenvFaults) {
  // Operand/allocation faults never pay the scope-entry hook.
  armFaults("nan,alloc");
  EXPECT_EQ(igen::detail::ScopeEntryHook.load(), nullptr);
  // Environment faults do install it; disarm removes it.
  armFaults("rnd@0");
  EXPECT_NE(igen::detail::ScopeEntryHook.load(), nullptr);
  disarmFaults();
  EXPECT_EQ(igen::detail::ScopeEntryHook.load(), nullptr);
}

TEST_F(FaultInjectTest, ScopeEntryFaultClobbersNthUpwardScope) {
  armFaults("ftz@1");
  {
    RoundUpwardScope First; // occurrence 0: no fire
    EXPECT_EQ(readMxcsr() & kMxcsrFtz, 0u);
  }
  {
    RoundUpwardScope Second; // occurrence 1: fires, sets FTZ
    EXPECT_NE(readMxcsr() & kMxcsrFtz, 0u);
    writeMxcsr(readMxcsr() & ~kMxcsrFtz); // clean up inside the scope
  }
  {
    RoundUpwardScope Third; // one-shot: nothing
    EXPECT_EQ(readMxcsr() & kMxcsrFtz, 0u);
  }
}

TEST_F(FaultInjectTest, DownwardScopesAreNotTargets) {
  // Only upward (sound-region) scopes are clobber targets; the nearest
  // scopes around libm calls must not consume the countdown.
  armFaults("rnd@0");
  {
    RoundNearestScope Nearest;
  }
  {
    RoundUpwardScope Up; // first *upward* entry: fires here
    EXPECT_EQ(std::fegetround(), FE_TONEAREST);
  }
  invalidateRoundingCache(); // the injected clobber left a stale cache
}

} // namespace
