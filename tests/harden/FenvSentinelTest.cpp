//===- FenvSentinelTest.cpp - FP-environment sentinel tests ---------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Covers the fenv sentinel (harden/FenvSentinel.h):
//  (a) policy selection: IGEN_FENV_POLICY parsing, the programmatic
//      override, and the unknown-value fallback;
//  (b) detection and handling of a foreign fesetround(FE_TONEAREST)
//      behind the cached rounding scope -- the stale-cache hazard the
//      sentinel exists for -- under repair, poison and abort;
//  (c) FTZ/DAZ clobbers, including after invalidateRoundingCache(),
//      where re-entering the rounding scope alone can never help
//      (fesetround does not touch the flush-to-zero bits);
//  (d) the honest-invalidate path: a rounding clobber followed by
//      invalidateRoundingCache() is healed silently by the next scope's
//      real fesetround, so no violation is counted.
//
//===----------------------------------------------------------------------===//

#include "harden/FenvSentinel.h"

#include "interval/Interval.h"
#include "runtime/BatchKernels.h"

#include <cfenv>
#include <cstdlib>
#include <vector>

#include "gtest/gtest.h"

using namespace igen;
using namespace igen::harden;

namespace {

/// Resets every piece of process-global sentinel state around each test,
/// and leaves the FP environment in the default round-to-nearest state.
class FenvSentinelTest : public ::testing::Test {
protected:
  void SetUp() override { resetAll(); }
  void TearDown() override { resetAll(); }

  static void resetAll() {
    std::fesetround(FE_TONEAREST);
    writeMxcsr(readMxcsr() & ~(kMxcsrFtz | kMxcsrDaz));
    invalidateRoundingCache();
    setFenvPolicy(FenvPolicy::Repair);
    resetFenvStats();
  }
};

std::vector<Interval> points(std::initializer_list<double> Xs) {
  std::vector<Interval> V;
  for (double X : Xs)
    V.push_back(Interval::fromPoint(X));
  return V;
}

TEST_F(FenvSentinelTest, SoundPredicateTracksEnvironment) {
  EXPECT_FALSE(fenvIsSoundUpward()); // default: round-to-nearest
  {
    RoundUpwardScope Up;
    EXPECT_TRUE(fenvIsSoundUpward());
    EXPECT_FALSE(checkFenvUpward("test")); // clean: no poison request
  }
  EXPECT_EQ(fenvStats().Violations, 0u);
  {
    RoundUpwardScope Up;
    writeMxcsr(readMxcsr() | kMxcsrFtz);
    EXPECT_FALSE(fenvIsSoundUpward());
  }
}

TEST_F(FenvSentinelTest, PolicyParsesEnvironmentVariable) {
  // The cache wins until cleared; clearing re-reads the environment.
  ASSERT_EQ(setenv("IGEN_FENV_POLICY", "poison", 1), 0);
  EXPECT_EQ(fenvPolicy(), FenvPolicy::Repair); // still the cached value
  clearFenvPolicyCache();
  EXPECT_EQ(fenvPolicy(), FenvPolicy::Poison);

  ASSERT_EQ(setenv("IGEN_FENV_POLICY", "abort", 1), 0);
  clearFenvPolicyCache();
  EXPECT_EQ(fenvPolicy(), FenvPolicy::Abort);

  // Unknown values fall back to repair (warning once, not tested here).
  ASSERT_EQ(setenv("IGEN_FENV_POLICY", "explode", 1), 0);
  clearFenvPolicyCache();
  EXPECT_EQ(fenvPolicy(), FenvPolicy::Repair);

  ASSERT_EQ(unsetenv("IGEN_FENV_POLICY"), 0);
  clearFenvPolicyCache();
  EXPECT_EQ(fenvPolicy(), FenvPolicy::Repair);
}

TEST_F(FenvSentinelTest, RepairCatchesForeignRoundingBehindStaleCache) {
  setFenvPolicy(FenvPolicy::Repair);
  std::vector<Interval> X = points({1.0, 2.0, 3.0, 4.0});
  std::vector<Interval> Y = points({0.5, 0.25, 0.125, 0.0625});
  std::vector<Interval> Dst(X.size());
  {
    RoundUpwardScope Up;            // primes the per-thread cache
    std::fesetround(FE_TONEAREST);  // foreign clobber: cache is now stale
    // The nested scope inside iarr_add trusts the cache and skips the
    // fesetround -- exactly the hazard. The sentinel must catch it.
    runtime::iarr_add(Dst.data(), X.data(), Y.data(), X.size());
  }
  invalidateRoundingCache(); // this test clobbered; be honest afterwards

  FenvStats S = fenvStats();
  EXPECT_EQ(S.Violations, 1u);
  EXPECT_EQ(S.Repairs, 1u);
  EXPECT_EQ(S.Poisoned, 0u);

  // Repair means the results were computed in the restored environment:
  // identical to an uncontested run.
  std::vector<Interval> Ref(X.size());
  runtime::iarr_add(Ref.data(), X.data(), Y.data(), X.size());
  EXPECT_EQ(fenvStats().Violations, 1u); // second run was clean
  for (size_t I = 0; I < X.size(); ++I) {
    EXPECT_EQ(Dst[I].NegLo, Ref[I].NegLo) << "element " << I;
    EXPECT_EQ(Dst[I].Hi, Ref[I].Hi) << "element " << I;
  }
}

TEST_F(FenvSentinelTest, PoisonDegradesBatchToWholeIntervals) {
  setFenvPolicy(FenvPolicy::Poison);
  std::vector<Interval> X = points({1.0, 2.0, 3.0});
  std::vector<Interval> Y = points({4.0, 5.0, 6.0});
  std::vector<Interval> Dst(X.size());
  {
    RoundUpwardScope Up;
    std::fesetround(FE_TONEAREST);
    runtime::iarr_mul(Dst.data(), X.data(), Y.data(), X.size());
  }
  invalidateRoundingCache();

  FenvStats S = fenvStats();
  EXPECT_EQ(S.Violations, 1u);
  EXPECT_EQ(S.Repairs, 1u); // poison repairs too
  EXPECT_EQ(S.Poisoned, 1u);
  for (const Interval &R : Dst) {
    // Degraded but sound: the whole line encloses every true product.
    EXPECT_EQ(R.lo(), -std::numeric_limits<double>::infinity());
    EXPECT_EQ(R.hi(), std::numeric_limits<double>::infinity());
  }
}

TEST_F(FenvSentinelTest, AbortPolicyAborts) {
  std::vector<Interval> X = points({1.0});
  std::vector<Interval> Dst(1);
  EXPECT_DEATH(
      {
        setFenvPolicy(FenvPolicy::Abort);
        RoundUpwardScope Up;
        std::fesetround(FE_TONEAREST);
        runtime::iarr_exp(Dst.data(), X.data(), 1);
      },
      "IGEN_FENV_POLICY=abort");
}

TEST_F(FenvSentinelTest, FtzClobberCaughtEvenAfterCacheInvalidation) {
  // invalidateRoundingCache() makes the next scope re-establish the
  // rounding mode -- but fesetround never touches FTZ/DAZ, so those
  // clobbers are invisible to the scope machinery and only the sentinel
  // can catch them.
  setFenvPolicy(FenvPolicy::Repair);
  std::vector<Interval> X = points({1.0, 2.0});
  std::vector<Interval> Dst(2);

  writeMxcsr(readMxcsr() | kMxcsrFtz);
  invalidateRoundingCache();
  runtime::iarr_log(Dst.data(), X.data(), 2);

  FenvStats S = fenvStats();
  EXPECT_EQ(S.Violations, 1u);
  EXPECT_NE(S.LastBits & kMxcsrFtz, 0u);
  EXPECT_EQ(readMxcsr() & kMxcsrFtz, 0u); // repaired

  // Same for DAZ.
  resetFenvStats();
  writeMxcsr(readMxcsr() | kMxcsrDaz);
  invalidateRoundingCache();
  runtime::iarr_log(Dst.data(), X.data(), 2);
  S = fenvStats();
  EXPECT_EQ(S.Violations, 1u);
  EXPECT_NE(S.LastBits & kMxcsrDaz, 0u);
  EXPECT_EQ(readMxcsr() & kMxcsrDaz, 0u);
}

TEST_F(FenvSentinelTest, HonestInvalidateHealsRoundingSilently) {
  // A rounding clobber *followed by* invalidateRoundingCache() (the
  // documented contract for raw fesetround users) is healed by the next
  // scope's real fesetround before any arithmetic runs -- no violation.
  setFenvPolicy(FenvPolicy::Poison);
  std::vector<Interval> X = points({1.0, 2.0});
  std::vector<Interval> Dst(2);

  std::fesetround(FE_TONEAREST);
  invalidateRoundingCache();
  runtime::iarr_sin(Dst.data(), X.data(), 2);

  EXPECT_EQ(fenvStats().Violations, 0u);
  for (const Interval &R : Dst)
    EXPECT_FALSE(R.hasNaN());
}

TEST_F(FenvSentinelTest, ReductionsDegradeWholeResultUnderPoison) {
  setFenvPolicy(FenvPolicy::Poison);
  std::vector<Interval> X = points({1.0, 2.0, 3.0, 4.0});
  Interval R;
  {
    RoundUpwardScope Up;
    std::fesetround(FE_TONEAREST);
    R = runtime::iarr_sum(X.data(), X.size());
  }
  invalidateRoundingCache();
  EXPECT_EQ(fenvStats().Violations, 1u);
  EXPECT_EQ(R.lo(), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(R.hi(), std::numeric_limits<double>::infinity());
}

} // namespace
