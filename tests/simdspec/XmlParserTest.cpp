//===- XmlParserTest.cpp - Mini XML parser tests ------------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "simdspec/XmlParser.h"

#include <gtest/gtest.h>

using namespace igen;

namespace {

std::unique_ptr<XmlNode> parse(std::string_view S, bool ExpectOk = true) {
  DiagnosticsEngine Diags;
  auto Root = parseXml(S, Diags);
  if (ExpectOk)
    EXPECT_TRUE(Root != nullptr) << Diags.render("xml");
  else
    EXPECT_EQ(Root, nullptr);
  return Root;
}

} // namespace

TEST(XmlParser, SimpleElement) {
  auto Root = parse("<a>hello</a>");
  ASSERT_NE(Root, nullptr);
  EXPECT_EQ(Root->Name, "a");
  EXPECT_EQ(Root->Text, "hello");
  EXPECT_TRUE(Root->Children.empty());
}

TEST(XmlParser, AttributesBothQuoteStyles) {
  auto Root = parse("<intrinsic rettype='__m256d' name=\"_mm256_add_pd\"/>");
  ASSERT_NE(Root, nullptr);
  EXPECT_EQ(Root->attr("rettype"), "__m256d");
  EXPECT_EQ(Root->attr("name"), "_mm256_add_pd");
  EXPECT_EQ(Root->attr("missing"), "");
}

TEST(XmlParser, NestedChildren) {
  auto Root = parse("<list><item x='1'/><item x='2'>t</item><other/>"
                    "</list>");
  ASSERT_NE(Root, nullptr);
  EXPECT_EQ(Root->Children.size(), 3u);
  auto Items = Root->children("item");
  ASSERT_EQ(Items.size(), 2u);
  EXPECT_EQ(Items[1]->attr("x"), "2");
  EXPECT_EQ(Items[1]->Text, "t");
  EXPECT_NE(Root->child("other"), nullptr);
  EXPECT_EQ(Root->child("absent"), nullptr);
}

TEST(XmlParser, EntitiesDecoded) {
  auto Root = parse("<a b='x &amp; y'>1 &lt; 2 &gt; 0 &quot;q&quot;</a>");
  ASSERT_NE(Root, nullptr);
  EXPECT_EQ(Root->attr("b"), "x & y");
  EXPECT_EQ(Root->Text, "1 < 2 > 0 \"q\"");
}

TEST(XmlParser, CommentsAndProlog) {
  auto Root = parse("<?xml version=\"1.0\"?>\n<!-- header -->\n"
                    "<a><!-- inner -->x</a>");
  ASSERT_NE(Root, nullptr);
  EXPECT_EQ(Root->Text, "x");
}

TEST(XmlParser, MismatchedTagIsError) {
  parse("<a><b></a></b>", /*ExpectOk=*/false);
}

TEST(XmlParser, UnterminatedIsError) {
  parse("<a><b>", /*ExpectOk=*/false);
}

TEST(XmlParser, TextAroundChildren) {
  auto Root = parse("<op>FOR j := 0 to 3\n  x\nENDFOR</op>");
  ASSERT_NE(Root, nullptr);
  EXPECT_NE(Root->Text.find("FOR j := 0 to 3"), std::string::npos);
  EXPECT_NE(Root->Text.find("ENDFOR"), std::string::npos);
}
