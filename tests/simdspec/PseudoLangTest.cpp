//===- PseudoLangTest.cpp - Intel pseudo-language parser tests ----------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "simdspec/PseudoLang.h"

#include <gtest/gtest.h>

using namespace igen;
using namespace igen::pseudo;

namespace {

Operation parseOk(std::string_view S) {
  DiagnosticsEngine Diags;
  auto Op = parseOperation(S, Diags);
  EXPECT_TRUE(Op.has_value()) << Diags.render("pseudo");
  return Op ? std::move(*Op) : Operation{};
}

} // namespace

TEST(PseudoLang, Fig5Operation) {
  Operation Op = parseOk("FOR j := 0 to 3\n"
                         "  i := j*64\n"
                         "  dst[i+63:i] := a[i+63:i] + b[i+63:i]\n"
                         "ENDFOR\n"
                         "dst[MAX:256] := 0\n");
  ASSERT_EQ(Op.Stmts.size(), 2u);
  const Stmt &For = *Op.Stmts[0];
  EXPECT_EQ(For.K, Stmt::Kind::For);
  EXPECT_EQ(For.LoopVar, "j");
  ASSERT_EQ(For.Body.size(), 2u);
  EXPECT_EQ(For.Body[0]->K, Stmt::Kind::Assign);
  const Stmt &Update = *For.Body[1];
  ASSERT_EQ(Update.Target->K, Expr::Kind::BitRange);
  EXPECT_EQ(Update.Target->Name, "dst");
  EXPECT_EQ(Update.Value->K, Expr::Kind::Binary);
  EXPECT_EQ(Update.Value->Op, "+");
}

TEST(PseudoLang, IfElseAndModulo) {
  Operation Op = parseOk("FOR j := 0 to 3\n"
                         "  IF (j % 2 == 0)\n"
                         "    x := 1\n"
                         "  ELSE\n"
                         "    x := 2\n"
                         "  FI\n"
                         "ENDFOR\n");
  const Stmt &For = *Op.Stmts[0];
  ASSERT_EQ(For.Body.size(), 1u);
  const Stmt &If = *For.Body[0];
  EXPECT_EQ(If.K, Stmt::Kind::If);
  EXPECT_EQ(If.Then.size(), 1u);
  EXPECT_EQ(If.Else.size(), 1u);
}

TEST(PseudoLang, TernaryBecomesSelect) {
  Operation Op = parseOk("dst[63:0] := (imm8[0] == 0) ? a[63:0] : "
                         "a[127:64]\n");
  const Expr &V = *Op.Stmts[0]->Value;
  ASSERT_EQ(V.K, Expr::Kind::Call);
  EXPECT_EQ(V.Name, "SELECT");
  EXPECT_EQ(V.Args.size(), 3u);
}

TEST(PseudoLang, HelperCalls) {
  Operation Op = parseOk("dst[63:0] := SQRT(MIN(a[63:0], b[63:0]))\n");
  const Expr &V = *Op.Stmts[0]->Value;
  EXPECT_EQ(V.K, Expr::Kind::Call);
  EXPECT_EQ(V.Name, "SQRT");
  ASSERT_EQ(V.Args.size(), 1u);
  EXPECT_EQ(V.Args[0]->Name, "MIN");
}

TEST(PseudoLang, SingleBitAccess) {
  Operation Op = parseOk("x := imm8[3]\n");
  const Expr &V = *Op.Stmts[0]->Value;
  ASSERT_EQ(V.K, Expr::Kind::BitRange);
  EXPECT_EQ(V.Name, "imm8");
  EXPECT_EQ(V.Lo, nullptr);
}

TEST(PseudoLang, AffineForms) {
  Operation Op = parseOk("x := i + 63\n"
                         "y := 2*j - 3\n"
                         "z := j*k\n");
  auto A = tryAffine(*Op.Stmts[0]->Value);
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ(A->Constant, 63);
  EXPECT_EQ(A->Coeffs.at("i"), 1);
  auto B = tryAffine(*Op.Stmts[1]->Value);
  ASSERT_TRUE(B.has_value());
  EXPECT_EQ(B->Constant, -3);
  EXPECT_EQ(B->Coeffs.at("j"), 2);
  EXPECT_FALSE(tryAffine(*Op.Stmts[2]->Value).has_value());
}

TEST(PseudoLang, RangeWidths) {
  Operation Op = parseOk("dst[i+63:i] := 0\n"
                         "dst[127:64] := 0\n"
                         "dst[k+31:k] := 0\n"
                         "x := imm8[2]\n");
  EXPECT_EQ(rangeWidth(*Op.Stmts[0]->Target).value_or(0), 64);
  EXPECT_EQ(rangeWidth(*Op.Stmts[1]->Target).value_or(0), 64);
  EXPECT_EQ(rangeWidth(*Op.Stmts[2]->Target).value_or(0), 32);
  EXPECT_EQ(rangeWidth(*Op.Stmts[3]->Value).value_or(0), 1);
}

TEST(PseudoLang, NonAffineWidthRejected) {
  Operation Op = parseOk("dst[i*j:i] := 0\n");
  EXPECT_FALSE(rangeWidth(*Op.Stmts[0]->Target).has_value());
}

TEST(PseudoLang, HexNumbersAndComparisons) {
  Operation Op = parseOk("IF x >= 0x1F AND y != 2\n  z := 1\nFI\n");
  const Stmt &If = *Op.Stmts[0];
  EXPECT_EQ(If.Cond->Op, "&&");
  EXPECT_EQ(If.Cond->LHS->Op, ">=");
  EXPECT_EQ(If.Cond->LHS->RHS->Num, 31);
}

TEST(PseudoLang, MalformedIsRejected) {
  DiagnosticsEngine Diags;
  EXPECT_FALSE(parseOperation("FOR j := 0 to\n", Diags).has_value() &&
               !Diags.hasErrors());
}
