#include "support/StringExtras.h"
//===- SimdGenTest.cpp - SIMD2C generator tests --------------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "simdspec/SimdGen.h"

#include <gmock/gmock.h>
#include <gtest/gtest.h>

using namespace igen;
using ::testing::HasSubstr;

namespace {

const char *Fig5Xml =
    "<intrinsics_list>"
    "<intrinsic rettype='__m256d' name='_mm256_add_pd'>"
    "<type>Floating Point</type><CPUID>AVX</CPUID>"
    "<category>Arithmetic</category>"
    "<parameter varname='a' type='__m256d'/>"
    "<parameter varname='b' type='__m256d'/>"
    "<operation>\n"
    "FOR j := 0 to 3\n"
    "  i := j*64\n"
    "  dst[i+63:i] := a[i+63:i] + b[i+63:i]\n"
    "ENDFOR\n"
    "dst[MAX:256] := 0\n"
    "</operation>"
    "</intrinsic>"
    "</intrinsics_list>";

std::vector<IntrinsicSpec> parseSpecs(std::string_view Xml) {
  DiagnosticsEngine Diags;
  auto Specs = parseIntrinsicsXml(Xml, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.render("xml");
  return Specs;
}

} // namespace

TEST(SimdGen, ParsesSpec) {
  auto Specs = parseSpecs(Fig5Xml);
  ASSERT_EQ(Specs.size(), 1u);
  EXPECT_EQ(Specs[0].Name, "_mm256_add_pd");
  EXPECT_EQ(Specs[0].RetType, "__m256d");
  EXPECT_EQ(Specs[0].Category, "Arithmetic");
  ASSERT_EQ(Specs[0].Params.size(), 2u);
  EXPECT_EQ(Specs[0].Params[0].Name, "a");
  EXPECT_EQ(Specs[0].Op.Stmts.size(), 2u);
}

TEST(SimdGen, VecTypeInfo) {
  EXPECT_EQ(vecTypeInfo("__m256d").Lanes, 4);
  EXPECT_EQ(vecTypeInfo("__m256d").ElemBits, 64);
  EXPECT_EQ(vecTypeInfo("__m128").Lanes, 4);
  EXPECT_EQ(vecTypeInfo("__m128").ElemBits, 32);
  EXPECT_EQ(vecTypeInfo("__m256").Lanes, 8);
  EXPECT_FALSE(vecTypeInfo("int").isVector());
  EXPECT_FALSE(vecTypeInfo("const int").isVector());
}

TEST(SimdGen, UnionEmissionMatchesFig5) {
  DiagnosticsEngine Diags;
  std::string Out = emitUnionC(parseSpecs(Fig5Xml), Diags);
  // Fig. 5's generated code, modulo formatting.
  EXPECT_THAT(Out, HasSubstr("typedef union {"));
  EXPECT_THAT(Out, HasSubstr("__m256d v;"));
  EXPECT_THAT(Out, HasSubstr("double f[4];"));
  EXPECT_THAT(Out,
              HasSubstr("__m256d _c_mm256_add_pd(__m256d _a, __m256d _b)"));
  EXPECT_THAT(Out, HasSubstr("vec256d dst"));
  EXPECT_THAT(Out, HasSubstr("{.v = _a}"));
  EXPECT_THAT(Out, HasSubstr("dst.f[(i) / 64] = (a.f[(i) / 64] + "
                             "b.f[(i) / 64]);"));
  EXPECT_THAT(Out, HasSubstr("return dst.v;"));
}

TEST(SimdGen, ScalarEmissionIsIGenSubset) {
  DiagnosticsEngine Diags;
  std::string Out = emitScalarC(parseSpecs(Fig5Xml), "_s64", Diags);
  EXPECT_THAT(Out, HasSubstr("void _s64_mm256_add_pd(double *dst, "
                             "double *a, double *b)"));
  EXPECT_THAT(Out, HasSubstr("dst[(i) / 64] = (a[(i) / 64] + "
                             "b[(i) / 64]);"));
  // No unions/member access (the IGen frontend does not support them).
  EXPECT_EQ(Out.find(".f["), std::string::npos);
}

TEST(SimdGen, WrapperEmission) {
  DiagnosticsEngine Diags;
  std::string Out = emitWrappers(parseSpecs(Fig5Xml), "_s64", "_sdd",
                                 Diags);
  EXPECT_THAT(Out, HasSubstr("m256di_2 _ci_mm256_add_pd(m256di_2 a, "
                             "m256di_2 b)"));
  EXPECT_THAT(Out, HasSubstr("_s64_mm256_add_pd(_dst, _a, _b);"));
  EXPECT_THAT(Out, HasSubstr("ddi_4 _ci_dd_mm256_add_pd(ddi_4 a, "
                             "ddi_4 b)"));
  EXPECT_THAT(Out, HasSubstr("_sdd_mm256_add_pd(_dst, _a, _b);"));
}

TEST(SimdGen, ImmediateControlBits) {
  const char *Xml =
      "<intrinsics_list>"
      "<intrinsic rettype='__m128d' name='_mm_shuffle_pd'>"
      "<category>Swizzle</category>"
      "<parameter varname='a' type='__m128d'/>"
      "<parameter varname='b' type='__m128d'/>"
      "<parameter varname='imm8' type='const int'/>"
      "<operation>\n"
      "dst[63:0] := (imm8[0] == 0) ? a[63:0] : a[127:64]\n"
      "dst[127:64] := (imm8[1] == 0) ? b[63:0] : b[127:64]\n"
      "</operation>"
      "</intrinsic></intrinsics_list>";
  DiagnosticsEngine Diags;
  std::string Out = emitScalarC(parseSpecs(Xml), "_s64", Diags);
  EXPECT_THAT(Out, HasSubstr("((imm8 >> (0)) & 1)"));
  EXPECT_THAT(Out, HasSubstr("? a[(0) / 64] : a[(64) / 64]"));
  EXPECT_THAT(Out, HasSubstr("int imm8"));
}

TEST(SimdGen, MixedWidthConversion) {
  const char *Xml =
      "<intrinsics_list>"
      "<intrinsic rettype='__m256d' name='_mm256_cvtps_pd'>"
      "<category>Convert</category>"
      "<parameter varname='a' type='__m128'/>"
      "<operation>\n"
      "FOR j := 0 to 3\n"
      "  i := j*64\n"
      "  k := j*32\n"
      "  dst[i+63:i] := Convert_FP32_To_FP64(a[k+31:k])\n"
      "ENDFOR\n"
      "</operation>"
      "</intrinsic></intrinsics_list>";
  DiagnosticsEngine Diags;
  std::string Out = emitScalarC(parseSpecs(Xml), "_s64", Diags);
  EXPECT_THAT(Out, HasSubstr("double *dst, float *a"));
  EXPECT_THAT(Out, HasSubstr("(double)(a[(k) / 32])"));
}

TEST(SimdGen, MismatchedWidthSkipsIntrinsic) {
  // Accessing 32-bit chunks of a 64-bit-element vector is unsupported.
  const char *Xml =
      "<intrinsics_list>"
      "<intrinsic rettype='__m256d' name='_mm256_bogus_pd'>"
      "<category>Misc</category>"
      "<parameter varname='a' type='__m256d'/>"
      "<operation>\ndst[31:0] := a[31:0]\n</operation>"
      "</intrinsic></intrinsics_list>";
  DiagnosticsEngine Diags;
  std::string Out = emitScalarC(parseSpecs(Xml), "_s64", Diags);
  EXPECT_EQ(Out.find("_s64_mm256_bogus_pd"), std::string::npos);
  bool Warned = false;
  for (const auto &D : Diags.diagnostics())
    if (D.Severity == DiagSeverity::Warning)
      Warned = true;
  EXPECT_TRUE(Warned);
}

TEST(SimdGen, BundledDataFileParses) {
  // The repository's own data file must fully parse and emit.
  std::string Xml;
  ASSERT_TRUE(readFile(SIMD_XML_PATH, Xml));
  DiagnosticsEngine Diags;
  auto Specs = parseIntrinsicsXml(Xml, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.render("xml");
  EXPECT_GE(Specs.size(), 20u);
  std::string C = emitUnionC(Specs, Diags);
  std::string S = emitScalarC(Specs, "_s64", Diags);
  std::string W = emitWrappers(Specs, "_s64", "_sdd", Diags);
  // Every spec must survive all three emitters (no silent skips).
  for (const IntrinsicSpec &Spec : Specs) {
    EXPECT_THAT(C, HasSubstr("_c" + Spec.Name + "(")) << Spec.Name;
    EXPECT_THAT(S, HasSubstr("_s64" + Spec.Name + "(")) << Spec.Name;
    EXPECT_THAT(W, HasSubstr("_ci" + Spec.Name + "(")) << Spec.Name;
  }
}
