//===- SimdExecTest.cpp - Execute generated SIMD implementations --------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Validates the whole Fig. 4 pipeline at runtime:
//  * the union-based C implementations (_c_*) must agree bitwise with the
//    hardware intrinsics they model;
//  * the IGen-compiled interval versions (_ci_*, _ci_dd_*) must contain
//    the results of the real intrinsics applied to points in the inputs.
//
//===----------------------------------------------------------------------===//

#include "igen_simd.h"   // generated: interval wrappers
#include "igen_simd_c.h" // generated: union C implementations

#include "interval/Accuracy.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace {

class SimdPipelineTest : public ::testing::Test {
protected:
  igen::RoundUpwardScope Up;
  std::mt19937_64 Gen{77};
  double uniform(double Lo, double Hi) {
    return std::uniform_real_distribution<double>(Lo, Hi)(Gen);
  }
  __m256d random256d(double Lo = -10, double Hi = 10) {
    return _mm256_set_pd(uniform(Lo, Hi), uniform(Lo, Hi),
                         uniform(Lo, Hi), uniform(Lo, Hi));
  }
  static bool same256d(__m256d A, __m256d B) {
    alignas(32) double LA[4], LB[4];
    _mm256_store_pd(LA, A);
    _mm256_store_pd(LB, B);
    for (int I = 0; I < 4; ++I)
      if (LA[I] != LB[I] && !(std::isnan(LA[I]) && std::isnan(LB[I])))
        return false;
    return true;
  }
  m256di_2 pointVec(const double *V) {
    f64i Elems[4];
    for (int I = 0; I < 4; ++I)
      Elems[I] = f64i::fromPoint(V[I]);
    return ia_loadu_m256di_2(Elems);
  }
};

} // namespace

TEST_F(SimdPipelineTest, UnionImplsMatchHardwareArithmetic) {
  // Run in round-to-nearest: hardware semantics of the reference.
  igen::RoundNearestScope RN;
  for (int Trial = 0; Trial < 2000; ++Trial) {
    __m256d A = random256d(), B = random256d();
    EXPECT_TRUE(same256d(_c_mm256_add_pd(A, B), _mm256_add_pd(A, B)));
    EXPECT_TRUE(same256d(_c_mm256_sub_pd(A, B), _mm256_sub_pd(A, B)));
    EXPECT_TRUE(same256d(_c_mm256_mul_pd(A, B), _mm256_mul_pd(A, B)));
    EXPECT_TRUE(same256d(_c_mm256_div_pd(A, B), _mm256_div_pd(A, B)));
    EXPECT_TRUE(same256d(_c_mm256_min_pd(A, B), _mm256_min_pd(A, B)));
    EXPECT_TRUE(same256d(_c_mm256_max_pd(A, B), _mm256_max_pd(A, B)));
    EXPECT_TRUE(
        same256d(_c_mm256_hadd_pd(A, B), _mm256_hadd_pd(A, B)));
    EXPECT_TRUE(
        same256d(_c_mm256_addsub_pd(A, B), _mm256_addsub_pd(A, B)));
    EXPECT_TRUE(
        same256d(_c_mm256_unpacklo_pd(A, B), _mm256_unpacklo_pd(A, B)));
    EXPECT_TRUE(
        same256d(_c_mm256_unpackhi_pd(A, B), _mm256_unpackhi_pd(A, B)));
    EXPECT_TRUE(same256d(_c_mm256_movedup_pd(A), _mm256_movedup_pd(A)));
  }
}

TEST_F(SimdPipelineTest, UnionImplsMatchHardwareSqrt) {
  igen::RoundNearestScope RN;
  for (int Trial = 0; Trial < 1000; ++Trial) {
    __m256d A = random256d(0.0, 100.0);
    EXPECT_TRUE(same256d(_c_mm256_sqrt_pd(A), _mm256_sqrt_pd(A)));
  }
}

TEST_F(SimdPipelineTest, UnionImplsMatchHardwareImmediates) {
  igen::RoundNearestScope RN;
  __m256d A = random256d(), B = random256d();
  // imm8 is a compile-time constant for the hardware intrinsic: cover the
  // control space with explicit instantiations.
  EXPECT_TRUE(same256d(_c_mm256_shuffle_pd(A, B, 0),
                       _mm256_shuffle_pd(A, B, 0)));
  EXPECT_TRUE(same256d(_c_mm256_shuffle_pd(A, B, 5),
                       _mm256_shuffle_pd(A, B, 5)));
  EXPECT_TRUE(same256d(_c_mm256_shuffle_pd(A, B, 15),
                       _mm256_shuffle_pd(A, B, 15)));
  EXPECT_TRUE(
      same256d(_c_mm256_blend_pd(A, B, 0), _mm256_blend_pd(A, B, 0)));
  EXPECT_TRUE(
      same256d(_c_mm256_blend_pd(A, B, 6), _mm256_blend_pd(A, B, 6)));
  EXPECT_TRUE(
      same256d(_c_mm256_blend_pd(A, B, 15), _mm256_blend_pd(A, B, 15)));
}

TEST_F(SimdPipelineTest, UnionImplMatchesHardwareCvtps) {
  igen::RoundNearestScope RN;
  __m128 A = _mm_set_ps(1.5f, -2.25f, 3.75f, 0.125f);
  EXPECT_TRUE(same256d(_c_mm256_cvtps_pd(A), _mm256_cvtps_pd(A)));
}

TEST_F(SimdPipelineTest, IntervalIntrinsicsSound) {
  for (int Trial = 0; Trial < 500; ++Trial) {
    alignas(32) double AV[4], BV[4];
    for (int I = 0; I < 4; ++I) {
      AV[I] = uniform(-10, 10);
      BV[I] = uniform(-10, 10);
    }
    m256di_2 A = pointVec(AV), B = pointVec(BV);

    struct Case {
      m256di_2 R;
      __m256d Ref;
    } Cases[] = {
        {_ci_mm256_add_pd(A, B),
         _mm256_add_pd(_mm256_loadu_pd(AV), _mm256_loadu_pd(BV))},
        {_ci_mm256_mul_pd(A, B),
         _mm256_mul_pd(_mm256_loadu_pd(AV), _mm256_loadu_pd(BV))},
        {_ci_mm256_hadd_pd(A, B),
         _mm256_hadd_pd(_mm256_loadu_pd(AV), _mm256_loadu_pd(BV))},
        {_ci_mm256_addsub_pd(A, B),
         _mm256_addsub_pd(_mm256_loadu_pd(AV), _mm256_loadu_pd(BV))},
        {_ci_mm256_unpacklo_pd(A, B),
         _mm256_unpacklo_pd(_mm256_loadu_pd(AV), _mm256_loadu_pd(BV))},
        {_ci_mm256_min_pd(A, B),
         _mm256_min_pd(_mm256_loadu_pd(AV), _mm256_loadu_pd(BV))},
    };
    for (const Case &C : Cases) {
      alignas(32) double Ref[4];
      {
        igen::RoundNearestScope RN;
        _mm256_store_pd(Ref, C.Ref);
      }
      for (int I = 0; I < 4; ++I) {
        igen::Interval R = C.R.interval(I);
        // The RN hardware result sits within 1 ulp of the real value, so
        // a sound interval must come within 1 ulp of containing it.
        EXPECT_LE(-R.NegLo, Ref[I] + igen::ulpOf(Ref[I]));
        EXPECT_GE(R.Hi, Ref[I] - igen::ulpOf(Ref[I]));
        EXPECT_GT(igen::accuracyBits(R), 48.0);
      }
    }
  }
}

TEST_F(SimdPipelineTest, IntervalShuffleMatchesControl) {
  alignas(32) double AV[4] = {1, 2, 3, 4}, BV[4] = {10, 20, 30, 40};
  m256di_2 A = pointVec(AV), B = pointVec(BV);
  m256di_2 R = _ci_mm256_shuffle_pd(A, B, 0b0101);
  // Reference: the hardware shuffle on the same points.
  alignas(32) double Ref[4];
  _mm256_store_pd(Ref, _mm256_shuffle_pd(_mm256_loadu_pd(AV),
                                         _mm256_loadu_pd(BV), 0b0101));
  for (int I = 0; I < 4; ++I) {
    EXPECT_EQ(R.interval(I).hi(), Ref[I]) << I;
    EXPECT_EQ(R.interval(I).lo(), Ref[I]) << I;
  }
}

TEST_F(SimdPipelineTest, DdIntervalIntrinsicsSound) {
  for (int Trial = 0; Trial < 200; ++Trial) {
    ddi AE[4], BE[4];
    double AV[4], BV[4];
    for (int I = 0; I < 4; ++I) {
      AV[I] = uniform(-10, 10);
      BV[I] = uniform(-10, 10);
      AE[I] = ddi::fromPoint(AV[I]);
      BE[I] = ddi::fromPoint(BV[I]);
    }
    ddi_4 A = ia_loadu_ddi_4(AE), B = ia_loadu_ddi_4(BE);
    ddi_4 Sum = _ci_dd_mm256_add_pd(A, B);
    ddi_4 Prod = _ci_dd_mm256_mul_pd(A, B);
    for (int I = 0; I < 4; ++I) {
      igen::DdInterval S = Sum.v[I].toScalar();
      __float128 ExactSum = (__float128)AV[I] + BV[I];
      __float128 Lo = -((__float128)S.NegLo.H + S.NegLo.L);
      __float128 Hi = (__float128)S.Hi.H + S.Hi.L;
      EXPECT_TRUE(Lo <= ExactSum && ExactSum <= Hi);
      igen::DdInterval P = Prod.v[I].toScalar();
      __float128 ExactProd = (__float128)AV[I] * BV[I];
      __float128 PLo = -((__float128)P.NegLo.H + P.NegLo.L);
      __float128 PHi = (__float128)P.Hi.H + P.Hi.L;
      EXPECT_TRUE(PLo <= ExactProd && ExactProd <= PHi);
      EXPECT_GT(igen::accuracyBits(P), 95.0);
    }
  }
}

TEST_F(SimdPipelineTest, PsIntrinsicsPromoteToDoubleIntervals) {
  // _mm256_add_ps becomes 8 double intervals (m256di_4).
  f64i Elems[8];
  for (int I = 0; I < 8; ++I)
    Elems[I] = f64i::fromPoint(0.5f * (I + 1));
  m256di_4 A = ia_loadu_m256di_4(Elems);
  m256di_4 R = _ci_mm256_add_ps(A, A);
  for (int I = 0; I < 8; ++I) {
    EXPECT_TRUE(R.interval(I).contains(1.0 * (I + 1)));
    EXPECT_GT(igen::accuracyBits(R.interval(I)), 50.0);
  }
}

TEST_F(SimdPipelineTest, CvtpsPdInterval) {
  f64i Elems[4] = {f64i::fromPoint(0.125f), f64i::fromPoint(-2.5f),
                   f64i::fromPoint(3.0f), f64i::fromPoint(1.5f)};
  m256di_2 R = _ci_mm256_cvtps_pd(ia_loadu_m256di_2(Elems));
  EXPECT_TRUE(R.interval(0).contains(0.125));
  EXPECT_TRUE(R.interval(1).contains(-2.5));
  EXPECT_TRUE(R.interval(2).contains(3.0));
  EXPECT_TRUE(R.interval(3).contains(1.5));
}

TEST_F(SimdPipelineTest, ExtendedCorpusUnionImpls) {
  igen::RoundNearestScope RN;
  for (int Trial = 0; Trial < 500; ++Trial) {
    __m128d A2 = _mm_set_pd(uniform(-9, 9), uniform(-9, 9));
    __m128d B2 = _mm_set_pd(uniform(-9, 9), uniform(-9, 9));
    alignas(16) double RA[2], RB[2];
    auto Same128 = [](__m128d X, __m128d Y) {
      alignas(16) double LX[2], LY[2];
      _mm_store_pd(LX, X);
      _mm_store_pd(LY, Y);
      return LX[0] == LY[0] && LX[1] == LY[1];
    };
    (void)RA;
    (void)RB;
    EXPECT_TRUE(Same128(_c_mm_min_pd(A2, B2), _mm_min_pd(A2, B2)));
    EXPECT_TRUE(Same128(_c_mm_max_pd(A2, B2), _mm_max_pd(A2, B2)));
    EXPECT_TRUE(
        Same128(_c_mm_addsub_pd(A2, B2), _mm_addsub_pd(A2, B2)));
    EXPECT_TRUE(Same128(_c_mm_movedup_pd(A2), _mm_movedup_pd(A2)));
    EXPECT_TRUE(
        Same128(_c_mm_unpacklo_pd(A2, B2), _mm_unpacklo_pd(A2, B2)));
  }
  // ps family vs hardware.
  __m256 A8 = _mm256_set_ps(1, -2, 3.5f, -4.25f, 5, 6, -7.5f, 8);
  __m256 B8 = _mm256_set_ps(2, 3, -1.5f, 0.25f, -5, 2, 7.5f, 1);
  auto Same256s = [](__m256 X, __m256 Y) {
    alignas(32) float LX[8], LY[8];
    _mm256_store_ps(LX, X);
    _mm256_store_ps(LY, Y);
    for (int I = 0; I < 8; ++I)
      if (LX[I] != LY[I])
        return false;
    return true;
  };
  EXPECT_TRUE(Same256s(_c_mm256_sub_ps(A8, B8), _mm256_sub_ps(A8, B8)));
  EXPECT_TRUE(Same256s(_c_mm256_div_ps(A8, B8), _mm256_div_ps(A8, B8)));
  EXPECT_TRUE(Same256s(_c_mm256_min_ps(A8, B8), _mm256_min_ps(A8, B8)));
  EXPECT_TRUE(Same256s(_c_mm256_max_ps(A8, B8), _mm256_max_ps(A8, B8)));
  EXPECT_TRUE(Same256s(_c_mm256_blend_ps(A8, B8, 0xA5),
                       _mm256_blend_ps(A8, B8, 0xA5)));
  // 128-bit ps family.
  __m128 A4 = _mm256_castps256_ps128(A8);
  __m128 B4 = _mm256_castps256_ps128(B8);
  auto Same128s = [](__m128 X, __m128 Y) {
    alignas(16) float LX[4], LY[4];
    _mm_store_ps(LX, X);
    _mm_store_ps(LY, Y);
    for (int I = 0; I < 4; ++I)
      if (LX[I] != LY[I])
        return false;
    return true;
  };
  EXPECT_TRUE(Same128s(_c_mm_add_ps(A4, B4), _mm_add_ps(A4, B4)));
  EXPECT_TRUE(Same128s(_c_mm_mul_ps(A4, B4), _mm_mul_ps(A4, B4)));
}

TEST_F(SimdPipelineTest, ExtendedCorpusIntervalSoundness) {
  // _ci_mm_addsub_pd and _ci_mm256_min_ps on point inputs.
  alignas(16) double AV[2] = {1.5, -2.25}, BV[2] = {0.5, 4.0};
  f64i AE[2] = {f64i::fromPoint(AV[0]), f64i::fromPoint(AV[1])};
  f64i BE[2] = {f64i::fromPoint(BV[0]), f64i::fromPoint(BV[1])};
  m256di_1 A = ia_loadu_m256di_1(AE), B = ia_loadu_m256di_1(BE);
  m256di_1 R = _ci_mm_addsub_pd(A, B);
  EXPECT_TRUE(R.Part[0].interval(0).contains(AV[0] - BV[0]));
  EXPECT_TRUE(R.Part[0].interval(1).contains(AV[1] + BV[1]));
  m256di_1 M = _ci_mm_movedup_pd(A);
  EXPECT_TRUE(M.Part[0].interval(0).contains(AV[0]));
  EXPECT_TRUE(M.Part[0].interval(1).contains(AV[0]));

  f64i E8[8];
  for (int I = 0; I < 8; ++I)
    E8[I] = f64i::fromPoint(0.25 * (I - 4));
  m256di_4 V8 = ia_loadu_m256di_4(E8);
  m256di_4 Mn = _ci_mm256_min_ps(V8, V8);
  for (int I = 0; I < 8; ++I)
    EXPECT_TRUE(Mn.interval(I).contains(0.25 * (I - 4)));
}
