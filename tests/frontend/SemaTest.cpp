//===- SemaTest.cpp - Semantic analysis tests --------------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "frontend/Sema.h"

#include <gtest/gtest.h>

using namespace igen;

namespace {

struct SemaResult {
  std::unique_ptr<ASTContext> Ctx;
  DiagnosticsEngine Diags;
  bool OK = false;
};

SemaResult analyze(std::string_view Src) {
  SemaResult R;
  R.Ctx = std::make_unique<ASTContext>();
  Parser P(Src, *R.Ctx, R.Diags);
  bool Parsed = P.parseTranslationUnit();
  EXPECT_TRUE(Parsed) << R.Diags.render("test");
  Sema S(*R.Ctx, R.Diags);
  R.OK = S.run();
  return R;
}

const Expr *firstReturnValue(const SemaResult &R, const char *Fn) {
  const FunctionDecl *F = R.Ctx->TU.findFunction(Fn);
  for (const Stmt *S : F->Body->Body)
    if (const auto *Ret = dynCast<ReturnStmt>(S))
      return Ret->Value;
  return nullptr;
}

} // namespace

TEST(Sema, ResolvesDeclsAndTypes) {
  SemaResult R = analyze("double f(double a, int n) {\n"
                         "  double c = a * 2.0;\n"
                         "  return c + n;\n"
                         "}\n");
  ASSERT_TRUE(R.OK) << R.Diags.render("test");
  const Expr *Ret = firstReturnValue(R, "f");
  ASSERT_NE(Ret, nullptr);
  EXPECT_EQ(Ret->type()->kind(), Type::Kind::Double);
  const auto *Add = dynCast<BinaryExpr>(Ret);
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->RHS->type()->kind(), Type::Kind::Int);
  const auto *Ref = dynCast<DeclRefExpr>(Add->LHS);
  ASSERT_NE(Ref, nullptr);
  ASSERT_NE(Ref->Decl, nullptr);
  EXPECT_EQ(Ref->Decl->Name, "c");
}

TEST(Sema, UndeclaredIdentifier) {
  SemaResult R = analyze("double f(void) { return x; }");
  EXPECT_FALSE(R.OK);
}

TEST(Sema, ScopesNestAndShadow) {
  SemaResult R = analyze("double f(double x) {\n"
                         "  { double y = x; x = y; }\n"
                         "  for (int i = 0; i < 3; i++) { double y; y = i; }\n"
                         "  return x;\n"
                         "}\n");
  EXPECT_TRUE(R.OK) << R.Diags.render("test");
}

TEST(Sema, RedefinitionInSameScope) {
  SemaResult R = analyze("void f(void) { int a; double a; }");
  EXPECT_FALSE(R.OK);
}

TEST(Sema, UseOutOfScopeFails) {
  SemaResult R = analyze("double f(void) { { double y = 1.0; } return y; }");
  EXPECT_FALSE(R.OK);
}

TEST(Sema, IndexingAndPointers) {
  SemaResult R = analyze("double f(double *p, double a[10]) {\n"
                         "  return p[1] + a[2] + *p;\n"
                         "}\n");
  ASSERT_TRUE(R.OK) << R.Diags.render("test");
  EXPECT_EQ(firstReturnValue(R, "f")->type()->kind(), Type::Kind::Double);
}

TEST(Sema, MathCallsTyped) {
  SemaResult R = analyze("double f(double x) { return sin(x) + sqrt(x); }");
  ASSERT_TRUE(R.OK) << R.Diags.render("test");
  EXPECT_EQ(firstReturnValue(R, "f")->type()->kind(), Type::Kind::Double);
}

TEST(Sema, IntrinsicReturnTypes) {
  SemaResult R = analyze(
      "#include <immintrin.h>\n"
      "double f(double *p) {\n"
      "  __m256d v = _mm256_loadu_pd(p);\n"
      "  __m256d w = _mm256_mul_pd(v, v);\n"
      "  __m128d lo = _mm256_extractf128_pd(w, 0);\n"
      "  return _mm_cvtsd_f64(lo);\n"
      "}\n");
  EXPECT_TRUE(R.OK) << R.Diags.render("test");
}

TEST(Sema, UnknownIntrinsicRejected) {
  SemaResult R = analyze("void f(__m256d v) { _mm256_bogus_xyz(v); }");
  EXPECT_FALSE(R.OK);
}

TEST(Sema, UserFunctionCalls) {
  SemaResult R = analyze("double g(double x) { return x; }\n"
                         "double f(double x) { return g(x) + g(2.0); }\n");
  EXPECT_TRUE(R.OK) << R.Diags.render("test");
  SemaResult Bad = analyze("double g(double x) { return x; }\n"
                           "double f(double x) { return g(x, x); }\n");
  EXPECT_FALSE(Bad.OK);
}

TEST(Sema, BitOpsOnFloatRejected) {
  EXPECT_FALSE(analyze("double f(double a) { return a & 1.0; }").OK);
  EXPECT_FALSE(analyze("double f(double a) { return a << 2; }").OK);
  EXPECT_TRUE(analyze("int f(int a) { return a & 1; }").OK);
}

TEST(Sema, FloatToIntCastRejected) {
  EXPECT_FALSE(analyze("int f(double a) { return (int)a; }").OK);
  EXPECT_TRUE(analyze("double f(int a) { return (double)a; }").OK);
  EXPECT_TRUE(analyze("double f(float a) { return (double)a; }").OK);
}

TEST(Sema, MallocWarns) {
  SemaResult R = analyze("void f(void) { double *p = (double *)malloc(8); "
                         "free(p); }");
  EXPECT_TRUE(R.OK); // warning, not an error
  bool SawWarning = false;
  for (const Diagnostic &D : R.Diags.diagnostics())
    if (D.Severity == DiagSeverity::Warning)
      SawWarning = true;
  EXPECT_TRUE(SawWarning);
}

TEST(Sema, ReductionVarMustBeInScope) {
  SemaResult R = analyze("void f(double *y) {\n"
                         "  #pragma igen reduce z\n"
                         "  for (int i = 0; i < 4; i++) y[i] = y[i] + 1.0;\n"
                         "}\n");
  EXPECT_FALSE(R.OK);
}

TEST(Sema, ComparisonsAreInt) {
  SemaResult R = analyze("int f(double a, double b) { return a < b; }");
  ASSERT_TRUE(R.OK);
  EXPECT_EQ(firstReturnValue(R, "f")->type()->kind(), Type::Kind::Int);
}

TEST(Sema, VoidReturnChecked) {
  EXPECT_FALSE(analyze("double f(void) { return; }").OK);
  EXPECT_TRUE(analyze("void f(void) { return; }").OK);
}

#include "frontend/ASTDumper.h"

TEST(ASTDumper, StructureAndTypes) {
  SemaResult R = analyze("double f(double:0.5 a, int n) {\n"
                         "  double s = 0.0;\n"
                         "  #pragma igen reduce s\n"
                         "  for (int i = 0; i < n; i++)\n"
                         "    s = s + a * (double)i;\n"
                         "  return s;\n"
                         "}\n");
  ASSERT_TRUE(R.OK) << R.Diags.render("test");
  std::string Dump = dumpAST(R.Ctx->TU);
  EXPECT_NE(Dump.find("FunctionDecl f ret='double'"), std::string::npos);
  EXPECT_NE(Dump.find("ParamDecl a 'double' tolerance=0.5"),
            std::string::npos);
  EXPECT_NE(Dump.find("ForStmt reduce(s)"), std::string::npos);
  EXPECT_NE(Dump.find("BinaryExpr '+' 'double'"), std::string::npos);
  EXPECT_NE(Dump.find("CastExpr to 'double'"), std::string::npos);
  EXPECT_NE(Dump.find("ReturnStmt"), std::string::npos);
}

TEST(ASTDumper, AllStatementKinds) {
  SemaResult R = analyze(
      "int g(int n) {\n"
      "  int s = 0;\n"
      "  while (n > 0) { s += n; n--; }\n"
      "  do { s++; } while (s < 3);\n"
      "  for (;;) { break; }\n"
      "  if (s > 5) return s; else return -s;\n"
      "}\n");
  ASSERT_TRUE(R.OK);
  std::string Dump = dumpAST(R.Ctx->TU);
  for (const char *Node :
       {"WhileStmt", "DoStmt", "ForStmt", "IfStmt", "BreakStmt",
        "UnaryExpr 'post--'", "UnaryExpr 'post++'"})
    EXPECT_NE(Dump.find(Node), std::string::npos) << Node;
}
