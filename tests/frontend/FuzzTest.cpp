//===- FuzzTest.cpp - Frontend robustness fuzzing -----------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// The compiler must never crash on malformed input: random byte soup,
// random token recombinations and pathological-but-valid programs all go
// through the full pipeline, asserting only graceful behaviour (either a
// result or diagnostics).
//
//===----------------------------------------------------------------------===//

#include "frontend/CPrinter.h"
#include "frontend/Parser.h"
#include "transform/Pipeline.h"

#include <random>
#include <string>

#include <gtest/gtest.h>

using namespace igen;

namespace {

void pipeline(const std::string &Src) {
  DiagnosticsEngine Diags;
  TransformOptions Opts;
  auto Out = compileToIntervals(Src, Opts, Diags);
  // Either output or at least one error; never both nothing.
  if (!Out) {
    EXPECT_TRUE(Diags.hasErrors()) << Src;
  }
}

} // namespace

TEST(Fuzz, RandomByteSoupDoesNotCrash) {
  std::mt19937_64 Gen(12345);
  std::uniform_int_distribution<int> Byte(32, 126);
  std::uniform_int_distribution<int> Len(0, 400);
  for (int Trial = 0; Trial < 500; ++Trial) {
    std::string Src;
    int N = Len(Gen);
    for (int I = 0; I < N; ++I)
      Src.push_back(static_cast<char>(Byte(Gen)));
    pipeline(Src);
  }
}

TEST(Fuzz, RandomTokenSoupDoesNotCrash) {
  const char *Tokens[] = {
      "double", "int",  "float", "if",   "else", "for",  "while", "return",
      "(",      ")",    "{",     "}",    "[",    "]",    ";",     ",",
      "+",      "-",    "*",     "/",    "=",    "==",   "<",     ">",
      "x",      "y",    "foo",   "1",    "2.5",  "0.1",  "0.25t", ":",
      "#pragma igen reduce y\n", "__m256d", "_mm256_add_pd", "&&", "||",
      "sqrt",   "sin",  "++",    "--",   "+=",   "&",    "!",     "%"};
  std::mt19937_64 Gen(777);
  std::uniform_int_distribution<size_t> Pick(
      0, sizeof(Tokens) / sizeof(Tokens[0]) - 1);
  std::uniform_int_distribution<int> Len(1, 120);
  for (int Trial = 0; Trial < 500; ++Trial) {
    std::string Src;
    int N = Len(Gen);
    for (int I = 0; I < N; ++I) {
      Src += Tokens[Pick(Gen)];
      Src += ' ';
    }
    pipeline(Src);
  }
}

TEST(Fuzz, MutatedValidProgramsDoNotCrash) {
  const std::string Base =
      "double foo(double a, double b) {\n"
      "  double c = a + b * 0.1;\n"
      "  for (int i = 0; i < 10; i++) {\n"
      "    if (c > a) { c = c - 1.0; } else { c = c + sqrt(b); }\n"
      "  }\n"
      "  return c;\n"
      "}\n";
  std::mt19937_64 Gen(31);
  std::uniform_int_distribution<int> Byte(32, 126);
  for (int Trial = 0; Trial < 800; ++Trial) {
    std::string Src = Base;
    // 1-4 random single-character mutations (replace/delete/insert).
    std::uniform_int_distribution<int> NumMut(1, 4);
    int M = NumMut(Gen);
    for (int K = 0; K < M; ++K) {
      std::uniform_int_distribution<size_t> Pos(0, Src.size() - 1);
      size_t P = Pos(Gen);
      switch (Trial % 3) {
      case 0:
        Src[P] = static_cast<char>(Byte(Gen));
        break;
      case 1:
        Src.erase(P, 1);
        break;
      default:
        Src.insert(P, 1, static_cast<char>(Byte(Gen)));
        break;
      }
    }
    pipeline(Src);
  }
}

TEST(Fuzz, DeepExpressionNesting) {
  // Deep parenthesization and long operator chains must not blow the
  // recursive-descent stack at plausible depths.
  std::string Deep = "double f(double x) { return ";
  for (int I = 0; I < 400; ++I)
    Deep += "(x + ";
  Deep += "x";
  for (int I = 0; I < 400; ++I)
    Deep += ")";
  Deep += "; }";
  pipeline(Deep);

  std::string Chain = "double g(double x) { return x";
  for (int I = 0; I < 5000; ++I)
    Chain += " + x";
  Chain += "; }";
  pipeline(Chain);
}

TEST(Fuzz, PrinterIsFixedPointOnValidPrograms) {
  // For every valid program the printer must reach a fixed point:
  // parse -> print -> parse -> print yields identical text.
  const char *Programs[] = {
      "double f(double a) { return -a * (a + 1.0) / 2.0; }",
      "void g(double *p, int n) { for (int i = 0; i < n; i++) p[i] = "
      "p[i] * p[i]; }",
      "double h(double:0.25 s) { double r = s + 0.5t; return r; }",
      "int k(int a, int b) { return a % b << 2 & 7 | b ^ 3; }",
      "double m(double x) { while (x < 10.0) { x = x * 2.0; } do { x = x "
      "- 1.0; } while (x > 5.0); return x; }",
  };
  for (const char *Src : Programs) {
    DiagnosticsEngine D1;
    ASTContext C1;
    Parser P1(Src, C1, D1);
    ASSERT_TRUE(P1.parseTranslationUnit()) << Src;
    CPrinter Pr1;
    std::string Once = Pr1.print(C1.TU);
    DiagnosticsEngine D2;
    ASTContext C2;
    Parser P2(Once, C2, D2);
    ASSERT_TRUE(P2.parseTranslationUnit()) << Once;
    CPrinter Pr2;
    EXPECT_EQ(Once, Pr2.print(C2.TU)) << Src;
  }
}

TEST(Fuzz, ManyStatementsAndScopes) {
  std::string Src = "double f(double x) {\n";
  for (int I = 0; I < 1500; ++I)
    Src += "  { double t" + std::to_string(I) + " = x * 2.0; x = t" +
           std::to_string(I) + "; }\n";
  Src += "  return x;\n}\n";
  DiagnosticsEngine Diags;
  TransformOptions Opts;
  auto Out = compileToIntervals(Src, Opts, Diags);
  EXPECT_TRUE(Out.has_value()) << Diags.render("fuzz");
  // x is unconstrained but 2.0 is provably positive: the optimizer
  // emits the sign-specialized multiply.
  EXPECT_NE(Out->find("ia_mul_pu_f64"), std::string::npos);
}
