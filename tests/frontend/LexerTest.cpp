//===- LexerTest.cpp - Lexer unit tests --------------------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <gtest/gtest.h>

using namespace igen;

namespace {

std::vector<Token> lexAll(std::string_view Src) {
  DiagnosticsEngine Diags;
  Lexer L(Src, Diags);
  std::vector<Token> T = L.lexAll();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.render("test");
  return T;
}

} // namespace

TEST(Lexer, KeywordsAndIdentifiers) {
  auto T = lexAll("double foo int _bar __m256d while");
  ASSERT_EQ(T.size(), 7u);
  EXPECT_EQ(T[0].Kind, TokenKind::KwDouble);
  EXPECT_EQ(T[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(T[1].Text, "foo");
  EXPECT_EQ(T[2].Kind, TokenKind::KwInt);
  EXPECT_EQ(T[3].Text, "_bar");
  EXPECT_EQ(T[4].Text, "__m256d");
  EXPECT_EQ(T[5].Kind, TokenKind::KwWhile);
  EXPECT_EQ(T[6].Kind, TokenKind::EndOfFile);
}

TEST(Lexer, IntegerLiterals) {
  auto T = lexAll("0 42 0x1F");
  EXPECT_EQ(T[0].IntValue, 0);
  EXPECT_EQ(T[1].IntValue, 42);
  EXPECT_EQ(T[2].IntValue, 31);
  EXPECT_EQ(T[2].Kind, TokenKind::IntegerLiteral);
}

TEST(Lexer, FloatLiterals) {
  auto T = lexAll("1.5 0.1 2e3 1.5e-2 3.f 2.5f");
  for (int I = 0; I < 6; ++I)
    EXPECT_EQ(T[I].Kind, TokenKind::FloatLiteral) << I;
  EXPECT_EQ(T[0].FloatValue, 1.5);
  EXPECT_EQ(T[1].FloatValue, 0.1);
  EXPECT_EQ(T[2].FloatValue, 2000.0);
  EXPECT_EQ(T[3].FloatValue, 0.015);
  EXPECT_TRUE(T[4].IsFloatSuffix);
  EXPECT_TRUE(T[5].IsFloatSuffix);
  EXPECT_EQ(T[5].FloatValue, 2.5);
}

TEST(Lexer, ToleranceSuffixExtension) {
  auto T = lexAll("0.25t 5.0 + 0.25t");
  EXPECT_EQ(T[0].Kind, TokenKind::FloatLiteral);
  EXPECT_TRUE(T[0].IsTolerance);
  EXPECT_EQ(T[0].FloatValue, 0.25);
  EXPECT_FALSE(T[1].IsTolerance);
  EXPECT_EQ(T[2].Kind, TokenKind::Plus);
  EXPECT_TRUE(T[3].IsTolerance);
}

TEST(Lexer, Operators) {
  auto T = lexAll("+ - * / % == != <= >= < > && || ++ -- += -= *= /= = -> .");
  TokenKind Expected[] = {
      TokenKind::Plus,       TokenKind::Minus,
      TokenKind::Star,       TokenKind::Slash,
      TokenKind::Percent,    TokenKind::EqualEqual,
      TokenKind::ExclaimEqual, TokenKind::LessEqual,
      TokenKind::GreaterEqual, TokenKind::Less,
      TokenKind::Greater,    TokenKind::AmpAmp,
      TokenKind::PipePipe,   TokenKind::PlusPlus,
      TokenKind::MinusMinus, TokenKind::PlusEqual,
      TokenKind::MinusEqual, TokenKind::StarEqual,
      TokenKind::SlashEqual, TokenKind::Equal,
      TokenKind::Arrow,      TokenKind::Period,
  };
  for (size_t I = 0; I < sizeof(Expected) / sizeof(Expected[0]); ++I)
    EXPECT_EQ(T[I].Kind, Expected[I]) << I;
}

TEST(Lexer, CommentsSkipped) {
  auto T = lexAll("a // line comment\nb /* block\ncomment */ c");
  ASSERT_EQ(T.size(), 4u);
  EXPECT_EQ(T[0].Text, "a");
  EXPECT_EQ(T[1].Text, "b");
  EXPECT_EQ(T[2].Text, "c");
}

TEST(Lexer, PragmaIgen) {
  auto T = lexAll("#pragma igen reduce y\nfor");
  EXPECT_EQ(T[0].Kind, TokenKind::PragmaIgen);
  EXPECT_EQ(T[0].Text, "reduce y");
  EXPECT_EQ(T[1].Kind, TokenKind::KwFor);
}

TEST(Lexer, PassthroughDirectives) {
  auto T = lexAll("#include <immintrin.h>\n#define N 100\nint");
  EXPECT_EQ(T[0].Kind, TokenKind::PassthroughDirective);
  EXPECT_EQ(T[0].Text, "#include <immintrin.h>");
  EXPECT_EQ(T[1].Kind, TokenKind::PassthroughDirective);
  EXPECT_EQ(T[2].Kind, TokenKind::KwInt);
}

TEST(Lexer, HashMidLineIsNotDirective) {
  DiagnosticsEngine Diags;
  Lexer L("a # b", Diags);
  (void)L.lexAll();
  EXPECT_TRUE(Diags.hasErrors()); // '#' only starts a directive at BOL
}

TEST(Lexer, SourceLocations) {
  auto T = lexAll("a\n  bb\n   c");
  EXPECT_EQ(T[0].Loc.Line, 1u);
  EXPECT_EQ(T[0].Loc.Col, 1u);
  EXPECT_EQ(T[1].Loc.Line, 2u);
  EXPECT_EQ(T[1].Loc.Col, 3u);
  EXPECT_EQ(T[2].Loc.Line, 3u);
  EXPECT_EQ(T[2].Loc.Col, 4u);
}

TEST(Lexer, MemberAccessVsFloat) {
  // "s.f" must lex as identifier, period, identifier -- not a float.
  auto T = lexAll("s.f 1.f");
  EXPECT_EQ(T[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(T[1].Kind, TokenKind::Period);
  EXPECT_EQ(T[2].Kind, TokenKind::Identifier);
  EXPECT_EQ(T[3].Kind, TokenKind::FloatLiteral);
}
