//===- ParserTest.cpp - Parser unit tests -------------------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "frontend/CPrinter.h"
#include "frontend/Parser.h"

#include <gtest/gtest.h>

using namespace igen;

namespace {

struct ParseResult {
  std::unique_ptr<ASTContext> Ctx;
  DiagnosticsEngine Diags;
  bool OK = false;
};

ParseResult parse(std::string_view Src) {
  ParseResult R;
  R.Ctx = std::make_unique<ASTContext>();
  Parser P(Src, *R.Ctx, R.Diags);
  R.OK = P.parseTranslationUnit();
  return R;
}

/// Parse then print; also verifies the printed output reparses to the same
/// print (fixed point).
std::string roundTrip(std::string_view Src) {
  ParseResult R = parse(Src);
  EXPECT_TRUE(R.OK) << R.Diags.render("test");
  CPrinter Printer;
  std::string Once = Printer.print(R.Ctx->TU);
  ParseResult R2 = parse(Once);
  EXPECT_TRUE(R2.OK) << "reparse failed:\n" << Once;
  CPrinter Printer2;
  std::string Twice = Printer2.print(R2.Ctx->TU);
  EXPECT_EQ(Once, Twice) << "printer not a fixed point";
  return Once;
}

} // namespace

TEST(Parser, SimpleFunction) {
  ParseResult R = parse("double foo(double a, double b) {\n"
                        "  double c;\n"
                        "  c = a + b + 0.1;\n"
                        "  return c;\n"
                        "}\n");
  ASSERT_TRUE(R.OK) << R.Diags.render("test");
  FunctionDecl *F = R.Ctx->TU.findFunction("foo");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Params.size(), 2u);
  EXPECT_EQ(F->RetTy->kind(), Type::Kind::Double);
  ASSERT_NE(F->Body, nullptr);
  EXPECT_EQ(F->Body->Body.size(), 3u);
}

TEST(Parser, PrecedenceAndAssociativity) {
  ParseResult R = parse("int f(int a, int b, int c) { return a + b * c; }");
  ASSERT_TRUE(R.OK);
  auto *Ret = cast<ReturnStmt>(
      R.Ctx->TU.findFunction("f")->Body->Body.front());
  auto *Add = dynCast<BinaryExpr>(Ret->Value);
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->O, BinaryExpr::Op::Add);
  auto *Mul = dynCast<BinaryExpr>(Add->RHS);
  ASSERT_NE(Mul, nullptr);
  EXPECT_EQ(Mul->O, BinaryExpr::Op::Mul);
}

TEST(Parser, AssignmentIsRightAssociative) {
  ParseResult R = parse("void f(double a, double b) { a = b = 1.0; }");
  ASSERT_TRUE(R.OK);
  auto *St = cast<ExprStmt>(R.Ctx->TU.findFunction("f")->Body->Body[0]);
  auto *Outer = dynCast<BinaryExpr>(St->E);
  ASSERT_NE(Outer, nullptr);
  EXPECT_EQ(Outer->O, BinaryExpr::Op::Assign);
  EXPECT_NE(dynCast<BinaryExpr>(Outer->RHS), nullptr);
}

TEST(Parser, ToleranceParameterExtension) {
  ParseResult R = parse("double read(double:0.125 a) { return a; }");
  ASSERT_TRUE(R.OK) << R.Diags.render("test");
  VarDecl *P = R.Ctx->TU.findFunction("read")->Params[0];
  EXPECT_TRUE(P->HasTolerance);
  EXPECT_EQ(P->Tolerance, 0.125);
}

TEST(Parser, ToleranceConstantExtension) {
  ParseResult R = parse("double f(void) { double c = 5.0 + 0.25t; "
                        "return c; }");
  ASSERT_TRUE(R.OK);
  auto *DS =
      cast<DeclStmt>(R.Ctx->TU.findFunction("f")->Body->Body.front());
  auto *Add = dynCast<BinaryExpr>(DS->Decls[0]->Init);
  ASSERT_NE(Add, nullptr);
  auto *Tol = dynCast<FloatLiteralExpr>(Add->RHS);
  ASSERT_NE(Tol, nullptr);
  EXPECT_TRUE(Tol->IsTolerance);
}

TEST(Parser, PragmaIgenReduceAttachesToLoop) {
  ParseResult R = parse(
      "void mvm(double *A, double *x, double *y) {\n"
      "  #pragma igen reduce y\n"
      "  for (int i = 0; i < 100; i++)\n"
      "    for (int j = 0; j < 500; j++)\n"
      "      y[i] = y[i] + A[i * 500 + j] * x[j];\n"
      "}\n");
  ASSERT_TRUE(R.OK) << R.Diags.render("test");
  auto *For =
      dynCast<ForStmt>(R.Ctx->TU.findFunction("mvm")->Body->Body.front());
  ASSERT_NE(For, nullptr);
  ASSERT_EQ(For->ReduceVars.size(), 1u);
  EXPECT_EQ(For->ReduceVars[0], "y");
  // The pragma must not leak onto the inner loop.
  auto *Inner = dynCast<ForStmt>(For->Body);
  ASSERT_NE(Inner, nullptr);
  EXPECT_TRUE(Inner->ReduceVars.empty());
}

TEST(Parser, SimdTypesAndIntrinsics) {
  ParseResult R = parse(
      "#include <immintrin.h>\n"
      "void axpy(double *x, double *y) {\n"
      "  __m256d a = _mm256_loadu_pd(x);\n"
      "  __m256d b = _mm256_loadu_pd(y);\n"
      "  _mm256_storeu_pd(y, _mm256_add_pd(a, b));\n"
      "}\n");
  ASSERT_TRUE(R.OK) << R.Diags.render("test");
  EXPECT_EQ(R.Ctx->TU.Items.size(), 2u);
  EXPECT_EQ(R.Ctx->TU.Items[0].Directive, "#include <immintrin.h>");
  auto *DS = cast<DeclStmt>(
      R.Ctx->TU.findFunction("axpy")->Body->Body.front());
  EXPECT_EQ(DS->Decls[0]->Ty->kind(), Type::Kind::M256D);
  EXPECT_NE(dynCast<CallExpr>(DS->Decls[0]->Init), nullptr);
}

TEST(Parser, ArraysAndPointers) {
  ParseResult R = parse("void f(void) {\n"
                        "  double a[4][8];\n"
                        "  double *p = &a[0][0];\n"
                        "  *p = 1.0;\n"
                        "  p[3] = 2.0;\n"
                        "}\n");
  ASSERT_TRUE(R.OK) << R.Diags.render("test");
  auto *DS = cast<DeclStmt>(R.Ctx->TU.findFunction("f")->Body->Body[0]);
  const Type *T = DS->Decls[0]->Ty;
  ASSERT_TRUE(T->isArray());
  EXPECT_EQ(T->arraySize(), 4);
  ASSERT_TRUE(T->element()->isArray());
  EXPECT_EQ(T->element()->arraySize(), 8);
  EXPECT_EQ(T->element()->element()->kind(), Type::Kind::Double);
}

TEST(Parser, CastsAndConditionals) {
  ParseResult R = parse("double f(int n) { return n > 0 ? (double)n : "
                        "-1.0; }");
  ASSERT_TRUE(R.OK) << R.Diags.render("test");
  auto *Ret = cast<ReturnStmt>(R.Ctx->TU.findFunction("f")->Body->Body[0]);
  auto *Cond = dynCast<ConditionalExpr>(Ret->Value);
  ASSERT_NE(Cond, nullptr);
  EXPECT_NE(dynCast<CastExpr>(Cond->Then), nullptr);
}

TEST(Parser, ControlFlowStatements) {
  ParseResult R = parse(
      "int f(int n) {\n"
      "  int s = 0;\n"
      "  while (n > 0) { s += n; n--; }\n"
      "  do { s++; } while (s < 10);\n"
      "  for (;;) { break; }\n"
      "  if (s > 5) return s; else return -s;\n"
      "}\n");
  ASSERT_TRUE(R.OK) << R.Diags.render("test");
}

TEST(Parser, RoundTripFixedPoint) {
  roundTrip("#include <math.h>\n"
            "static double henon(double x, double y, int n) {\n"
            "  double a = 1.05;\n"
            "  double b = 0.3;\n"
            "  for (int i = 0; i < n; i++) {\n"
            "    double xi = x;\n"
            "    x = 1 - a * xi * xi + y;\n"
            "    y = b * xi;\n"
            "  }\n"
            "  return x;\n"
            "}\n");
}

TEST(Parser, RoundTripPreservesPragma) {
  std::string Out = roundTrip(
      "void f(double *y, double *x) {\n"
      "  #pragma igen reduce s\n"
      "  for (int i = 0; i < 4; i++) { x[i] = y[i]; }\n"
      "}\n");
  EXPECT_NE(Out.find("#pragma igen reduce s"), std::string::npos);
}

TEST(Parser, ErrorRecovery) {
  ParseResult R = parse("double f( { return 1.0; }\n"
                        "double g(void) { return 2.0; }\n");
  EXPECT_FALSE(R.OK);
  EXPECT_TRUE(R.Diags.hasErrors());
  // g must still have been parsed despite the error in f.
  EXPECT_NE(R.Ctx->TU.findFunction("g"), nullptr);
}

TEST(Parser, SizeofRejected) {
  ParseResult R =
      parse("int f(void) { return (int)sizeof(double); }");
  EXPECT_FALSE(R.OK);
}

TEST(Parser, UnaryOperators) {
  ParseResult R = parse("double f(double a) { return -a + +a - -(-a); }");
  ASSERT_TRUE(R.OK);
  roundTrip("double f(double a) { return -a + +a - -(-a); }");
}
