//===- ParserRecoveryTest.cpp - Parser error-recovery tests ---------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// The parser recovers at statement boundaries (syncStmt): one malformed
// statement costs one diagnostic, and the rest of the function -- and
// the rest of the translation unit -- still gets parsed and checked.
// These tests pin that behavior: multiple independent errors produce
// multiple independent diagnostics (no cascades), later functions
// survive earlier broken ones, and pathological inputs hit the error
// cap instead of flooding.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include <string>

#include <gtest/gtest.h>

using namespace igen;

namespace {

struct ParseResult {
  std::unique_ptr<ASTContext> Ctx;
  DiagnosticsEngine Diags;
  bool OK = false;
};

ParseResult parse(std::string_view Src) {
  ParseResult R;
  R.Ctx = std::make_unique<ASTContext>();
  Parser P(Src, *R.Ctx, R.Diags);
  R.OK = P.parseTranslationUnit();
  return R;
}

/// Number of error-severity diagnostics (notes/warnings excluded).
unsigned errors(const ParseResult &R) { return R.Diags.errorCount(); }

TEST(ParserRecovery, TwoBrokenStatementsTwoDiagnostics) {
  // Both statements are malformed; each must yield exactly one
  // diagnostic, and the trailing return must still parse.
  ParseResult R = parse("double f(double x) {\n"
                        "  double a = x + ;\n"
                        "  double b = x * ;\n"
                        "  return x;\n"
                        "}\n");
  EXPECT_FALSE(R.OK);
  EXPECT_EQ(errors(R), 2u) << R.Diags.render("test");
}

TEST(ParserRecovery, MissingSemicolonDoesNotCascade) {
  // A missed ';' before 'return' must produce one diagnostic and then
  // sync without consuming the 'return' (the historical cascade bug).
  ParseResult R = parse("double f(double x) {\n"
                        "  double a = x * 2.0\n"
                        "  return a;\n"
                        "}\n");
  EXPECT_FALSE(R.OK);
  EXPECT_EQ(errors(R), 1u) << R.Diags.render("test");
}

TEST(ParserRecovery, LaterFunctionsSurviveEarlierErrors) {
  ParseResult R = parse("double broken(double x) {\n"
                        "  double a = (x;\n"
                        "  return a;\n"
                        "}\n"
                        "double fine(double y) { return y + 1.0; }\n");
  EXPECT_FALSE(R.OK);
  EXPECT_GE(errors(R), 1u);
  // The second function parsed despite the first one's error.
  EXPECT_NE(R.Ctx->TU.findFunction("fine"), nullptr)
      << R.Diags.render("test");
}

TEST(ParserRecovery, ErrorsInDistinctFunctionsAllReported) {
  ParseResult R = parse("double f(double x) { double a = ; return x; }\n"
                        "double g(double y) { double b = ; return y; }\n"
                        "double h(double z) { double c = ; return z; }\n");
  EXPECT_FALSE(R.OK);
  EXPECT_EQ(errors(R), 3u) << R.Diags.render("test");
}

TEST(ParserRecovery, ErrorCapBoundsPathologicalInputs) {
  // Thousands of broken statements: the parser must stop at the cap
  // (one extra "giving up" note-style error) instead of emitting one
  // diagnostic per statement.
  std::string Src = "double f(double x) {\n";
  for (int I = 0; I < 5000; ++I)
    Src += "  double a = ;\n";
  Src += "  return x;\n}\n";
  ParseResult R = parse(Src);
  EXPECT_FALSE(R.OK);
  EXPECT_LE(errors(R), 260u) << "error cap did not bound the flood";
  EXPECT_GE(errors(R), 256u);
}

TEST(ParserRecovery, RecoveryStopsAtCloseBrace) {
  // The sync point must not eat the '}' closing the function body:
  // the next top-level declaration still parses.
  ParseResult R = parse("double f(double x) { double a = + }\n"
                        "int g(int y) { return y; }\n");
  EXPECT_FALSE(R.OK);
  EXPECT_NE(R.Ctx->TU.findFunction("g"), nullptr)
      << R.Diags.render("test");
}

} // namespace
