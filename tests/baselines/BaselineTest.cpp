//===- BaselineTest.cpp - Baseline interval library tests ----------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// The baselines only matter if they are *sound* (otherwise the Fig. 8
// performance comparison would be meaningless): each is checked against
// the igen interval core over randomized inputs for all operations.
//
//===----------------------------------------------------------------------===//

#include "baselines/BaselineIntervals.h"

#include "interval/Interval.h"

#include <random>

#include <gtest/gtest.h>

using namespace igen;

namespace {

template <typename I> class BaselineTest : public ::testing::Test {
protected:
  RoundUpwardScope Up;
  std::mt19937_64 Gen{17};
  double uniform(double Lo, double Hi) {
    return std::uniform_real_distribution<double>(Lo, Hi)(Gen);
  }
  I make(double Lo, double Hi) { return I(Lo, Hi); }
};

using Libs =
    ::testing::Types<BoostLikeInterval, FilibLikeInterval, GaolLikeInterval>;

template <typename I> double loOf(const I &V) { return V.Lo; }
template <typename I> double hiOf(const I &V) { return V.Hi; }
template <> double loOf(const GaolLikeInterval &V) { return V.lo(); }
template <> double hiOf(const GaolLikeInterval &V) { return V.hi(); }

TYPED_TEST_SUITE(BaselineTest, Libs);

} // namespace

TYPED_TEST(BaselineTest, AgreesWithCoreOnArithmetic) {
  for (int Trial = 0; Trial < 20000; ++Trial) {
    double AL = this->uniform(-10, 10), AW = this->uniform(0, 1);
    double BL = this->uniform(-10, 10), BW = this->uniform(0, 1);
    TypeParam A = this->make(AL, AL + AW), B = this->make(BL, BL + BW);
    Interval IA = Interval::fromEndpoints(AL, AL + AW);
    Interval IB = Interval::fromEndpoints(BL, BL + BW);

    TypeParam Sum = A + B;
    Interval ISum = iAdd(IA, IB);
    EXPECT_EQ(loOf(Sum), ISum.lo());
    EXPECT_EQ(hiOf(Sum), ISum.hi());

    TypeParam Dif = A - B;
    Interval IDif = iSub(IA, IB);
    EXPECT_EQ(loOf(Dif), IDif.lo());
    EXPECT_EQ(hiOf(Dif), IDif.hi());

    TypeParam Prod = A * B;
    Interval IProd = iMul(IA, IB);
    EXPECT_EQ(loOf(Prod), IProd.lo()) << AL << " " << BL;
    EXPECT_EQ(hiOf(Prod), IProd.hi()) << AL << " " << BL;

    if (BL > 0.1 || BL + BW < -0.1) {
      TypeParam Quot = A / B;
      Interval IQuot = iDiv(IA, IB);
      EXPECT_EQ(loOf(Quot), IQuot.lo()) << AL << " " << BL;
      EXPECT_EQ(hiOf(Quot), IQuot.hi()) << AL << " " << BL;
    }
  }
}

TYPED_TEST(BaselineTest, DivisionByZeroContainingIsEntire) {
  TypeParam A = this->make(1.0, 2.0);
  TypeParam B = this->make(-1.0, 1.0);
  TypeParam Q = A / B;
  EXPECT_EQ(loOf(Q), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(hiOf(Q), std::numeric_limits<double>::infinity());
}

TYPED_TEST(BaselineTest, SqrtSound) {
  for (int Trial = 0; Trial < 2000; ++Trial) {
    double Lo = this->uniform(0.0, 50.0);
    double Hi = Lo + this->uniform(0.0, 5.0);
    TypeParam S = TypeParam::sqrtI(this->make(Lo, Hi));
    long double RefLo = sqrtl(static_cast<long double>(Lo));
    long double RefHi = sqrtl(static_cast<long double>(Hi));
    EXPECT_LE(static_cast<long double>(loOf(S)), RefLo);
    EXPECT_GE(static_cast<long double>(hiOf(S)), RefHi);
  }
}

TYPED_TEST(BaselineTest, MaxSound) {
  TypeParam A = this->make(-1.0, 2.0);
  TypeParam B = this->make(0.5, 1.0);
  TypeParam M = TypeParam::maxI(A, B);
  EXPECT_EQ(loOf(M), 0.5);
  EXPECT_EQ(hiOf(M), 2.0);
}

TYPED_TEST(BaselineTest, PointProducts) {
  // All nine sign cases at exact points.
  double Vals[] = {-3.0, 0.0, 2.0};
  for (double A : Vals)
    for (double B : Vals) {
      TypeParam X = TypeParam::fromPoint(A);
      TypeParam Y = TypeParam::fromPoint(B);
      TypeParam P = X * Y;
      EXPECT_LE(loOf(P), A * B);
      EXPECT_GE(hiOf(P), A * B);
    }
}
