//===- ServeEnvParseTest.cpp - Serve resilience env-knob parsing ----------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// The resilience knobs — IGEN_SERVE_DEADLINE, IGEN_SERVE_DRAIN_MS, and
// IGEN_SERVE_CACHE_DIR — follow the same contract as the runtime env
// knobs (tests/runtime/EnvParseTest.cpp): bad input falls back to a
// safe default *and says so*, because a typo'd override silently
// ignored is an operator running a different configuration than they
// think.
//
//===----------------------------------------------------------------------===//

#include "server/PersistCache.h"
#include "server/ServerCore.h"
#include "server/SocketServer.h"

#include <gtest/gtest.h>

#include <string>

#include <sys/stat.h>
#include <unistd.h>

using namespace igen::server;

TEST(ServeEnvParse, DeadlineAcceptsPositiveMilliseconds) {
  std::string W;
  EXPECT_EQ(deadlineMsFromSpec("1", &W), 1);
  EXPECT_EQ(deadlineMsFromSpec("2500", &W), 2500);
  EXPECT_TRUE(W.empty());
}

TEST(ServeEnvParse, DeadlineUnsetOrEmptyDisablesSilently) {
  std::string W;
  EXPECT_EQ(deadlineMsFromSpec(nullptr, &W), 0);
  EXPECT_EQ(deadlineMsFromSpec("", &W), 0);
  EXPECT_TRUE(W.empty());
}

TEST(ServeEnvParse, DeadlineWarnsOnMalformedValues) {
  for (const char *Bad : {"abc", "5s", "-100", "0", " 250 ", "1e3"}) {
    std::string W;
    EXPECT_EQ(deadlineMsFromSpec(Bad, &W), 0) << "spec: " << Bad;
    EXPECT_NE(W.find("IGEN_SERVE_DEADLINE"), std::string::npos)
        << "spec: " << Bad;
    EXPECT_NE(W.find(Bad), std::string::npos) << "spec: " << Bad;
  }
}

TEST(ServeEnvParse, DrainAcceptsPositiveMilliseconds) {
  std::string W;
  EXPECT_EQ(drainMsFromSpec("250", &W), 250);
  EXPECT_EQ(drainMsFromSpec("60000", &W), 60000);
  EXPECT_TRUE(W.empty());
}

TEST(ServeEnvParse, DrainUnsetOrEmptyUsesDefaultSilently) {
  std::string W;
  EXPECT_EQ(drainMsFromSpec(nullptr, &W), 5000);
  EXPECT_EQ(drainMsFromSpec("", &W), 5000);
  EXPECT_TRUE(W.empty());
}

TEST(ServeEnvParse, DrainWarnsAndFallsBackOnMalformedValues) {
  for (const char *Bad : {"fast", "-1", "0", "3 0", "2.5"}) {
    std::string W;
    EXPECT_EQ(drainMsFromSpec(Bad, &W), 5000) << "spec: " << Bad;
    EXPECT_NE(W.find("IGEN_SERVE_DRAIN_MS"), std::string::npos)
        << "spec: " << Bad;
    EXPECT_NE(W.find(Bad), std::string::npos) << "spec: " << Bad;
  }
}

TEST(ServeEnvParse, CacheDirUnsetOrEmptyDisablesSilently) {
  std::string W;
  EXPECT_EQ(cacheDirFromSpec(nullptr, &W), "");
  EXPECT_EQ(cacheDirFromSpec("", &W), "");
  EXPECT_TRUE(W.empty());
}

TEST(ServeEnvParse, CacheDirWarnsWhenUnusable) {
  // Parent directory missing: cannot mkdir one level.
  {
    std::string W;
    EXPECT_EQ(cacheDirFromSpec("/tmp/igen_no_such_parent_x/y/z", &W), "");
    EXPECT_NE(W.find("IGEN_SERVE_CACHE_DIR"), std::string::npos);
  }
  // Existing non-directory.
  {
    std::string W;
    EXPECT_EQ(cacheDirFromSpec("/dev/null", &W), "");
    EXPECT_FALSE(W.empty());
  }
}

TEST(ServeEnvParse, CacheDirCreatesOneLevelAndAcceptsExisting) {
  std::string W;
  std::string Dir =
      "/tmp/igen_env_cache_test_" + std::to_string(::getpid());
  EXPECT_EQ(cacheDirFromSpec(Dir.c_str(), &W), Dir);
  EXPECT_TRUE(W.empty());
  struct stat St;
  ASSERT_EQ(stat(Dir.c_str(), &St), 0);
  EXPECT_TRUE(S_ISDIR(St.st_mode));
  // Second resolution of the now-existing directory also succeeds.
  EXPECT_EQ(cacheDirFromSpec(Dir.c_str(), &W), Dir);
  EXPECT_TRUE(W.empty());
  ::rmdir(Dir.c_str());
}
