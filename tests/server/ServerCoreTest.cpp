//===- ServerCoreTest.cpp - Serve protocol dispatch tests ---------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Drives ServerCore::handleFrame directly (no socket): the full protocol
// surface plus the malformed-request robustness battery — every hostile
// frame must come back as exactly one well-formed JSON line with a typed
// error, and the core must keep serving afterwards.
//
//===----------------------------------------------------------------------===//

#include "server/ServerCore.h"

#include "server/Json.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

using namespace igen::server;

namespace {

class ServerCoreTest : public ::testing::Test {
protected:
  ServerCore Core{8};

  JsonValue rpc(const std::string &Frame) {
    std::string Line = Core.handleFrame(Frame);
    EXPECT_EQ(Line.find('\n'), std::string::npos)
        << "response must be one line: " << Line;
    JsonParseResult R = parseJson(Line);
    EXPECT_TRUE(R.Ok) << "response must be valid JSON: " << Line;
    EXPECT_TRUE(R.Value.isObject());
    return R.Value;
  }

  std::string expectError(const std::string &Frame) {
    JsonValue V = rpc(Frame);
    EXPECT_FALSE(V.member("ok")->boolValue()) << Frame;
    const JsonValue *Err = V.member("error");
    EXPECT_TRUE(Err && Err->isObject()) << Frame;
    EXPECT_TRUE(Err->member("code") && Err->member("code")->isString());
    EXPECT_TRUE(Err->member("message"));
    return Err->member("code")->stringValue();
  }

  std::string compileHandle(const std::string &Source,
                            const std::string &ExtraOpts = "") {
    std::string Opts = "{\"opt_level\":0,\"target\":\"ss\"";
    if (!ExtraOpts.empty())
      Opts += "," + ExtraOpts;
    Opts += "}";
    JsonValue V = rpc("{\"op\":\"compile\",\"source\":\"" +
                      jsonEscape(Source) + "\",\"options\":" + Opts + "}");
    EXPECT_TRUE(V.member("ok")->boolValue());
    return V.member("handle")->stringValue();
  }
};

TEST_F(ServerCoreTest, CompileEvalRoundTrip) {
  std::string H = compileHandle("double f(double x) { return x + 1.0; }");
  ASSERT_EQ(H.size(), 16u);
  JsonValue V = rpc("{\"op\":\"eval\",\"handle\":\"" + H +
                    "\",\"function\":\"f\",\"args\":[2.0],\"id\":\"r1\"}");
  ASSERT_TRUE(V.member("ok")->boolValue());
  EXPECT_EQ(V.member("id")->stringValue(), "r1");
  const JsonValue *Res = V.member("result");
  ASSERT_TRUE(Res);
  EXPECT_EQ(Res->member("kind")->stringValue(), "interval");
  EXPECT_DOUBLE_EQ(Res->member("lo")->numberValue(), 3.0);
  EXPECT_DOUBLE_EQ(Res->member("hi")->numberValue(), 3.0);
  EXPECT_EQ(Res->member("lo_hex")->stringValue(), "4008000000000000");
  EXPECT_TRUE(V.member("aot_exact")->boolValue());
  EXPECT_FALSE(V.member("poisoned")->boolValue());
}

TEST_F(ServerCoreTest, SecondCompileHitsCache) {
  const char *Src = "double g(double x) { return x * x; }";
  std::string Frame = std::string("{\"op\":\"compile\",\"source\":\"") +
                      jsonEscape(Src) +
                      "\",\"options\":{\"opt_level\":0,\"target\":\"ss\"}}";
  JsonValue A = rpc(Frame);
  EXPECT_FALSE(A.member("cached")->boolValue());
  JsonValue B = rpc(Frame);
  EXPECT_TRUE(B.member("cached")->boolValue());
  EXPECT_EQ(A.member("handle")->stringValue(),
            B.member("handle")->stringValue());

  // Different options -> different handle, no false sharing.
  JsonValue C = rpc(std::string("{\"op\":\"compile\",\"source\":\"") +
                    jsonEscape(Src) +
                    "\",\"options\":{\"opt_level\":1,\"target\":\"ss\"}}");
  EXPECT_FALSE(C.member("cached")->boolValue());
  EXPECT_NE(A.member("handle")->stringValue(),
            C.member("handle")->stringValue());
}

TEST_F(ServerCoreTest, CompileFailureIsTypedWithDiagnosticsAndRollsBack) {
  JsonValue V = rpc("{\"op\":\"compile\",\"source\":\"double f(double x) "
                    "{ return nope; }\"}");
  EXPECT_FALSE(V.member("ok")->boolValue());
  const JsonValue *Err = V.member("error");
  ASSERT_TRUE(Err);
  EXPECT_EQ(Err->member("code")->stringValue(), "sema-error");
  EXPECT_EQ(Err->member("stage")->stringValue(), "sema");
  const JsonValue *Diags = Err->member("diagnostics");
  ASSERT_TRUE(Diags && Diags->isArray());
  EXPECT_GE(Diags->arrayValue().size(), 1u);

  // Nothing entered the cache; stats prove the rollback.
  CacheStats S = Core.cache().stats();
  EXPECT_EQ(S.Insertions, 0u);
  EXPECT_EQ(S.Resident, 0u);

  // The daemon still serves.
  std::string H = compileHandle("double f(double x) { return x; }");
  EXPECT_EQ(H.size(), 16u);
}

TEST_F(ServerCoreTest, ParseErrorStage) {
  JsonValue V = rpc("{\"op\":\"compile\",\"source\":\"double f( {\"}");
  EXPECT_FALSE(V.member("ok")->boolValue());
  EXPECT_EQ(V.member("error")->member("code")->stringValue(),
            "parse-error");
}

TEST_F(ServerCoreTest, EvalArgumentForms) {
  std::string H =
      compileHandle("double f(double x, int n, double *a) {\n"
                    "  double s = x;\n"
                    "  for (int i = 0; i < n; ++i) s = s + a[i];\n"
                    "  return s;\n"
                    "}");
  JsonValue V = rpc(
      "{\"op\":\"eval\",\"handle\":\"" + H +
      "\",\"function\":\"f\",\"args\":[{\"lo\":1.0,\"hi\":2.0},"
      "{\"int\":2},{\"array\":[0.5,{\"hex\":\"3ff0000000000000\"}]}]}");
  ASSERT_TRUE(V.member("ok")->boolValue())
      << Core.handleFrame("{\"op\":\"stats\"}");
  EXPECT_DOUBLE_EQ(V.member("result")->member("lo")->numberValue(), 2.5);
  EXPECT_DOUBLE_EQ(V.member("result")->member("hi")->numberValue(), 3.5);
  // Array post-state ships back, in argument order.
  const JsonValue *Arrays = V.member("arrays");
  ASSERT_TRUE(Arrays && Arrays->isArray());
  ASSERT_EQ(Arrays->arrayValue().size(), 1u);
  EXPECT_EQ(Arrays->arrayValue()[0].arrayValue().size(), 2u);
}

TEST_F(ServerCoreTest, EvalUnknownHandleAndBadHandle) {
  EXPECT_EQ(expectError("{\"op\":\"eval\",\"handle\":"
                        "\"0000000000000000\",\"function\":\"f\"}"),
            "no-such-handle");
  EXPECT_EQ(expectError("{\"op\":\"eval\",\"handle\":\"xyz\","
                        "\"function\":\"f\"}"),
            "bad-request");
}

TEST_F(ServerCoreTest, EvalErrorsAreTypedAndDoNotPoisonTheCore) {
  std::string H = compileHandle("double f(double *a, int n) "
                                "{ return a[n]; }");
  EXPECT_EQ(expectError("{\"op\":\"eval\",\"handle\":\"" + H +
                        "\",\"function\":\"f\",\"args\":"
                        "[{\"array\":[1.0]},{\"int\":99}]}"),
            "out-of-bounds");
  // Still serving, same handle still resident.
  JsonValue V = rpc("{\"op\":\"eval\",\"handle\":\"" + H +
                    "\",\"function\":\"f\",\"args\":"
                    "[{\"array\":[1.0,2.0]},{\"int\":1}]}");
  EXPECT_TRUE(V.member("ok")->boolValue());
}

TEST_F(ServerCoreTest, PerRequestOptionOverrides) {
  std::string H = compileHandle("double f(double x) {\n"
                                "  double r = 0.0;\n"
                                "  if (x > 0.0) r = 1.0; else r = -1.0;\n"
                                "  return r;\n"
                                "}");
  // Default (exception policy): unknown branch is a typed error.
  EXPECT_EQ(expectError("{\"op\":\"eval\",\"handle\":\"" + H +
                        "\",\"function\":\"f\",\"args\":"
                        "[{\"lo\":-1.0,\"hi\":1.0}]}"),
            "unknown-branch");
  // Per-request join override succeeds -- on the same cached program,
  // with no global state involved.
  JsonValue V = rpc("{\"op\":\"eval\",\"handle\":\"" + H +
                    "\",\"function\":\"f\",\"args\":"
                    "[{\"lo\":-1.0,\"hi\":1.0}],"
                    "\"options\":{\"branch\":\"join\"}}");
  ASSERT_TRUE(V.member("ok")->boolValue());
  EXPECT_DOUBLE_EQ(V.member("result")->member("lo")->numberValue(), -1.0);
  EXPECT_DOUBLE_EQ(V.member("result")->member("hi")->numberValue(), 1.0);
}

TEST_F(ServerCoreTest, AbortFenvPolicyIsRejected) {
  std::string H = compileHandle("double f(double x) { return x; }");
  EXPECT_EQ(expectError("{\"op\":\"eval\",\"handle\":\"" + H +
                        "\",\"function\":\"f\",\"args\":[1.0],"
                        "\"options\":{\"fenv_policy\":\"abort\"}}"),
            "bad-option");
}

TEST_F(ServerCoreTest, StepLimitOverride) {
  std::string H = compileHandle("double f(double x) {\n"
                                "  while (x < 1.0e300) x = x + 0.0;\n"
                                "  return x;\n"
                                "}");
  EXPECT_EQ(expectError("{\"op\":\"eval\",\"handle\":\"" + H +
                        "\",\"function\":\"f\",\"args\":[0.0],"
                        "\"options\":{\"step_limit\":5000}}"),
            "step-limit");
}

TEST_F(ServerCoreTest, StatsSchema) {
  compileHandle("double f(double x) { return x; }");
  JsonValue V = rpc("{\"op\":\"stats\"}");
  ASSERT_TRUE(V.member("ok")->boolValue());
  const JsonValue *S = V.member("stats");
  ASSERT_TRUE(S);
  EXPECT_DOUBLE_EQ(S->member("schema_version")->numberValue(), 2.0);
  EXPECT_EQ(S->member("report")->stringValue(), "igen_serve_stats");
  const JsonValue *Cache = S->member("cache");
  ASSERT_TRUE(Cache);
  EXPECT_DOUBLE_EQ(Cache->member("insertions")->numberValue(), 1.0);
  const JsonValue *Reqs = S->member("requests");
  ASSERT_TRUE(Reqs);
  EXPECT_DOUBLE_EQ(Reqs->member("compile")->member("count")->numberValue(),
                   1.0);
  ASSERT_TRUE(Reqs->member("health")); // v2 endpoint present from birth
  const JsonValue *Lat = S->member("latency_us");
  ASSERT_TRUE(Lat && Lat->member("compile"));
  const JsonValue *Buckets =
      Lat->member("compile")->member("log2_buckets");
  ASSERT_TRUE(Buckets && Buckets->isArray());
  EXPECT_EQ(Buckets->arrayValue().size(), 32u);
  double Sum = 0;
  for (const JsonValue &B : Buckets->arrayValue())
    Sum += B.numberValue();
  EXPECT_DOUBLE_EQ(Sum, 1.0); // one compile -> one bucket hit
  ASSERT_TRUE(S->member("evals"));
  ASSERT_TRUE(S->member("fenv"));
  // v2: resilience block, fresh core -> serving with zeroed counters.
  const JsonValue *Res = S->member("resilience");
  ASSERT_TRUE(Res && Res->isObject());
  EXPECT_EQ(Res->member("state")->stringValue(), "serving");
  // The stats request itself holds a heartbeat slot while rendering.
  EXPECT_GE(Res->member("in_flight")->numberValue(), 1.0);
  ASSERT_TRUE(Res->member("slowest_in_flight_us"));
  EXPECT_DOUBLE_EQ(Res->member("deadline_exceeded")->numberValue(), 0.0);
  EXPECT_DOUBLE_EQ(Res->member("retried")->numberValue(), 0.0);
  EXPECT_DOUBLE_EQ(Res->member("drained")->numberValue(), 0.0);
  EXPECT_DOUBLE_EQ(Res->member("cache_replayed")->numberValue(), 0.0);
}

TEST_F(ServerCoreTest, EvictByHandleAndAll) {
  std::string H1 = compileHandle("double f(double x) { return x; }");
  std::string H2 = compileHandle("double g(double x) { return x; }");
  JsonValue V = rpc("{\"op\":\"evict\",\"handle\":\"" + H1 + "\"}");
  EXPECT_DOUBLE_EQ(V.member("evicted")->numberValue(), 1.0);
  EXPECT_EQ(expectError("{\"op\":\"eval\",\"handle\":\"" + H1 +
                        "\",\"function\":\"f\",\"args\":[1.0]}"),
            "no-such-handle");
  JsonValue V2 = rpc("{\"op\":\"evict\",\"all\":true}");
  EXPECT_DOUBLE_EQ(V2.member("evicted")->numberValue(), 1.0);
  (void)H2;
}

TEST_F(ServerCoreTest, LruCapAcrossProtocol) {
  // Capacity 8 (fixture): the 9th distinct program evicts the first.
  std::string First = compileHandle("double k0(double x) { return x; }");
  for (int I = 1; I <= 8; ++I)
    compileHandle("double k" + std::to_string(I) +
                  "(double x) { return x; }");
  EXPECT_EQ(expectError("{\"op\":\"eval\",\"handle\":\"" + First +
                        "\",\"function\":\"k0\",\"args\":[1.0]}"),
            "no-such-handle");
  EXPECT_GE(Core.cache().stats().Evictions, 1u);
}

TEST_F(ServerCoreTest, ShutdownOp) {
  EXPECT_FALSE(Core.shutdownRequested());
  JsonValue V = rpc("{\"op\":\"shutdown\",\"id\":7}");
  EXPECT_TRUE(V.member("ok")->boolValue());
  EXPECT_DOUBLE_EQ(V.member("id")->numberValue(), 7.0);
  EXPECT_TRUE(Core.shutdownRequested());
}

//===----------------------------------------------------------------------===//
// Resilience: deadlines, drain, health, retry accounting, request log
//===----------------------------------------------------------------------===//

TEST_F(ServerCoreTest, DeadlineExceededOnRunawayEval) {
  std::string H = compileHandle("double f(double x) {\n"
                                "  while (x < 1.0e300) x = x + 1.0e-6;\n"
                                "  return x;\n"
                                "}");
  // A step limit far beyond what 50ms of interpretation can execute:
  // only the wall-clock deadline can stop this request.
  EXPECT_EQ(expectError("{\"op\":\"eval\",\"handle\":\"" + H +
                        "\",\"function\":\"f\",\"args\":[0.0],"
                        "\"deadline_ms\":50,"
                        "\"options\":{\"step_limit\":4000000000}}"),
            "deadline-exceeded");
  JsonValue St = rpc("{\"op\":\"stats\"}");
  EXPECT_GE(St.member("stats")
                ->member("resilience")
                ->member("deadline_exceeded")
                ->numberValue(),
            1.0);
  // The worker survived: the same handle still evaluates. 2.0e300 sits
  // strictly above the outward-rounded interval of the 1.0e300 source
  // literal, so the loop condition is decidably false on entry.
  JsonValue V = rpc("{\"op\":\"eval\",\"handle\":\"" + H +
                    "\",\"function\":\"f\",\"args\":[2.0e300]}");
  EXPECT_TRUE(V.member("ok")->boolValue()) << Core.handleFrame(
      "{\"op\":\"eval\",\"handle\":\"" + H +
      "\",\"function\":\"f\",\"args\":[2.0e300]}");
}

TEST_F(ServerCoreTest, DeadlineCountsQueueTime) {
  // Deadlines are measured from frame *arrival*; a request that sat in
  // the admission queue past its budget is rejected before any work.
  std::string H = compileHandle("double f(double x) { return x; }");
  auto Stale =
      std::chrono::steady_clock::now() - std::chrono::seconds(10);
  std::string EvalLine =
      Core.handleFrame("{\"op\":\"eval\",\"handle\":\"" + H +
                           "\",\"function\":\"f\",\"args\":[1.0],"
                           "\"deadline_ms\":100}",
                       Stale);
  EXPECT_NE(EvalLine.find("deadline-exceeded"), std::string::npos)
      << EvalLine;
  std::string CompileLine = Core.handleFrame(
      "{\"op\":\"compile\",\"deadline_ms\":100,\"source\":\"double "
      "q(double x) { return x; }\"}",
      Stale);
  EXPECT_NE(CompileLine.find("deadline-exceeded"), std::string::npos)
      << CompileLine;
  // A cache hit is still served even past the deadline: answering from
  // the LRU is cheaper than rendering the error. Options must match the
  // original compile exactly — they are part of the cache hash.
  std::string HitLine = Core.handleFrame(
      "{\"op\":\"compile\",\"deadline_ms\":100,\"source\":\"double "
      "f(double x) { return x; }\","
      "\"options\":{\"opt_level\":0,\"target\":\"ss\"}}",
      Stale);
  JsonParseResult Hit = parseJson(HitLine);
  ASSERT_TRUE(Hit.Ok) << HitLine;
  EXPECT_TRUE(Hit.Value.member("ok")->boolValue()) << HitLine;
  ASSERT_TRUE(Hit.Value.member("cached")) << HitLine;
  EXPECT_TRUE(Hit.Value.member("cached")->boolValue()) << HitLine;
}

TEST_F(ServerCoreTest, BadDeadlineFieldIsTyped) {
  EXPECT_EQ(expectError("{\"op\":\"stats\",\"deadline_ms\":-5}"),
            "bad-request");
  EXPECT_EQ(expectError("{\"op\":\"stats\",\"deadline_ms\":\"soon\"}"),
            "bad-request");
}

TEST_F(ServerCoreTest, DrainGatesMutatingOpsButNotObservation) {
  std::string H = compileHandle("double f(double x) { return x; }");
  EXPECT_FALSE(Core.draining());
  Core.beginDrain();
  Core.beginDrain(); // idempotent
  EXPECT_TRUE(Core.draining());
  EXPECT_EQ(expectError("{\"op\":\"compile\",\"source\":\"double "
                        "g(double x) { return x; }\"}"),
            "shutting-down");
  EXPECT_EQ(expectError("{\"op\":\"eval\",\"handle\":\"" + H +
                        "\",\"function\":\"f\",\"args\":[1.0]}"),
            "shutting-down");
  EXPECT_EQ(expectError("{\"op\":\"evict\",\"all\":true}"),
            "shutting-down");
  // Observation and the final shutdown still work.
  JsonValue St = rpc("{\"op\":\"stats\"}");
  ASSERT_TRUE(St.member("ok")->boolValue());
  const JsonValue *Res = St.member("stats")->member("resilience");
  EXPECT_EQ(Res->member("state")->stringValue(), "draining");
  EXPECT_GE(Res->member("drained")->numberValue(), 3.0);
  JsonValue He = rpc("{\"op\":\"health\"}");
  ASSERT_TRUE(He.member("ok")->boolValue());
  EXPECT_EQ(He.member("state")->stringValue(), "draining");
  JsonValue Sh = rpc("{\"op\":\"shutdown\"}");
  EXPECT_TRUE(Sh.member("ok")->boolValue());
  EXPECT_TRUE(Core.shutdownRequested());
}

TEST_F(ServerCoreTest, HealthReportsStateAndInFlight) {
  JsonValue V = rpc("{\"op\":\"health\",\"id\":\"h1\"}");
  ASSERT_TRUE(V.member("ok")->boolValue());
  EXPECT_EQ(V.member("id")->stringValue(), "h1");
  EXPECT_EQ(V.member("state")->stringValue(), "serving");
  // The probe itself holds a heartbeat slot while it renders.
  EXPECT_GE(V.member("in_flight")->numberValue(), 1.0);
  ASSERT_TRUE(V.member("slowest_in_flight_us"));
  ASSERT_TRUE(V.member("uptime_us"));
  // Idle again once the probe returned.
  ServerCore::InFlightSnapshot S = Core.inFlight();
  EXPECT_EQ(S.Count, 0u);
  EXPECT_EQ(S.SlowestUs, 0u);
}

TEST_F(ServerCoreTest, RetryTagIsCountedNotSemantic) {
  const char *Src = "double f(double x) { return x; }";
  std::string Frame = std::string("{\"op\":\"compile\",\"retry\":1,"
                                  "\"source\":\"") +
                      jsonEscape(Src) + "\"}";
  JsonValue A = rpc(Frame);
  EXPECT_TRUE(A.member("ok")->boolValue());
  JsonValue B = rpc(Frame);
  EXPECT_TRUE(B.member("ok")->boolValue());
  EXPECT_TRUE(B.member("cached")->boolValue()); // handled identically
  JsonValue St = rpc("{\"op\":\"stats\"}");
  EXPECT_DOUBLE_EQ(St.member("stats")
                       ->member("resilience")
                       ->member("retried")
                       ->numberValue(),
                   2.0);
}

TEST(ServerCoreLogTest, RequestLogLinesAreSchemaValidJson) {
  char Tmpl[] = "/tmp/igen_serve_log_XXXXXX";
  int Fd = mkstemp(Tmpl);
  ASSERT_GE(Fd, 0);
  ::close(Fd);
  ServerCoreConfig Cfg;
  Cfg.CacheCapacity = 4;
  Cfg.LogPath = Tmpl;
  {
    ServerCore Core(Cfg);
    Core.handleFrame("{\"op\":\"compile\",\"source\":\"double f(double "
                     "x) { return x; }\"}");
    Core.handleFrame("{\"op\":\"stats\"}");
    Core.handleFrame("not json");
    Core.beginDrain();
    Core.handleFrame("{\"op\":\"compile\",\"source\":\"double g(double "
                     "x) { return x; }\"}");
  }
  std::ifstream In(Tmpl);
  ASSERT_TRUE(In.good());
  std::string Line;
  std::vector<std::string> Outcomes;
  size_t Events = 0;
  bool SawCompileHash = false;
  while (std::getline(In, Line)) {
    JsonParseResult R = parseJson(Line);
    ASSERT_TRUE(R.Ok) << "log line must be valid JSON: " << Line;
    ASSERT_TRUE(R.Value.isObject());
    ASSERT_TRUE(R.Value.member("ts_us")) << Line;
    const JsonValue *Kind = R.Value.member("kind");
    ASSERT_TRUE(Kind && Kind->isString()) << Line;
    if (Kind->stringValue() == "request") {
      ASSERT_TRUE(R.Value.member("verb")) << Line;
      ASSERT_TRUE(R.Value.member("latency_us")) << Line;
      ASSERT_TRUE(R.Value.member("outcome")) << Line;
      Outcomes.push_back(R.Value.member("outcome")->stringValue());
      const JsonValue *Hash = R.Value.member("hash");
      if (R.Value.member("verb")->stringValue() == "compile" && Hash &&
          Hash->stringValue().size() == 16)
        SawCompileHash = true;
    } else {
      EXPECT_EQ(Kind->stringValue(), "event") << Line;
      ASSERT_TRUE(R.Value.member("event")) << Line;
      ++Events;
    }
  }
  ASSERT_EQ(Outcomes.size(), 4u);
  EXPECT_EQ(Outcomes[0], "ok");
  EXPECT_EQ(Outcomes[1], "ok");
  EXPECT_EQ(Outcomes[2], "bad-json");
  EXPECT_EQ(Outcomes[3], "shutting-down");
  EXPECT_GE(Events, 1u); // at least drain_begin
  EXPECT_TRUE(SawCompileHash);
  std::remove(Tmpl);
}

//===----------------------------------------------------------------------===//
// Malformed-request robustness (satellite: garbage in, typed error out,
// keep serving)
//===----------------------------------------------------------------------===//

TEST_F(ServerCoreTest, MalformedFramesAllGetTypedErrors) {
  const char *Hostile[] = {
      "",
      "   ",
      "{",
      "}",
      "[]",
      "42",
      "\"just a string\"",
      "null",
      "{\"op\":\"compile\"}",                  // missing source
      "{\"op\":\"eval\"}",                     // missing handle
      "{\"op\":\"frobnicate\"}",               // unknown op
      "{\"op\":42}",                           // op wrong type
      "{\"source\":\"double f;\"}",            // missing op
      "{\"op\":\"compile\",\"source\":17}",    // source wrong type
      "{\"op\":\"compile\",\"source\":\"\",\"options\":[]}",
      "{\"op\":\"compile\",\"source\":\"\",\"options\":"
      "{\"precision\":\"f128\"}}",
      "{\"op\":\"eval\",\"handle\":\"0123456789abcdef\","
      "\"function\":\"f\",\"args\":\"not an array\"}",
      "{\"op\":\"eval\",\"handle\":\"0123456789abcdef\","
      "\"function\":\"f\",\"id\":{}}",         // id wrong type
      "{\"op\":\"compile\",\"source\":\"x\"",  // truncated JSON
      "{\"op\":\"compile\",\"source\":\"x\"}}",// trailing garbage
      "{\"op\" \"compile\"}",
      "\x01\x02\xff garbage bytes",
  };
  for (const char *Frame : Hostile) {
    std::string Code = expectError(Frame);
    EXPECT_FALSE(Code.empty()) << Frame;
    EXPECT_NE(Code, "internal-error") << Frame;
  }
  // After the whole battery the core still compiles and evaluates.
  std::string H = compileHandle("double f(double x) { return 2.0 * x; }");
  JsonValue V = rpc("{\"op\":\"eval\",\"handle\":\"" + H +
                    "\",\"function\":\"f\",\"args\":[4.0]}");
  ASSERT_TRUE(V.member("ok")->boolValue());
  EXPECT_DOUBLE_EQ(V.member("result")->member("lo")->numberValue(), 8.0);
}

TEST_F(ServerCoreTest, OversizedFrameIsTyped) {
  std::string Big = "{\"op\":\"compile\",\"source\":\"";
  Big += std::string(maxFrameBytes() + 100, 'x');
  Big += "\"}";
  EXPECT_EQ(expectError(Big), "frame-too-large");
}

TEST_F(ServerCoreTest, DeeplyNestedFrameIsBoundedNotCrashed) {
  std::string Deep = "{\"op\":\"compile\",\"source\":";
  for (int I = 0; I < 500; ++I)
    Deep += "[";
  for (int I = 0; I < 500; ++I)
    Deep += "]";
  Deep += "}";
  EXPECT_EQ(expectError(Deep), "bad-json");
}

TEST_F(ServerCoreTest, ErrorsCountInEndpointStats) {
  expectError("{\"op\":\"nope\"}");
  expectError("not json at all");
  JsonValue V = rpc("{\"op\":\"stats\"}");
  const JsonValue *Inv =
      V.member("stats")->member("requests")->member("invalid");
  ASSERT_TRUE(Inv);
  EXPECT_GE(Inv->member("count")->numberValue(), 2.0);
  EXPECT_GE(Inv->member("errors")->numberValue(), 2.0);
}

} // namespace
