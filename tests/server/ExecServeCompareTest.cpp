//===- ExecServeCompareTest.cpp - Daemon eval vs AOT bit-identity -------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// The dual-path soundness test: every kernel from the Table V suite is
// (a) compiled ahead-of-time by the igen driver at build time (-O0
// --target=ss, linked into this binary) and (b) compiled in memory and
// run through the serve-mode AST-walking evaluator. For every sampled
// input the two paths must agree BIT-IDENTICALLY on both interval
// endpoints — the daemon's answers are the compiler's answers, not an
// approximation of them.
//
//===----------------------------------------------------------------------===//

#include "interval/igen_lib.h"
#include "server/Evaluator.h"
#include "support/StringExtras.h"
#include "transform/Pipeline.h"

#include <cstring>
#include <random>

#include <gtest/gtest.h>

// AOT entry points from the build-time-generated TUs (scalar interval
// library, so f64i is igen::Interval itself).
f64i poly(f64i x);
f64i henon(f64i x, f64i y, int n);
f64i dot(f64i *a, f64i *b, int n);
void axpy(f64i alpha, f64i *x, f64i *y, int n);
f64i absdiff(f64i a, f64i b);
f64i sensor_scale(double a);
f64i ratio(f64i a, f64i b);
f64i grow_until(f64i x, f64i limit);
f64i chain_assign(f64i a);
f64i pyth(f64i x);
f64i softplusish(f64i x);
f64i hypot2(f64i a, f64i b);
f64i jbranch(f64i a, f64i b);
f64i jclamp(f64i x);

namespace {

using namespace igen;
using namespace igen::server;

bool sameBits(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

::testing::AssertionResult bitIdentical(const Interval &Aot,
                                        const Interval &Served) {
  if (sameBits(Aot.NegLo, Served.NegLo) && sameBits(Aot.Hi, Served.Hi))
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "AOT [" << Aot.lo() << ", " << Aot.hi() << "] vs served ["
         << Served.lo() << ", " << Served.hi() << "]";
}

std::shared_ptr<const InMemoryProgram> compileInput(const char *File,
                                                    bool Reductions,
                                                    bool Join) {
  std::string Source;
  EXPECT_TRUE(readFile(std::string(IGEN_INPUTS_DIR) + "/" + File, Source));
  DiagnosticsEngine Diags;
  TransformOptions Opts;
  Opts.OptLevel = 0;
  Opts.ScalarLibrary = true;
  Opts.EnableReductions = Reductions;
  if (Join)
    Opts.Branches = TransformOptions::BranchPolicy::Join;
  auto P = compileToProgram(Source, Opts, Diags);
  EXPECT_TRUE(P) << Diags.render(File);
  return std::shared_ptr<const InMemoryProgram>(std::move(P));
}

class ServeCompare : public ::testing::Test {
protected:
  static std::shared_ptr<const InMemoryProgram> Kernels, Trig, Join;

  static void SetUpTestSuite() {
    Kernels = compileInput("kernels.c", /*Reductions=*/true, /*Join=*/false);
    Trig = compileInput("trig.c", false, false);
    Join = compileInput("joink.c", false, /*Join=*/true);
  }
  static void TearDownTestSuite() {
    Kernels.reset();
    Trig.reset();
    Join.reset();
  }

  RoundUpwardScope Up;
  std::mt19937_64 Gen{2024};
  double uniform(double Lo, double Hi) {
    return std::uniform_real_distribution<double>(Lo, Hi)(Gen);
  }

  EvalArg scalarArg(const Interval &I) {
    EvalArg A;
    A.K = EvalArg::Kind::Scalar;
    A.Scalar = I;
    return A;
  }
  EvalArg intArg(long long V) {
    EvalArg A;
    A.K = EvalArg::Kind::Int;
    A.IntValue = V;
    return A;
  }

  Interval served(const InMemoryProgram &P, const std::string &Fn,
                  std::vector<EvalArg> Args) {
    EvalOptions EO;
    EO.JoinBranches =
        P.Opts.Branches == TransformOptions::BranchPolicy::Join;
    EO.EnableReductions = P.Opts.EnableReductions;
    EvalResult R = evalFunction(P, Fn, Args, EO);
    EXPECT_TRUE(R.Ok) << Fn << ": " << R.Error.Code << ": "
                      << R.Error.Message;
    EXPECT_TRUE(R.HasReturn) << Fn;
    return R.Return;
  }
};

std::shared_ptr<const InMemoryProgram> ServeCompare::Kernels;
std::shared_ptr<const InMemoryProgram> ServeCompare::Trig;
std::shared_ptr<const InMemoryProgram> ServeCompare::Join;

TEST_F(ServeCompare, PolyBitIdentical) {
  for (int I = 0; I < 500; ++I) {
    Interval X = Interval::fromPoint(uniform(-50.0, 50.0));
    EXPECT_TRUE(bitIdentical(::poly(X), served(*Kernels, "poly",
                                             {scalarArg(X)})));
  }
  // Wide inputs too: the evaluator must track interval (not point)
  // semantics through every operation.
  for (int I = 0; I < 200; ++I) {
    double Lo = uniform(-10.0, 10.0);
    Interval X = Interval::fromEndpoints(Lo, Lo + uniform(0.0, 5.0));
    EXPECT_TRUE(bitIdentical(::poly(X), served(*Kernels, "poly",
                                             {scalarArg(X)})));
  }
}

TEST_F(ServeCompare, HenonLoopBitIdentical) {
  for (int N : {0, 1, 3, 10, 37}) {
    Interval X = Interval::fromPoint(uniform(-0.5, 0.5));
    Interval Y = Interval::fromPoint(uniform(-0.5, 0.5));
    EXPECT_TRUE(bitIdentical(
        ::henon(X, Y, N),
        served(*Kernels, "henon",
               {scalarArg(X), scalarArg(Y), intArg(N)})))
        << N;
  }
}

TEST_F(ServeCompare, DotReductionBitIdentical) {
  for (int N : {1, 7, 100, 1000}) {
    std::vector<f64i> A(N), B(N);
    std::vector<Interval> EA(N), EB(N);
    for (int I = 0; I < N; ++I) {
      double X = uniform(-1.0, 1.0), Y = uniform(-1.0, 1.0);
      A[I] = f64i::fromPoint(X);
      B[I] = f64i::fromPoint(Y);
      EA[I] = A[I];
      EB[I] = B[I];
    }
    Interval Aot = ::dot(A.data(), B.data(), N);
    EvalArg ArgA, ArgB;
    ArgA.K = EvalArg::Kind::Array;
    ArgA.Elements = EA;
    ArgB.K = EvalArg::Kind::Array;
    ArgB.Elements = EB;
    EXPECT_TRUE(bitIdentical(
        Aot, served(*Kernels, "dot", {ArgA, ArgB, intArg(N)})))
        << N;
  }
}

TEST_F(ServeCompare, AxpyArrayOutputsBitIdentical) {
  const int N = 64;
  Interval Alpha = Interval::fromPoint(uniform(-2.0, 2.0));
  std::vector<f64i> X(N), Y(N);
  std::vector<Interval> EX(N), EY(N);
  for (int I = 0; I < N; ++I) {
    X[I] = f64i::fromPoint(uniform(-1.0, 1.0));
    Y[I] = f64i::fromPoint(uniform(-1.0, 1.0));
    EX[I] = X[I];
    EY[I] = Y[I];
  }
  ::axpy(Alpha, X.data(), Y.data(), N);

  EvalArg ArgX, ArgY;
  ArgX.K = EvalArg::Kind::Array;
  ArgX.Elements = EX;
  ArgY.K = EvalArg::Kind::Array;
  ArgY.Elements = EY;
  EvalOptions EO;
  EO.EnableReductions = true;
  EvalResult R = evalFunction(*Kernels, "axpy",
                              {scalarArg(Alpha), ArgX, ArgY, intArg(N)},
                              EO);
  ASSERT_TRUE(R.Ok) << R.Error.Message;
  ASSERT_EQ(R.ArrayOutputs.size(), 2u);
  ASSERT_EQ(R.ArrayOutputs[1].size(), (size_t)N);
  for (int I = 0; I < N; ++I)
    EXPECT_TRUE(bitIdentical(Y[I], R.ArrayOutputs[1][I])) << I;
}

TEST_F(ServeCompare, AbsdiffAndChainAssignBitIdentical) {
  for (int I = 0; I < 300; ++I) {
    // absdiff branches on a < b; keep the comparison decided (both
    // paths abort on Unknown under the exception policy), alternating
    // which branch wins.
    Interval A = Interval::fromPoint(uniform(-5.0, 0.0));
    Interval B = Interval::fromPoint(uniform(1.0, 5.0));
    if (I % 2)
      std::swap(A, B);
    EXPECT_TRUE(bitIdentical(
        absdiff(A, B),
        served(*Kernels, "absdiff", {scalarArg(A), scalarArg(B)})));
    EXPECT_TRUE(bitIdentical(::chain_assign(A),
                             served(*Kernels, "chain_assign",
                                    {scalarArg(A)})));
  }
}

TEST_F(ServeCompare, SensorScaleToleranceBitIdentical) {
  for (int I = 0; I < 200; ++I) {
    double A = uniform(-100.0, 100.0);
    EvalArg T;
    T.K = EvalArg::Kind::Tolerance;
    T.Point = A;
    EXPECT_TRUE(bitIdentical(::sensor_scale(A),
                             served(*Kernels, "sensor_scale", {T})))
        << A;
  }
}

TEST_F(ServeCompare, RatioIncludingDivByStraddlingZero) {
  for (int I = 0; I < 300; ++I) {
    Interval A = Interval::fromPoint(uniform(-10.0, 10.0));
    Interval B = I % 5 == 0
                     ? Interval::fromEndpoints(-1.0, 1.0) // straddles 0
                     : Interval::fromPoint(uniform(0.5, 10.0));
    EXPECT_TRUE(bitIdentical(
        ::ratio(A, B), served(*Kernels, "ratio",
                            {scalarArg(A), scalarArg(B)})));
  }
}

TEST_F(ServeCompare, GrowUntilWhileLoopBitIdentical) {
  // Point inputs keep the loop condition decided on both paths.
  for (double X0 : {0.25, 1.0, 3.5}) {
    Interval X = Interval::fromPoint(X0);
    Interval Limit = Interval::fromPoint(1000.0);
    EXPECT_TRUE(bitIdentical(
        ::grow_until(X, Limit),
        served(*Kernels, "grow_until", {scalarArg(X), scalarArg(Limit)})))
        << X0;
  }
}

TEST_F(ServeCompare, TrigKernelsBitIdentical) {
  for (int I = 0; I < 300; ++I) {
    Interval X = Interval::fromPoint(uniform(-3.0, 3.0));
    Interval A = Interval::fromPoint(uniform(-3.0, 3.0));
    Interval B = Interval::fromPoint(uniform(-3.0, 3.0));
    EXPECT_TRUE(bitIdentical(::pyth(X), served(*Trig, "pyth",
                                             {scalarArg(X)})));
    EXPECT_TRUE(bitIdentical(::softplusish(X),
                             served(*Trig, "softplusish",
                                    {scalarArg(X)})));
    EXPECT_TRUE(bitIdentical(::hypot2(A, B),
                             served(*Trig, "hypot2",
                                    {scalarArg(A), scalarArg(B)})));
  }
}

TEST_F(ServeCompare, JoinBranchKernelsBitIdentical) {
  for (int I = 0; I < 300; ++I) {
    // Straddling inputs exercise the join (hull) path on both sides.
    Interval A = Interval::fromEndpoints(uniform(-2.0, 0.0),
                                         uniform(0.0, 2.0));
    Interval B = Interval::fromPoint(uniform(-2.0, 2.0));
    Interval X = Interval::fromEndpoints(uniform(-2.0, 0.5),
                                         uniform(0.5, 2.0));
    EXPECT_TRUE(bitIdentical(::jbranch(A, B),
                             served(*Join, "jbranch",
                                    {scalarArg(A), scalarArg(B)})));
    EXPECT_TRUE(bitIdentical(::jclamp(X), served(*Join, "jclamp",
                                               {scalarArg(X)})));
  }
}

TEST_F(ServeCompare, SimdKernelIsTypedUnsupportedNotWrong) {
  // vscale uses AVX intrinsics: the evaluator must refuse (typed error),
  // never silently return something that could disagree with AOT.
  EvalArg ArgX, ArgY;
  ArgX.K = EvalArg::Kind::Array;
  ArgX.Elements.assign(8, Interval::fromPoint(1.0));
  ArgY = ArgX;
  EvalResult R = evalFunction(*Kernels, "vscale",
                              {ArgX, ArgY, intArg(8)}, {});
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Error.Code, "unsupported");
}

} // namespace
