//===- ServeConcurrencyTest.cpp - Concurrent serving + request isolation ------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// The daemon's concurrency contract, tested in-process against
// ServerCore: N threads issuing eval requests with mixed per-request
// options get answers BIT-IDENTICAL to a serial replay of the same
// frames, and a clobbered FP environment (injected with the harden
// fault hooks, IGEN_FAULT-style) never leaks between requests — the
// per-request sentinel repairs or poisons locally, other tenants see
// nothing.
//
//===----------------------------------------------------------------------===//

#include "server/ServerCore.h"

#include "harden/FaultInject.h"
#include "harden/FenvSentinel.h"
#include "server/Json.h"

#include <atomic>
#include <cfenv>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

using namespace igen;
using namespace igen::server;

namespace {

class ServeConcurrencyTest : public ::testing::Test {
protected:
  ServerCore Core{32};

  void SetUp() override { harden::disarmFaults(); }
  void TearDown() override { harden::disarmFaults(); }

  std::string compileHandle(const std::string &Source,
                            const std::string &Extra = "") {
    std::string Opts = "{\"opt_level\":0,\"target\":\"ss\"";
    if (!Extra.empty())
      Opts += "," + Extra;
    Opts += "}";
    std::string Line =
        Core.handleFrame("{\"op\":\"compile\",\"source\":\"" +
                         jsonEscape(Source) + "\",\"options\":" + Opts +
                         "}");
    JsonParseResult R = parseJson(Line);
    EXPECT_TRUE(R.Ok && R.Value.member("ok")->boolValue()) << Line;
    return R.Value.member("handle")->stringValue();
  }
};

TEST_F(ServeConcurrencyTest, MixedOptionEvalsBitIdenticalToSerialReplay) {
  std::string HArith =
      compileHandle("double f(double x) { return (x + 1.0) * x - 0.5; }");
  std::string HBranch =
      compileHandle("double g(double x) {\n"
                    "  double r = 0.0;\n"
                    "  if (x > 0.0) r = x; else r = 0.0 - x;\n"
                    "  return r;\n"
                    "}",
                    "\"branch\":\"join\"");
  std::string HLoop =
      compileHandle("double h(double x, int n) {\n"
                    "  double s = 0.0;\n"
                    "  for (int i = 0; i < n; ++i) s += x * x;\n"
                    "  return s;\n"
                    "}");

  // A frame set that mixes programs, argument shapes, and per-request
  // option overrides (including requests whose options DIFFER from the
  // program's compiled defaults).
  std::vector<std::string> Frames;
  for (int I = 0; I < 6; ++I) {
    double X = 0.25 * (I + 1);
    Frames.push_back("{\"op\":\"eval\",\"handle\":\"" + HArith +
                     "\",\"function\":\"f\",\"args\":[" +
                     std::to_string(X) + "]}");
    Frames.push_back("{\"op\":\"eval\",\"handle\":\"" + HBranch +
                     "\",\"function\":\"g\",\"args\":[{\"lo\":-" +
                     std::to_string(X) + ",\"hi\":" + std::to_string(X) +
                     "}]}");
    Frames.push_back("{\"op\":\"eval\",\"handle\":\"" + HBranch +
                     "\",\"function\":\"g\",\"args\":[1.5],"
                     "\"options\":{\"branch\":\"exception\"}}");
    Frames.push_back("{\"op\":\"eval\",\"handle\":\"" + HLoop +
                     "\",\"function\":\"h\",\"args\":[0.1,{\"int\":" +
                     std::to_string(10 * (I + 1)) + "}]}");
  }

  // Serial replay: the ground truth.
  std::vector<std::string> Expected;
  for (const std::string &F : Frames)
    Expected.push_back(Core.handleFrame(F));

  // Concurrent: 8 threads x 5 rounds over the full frame set, every
  // response must be byte-identical to the serial answer (which embeds
  // both interval endpoints as IEEE bit patterns).
  const int NumThreads = 8, Rounds = 5;
  std::atomic<int> Mismatches{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      for (int R = 0; R < Rounds; ++R)
        for (size_t I = 0; I < Frames.size(); ++I)
          if (Core.handleFrame(Frames[I]) != Expected[I])
            Mismatches.fetch_add(1);
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0);
}

TEST_F(ServeConcurrencyTest, InjectedFenvClobberDoesNotLeakAcrossRequests) {
  std::string H =
      compileHandle("double f(double x) { return x / 3.0 + 0.1; }");
  std::string Frame = "{\"op\":\"eval\",\"handle\":\"" + H +
                      "\",\"function\":\"f\",\"args\":[1.0]}";
  std::string Clean = Core.handleFrame(Frame);
  ASSERT_NE(Clean.find("\"ok\": true"), std::string::npos) << Clean;

  harden::FenvStats Before = harden::fenvStats();

  // Clobber the rounding mode at one upward-scope entry somewhere in the
  // concurrent batch (IGEN_FAULT grammar: rnd@12). The victim request's
  // entry sentinel must repair it BEFORE evaluating, so even the victim
  // answers bit-identically; every other request must be untouched.
  harden::armFaults("rnd@12");
  const int NumThreads = 8, PerThread = 8;
  std::atomic<int> Mismatches{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I < PerThread; ++I)
        if (Core.handleFrame(Frame) != Clean)
          Mismatches.fetch_add(1);
    });
  for (auto &T : Threads)
    T.join();
  harden::disarmFaults();

  EXPECT_EQ(Mismatches.load(), 0);
  // The sentinel actually saw and repaired the injected violation.
  harden::FenvStats After = harden::fenvStats();
  EXPECT_GE(After.Violations, Before.Violations + 1);
  EXPECT_GE(After.Repairs, Before.Repairs + 1);
}

TEST_F(ServeConcurrencyTest, PoisonPolicyIsRequestLocal) {
  std::string H = compileHandle("double f(double x) { return x + 1.0; }");

  // Fire the clobber on this request's own scope entry; the request
  // asked for the poison policy, so it gets the whole line back,
  // flagged.
  harden::armFaults("rnd@0");
  std::string Line = Core.handleFrame(
      "{\"op\":\"eval\",\"handle\":\"" + H +
      "\",\"function\":\"f\",\"args\":[1.0],"
      "\"options\":{\"fenv_policy\":\"poison\"}}");
  harden::disarmFaults();
  JsonParseResult R = parseJson(Line);
  ASSERT_TRUE(R.Ok) << Line;
  ASSERT_TRUE(R.Value.member("ok")->boolValue()) << Line;
  EXPECT_TRUE(R.Value.member("poisoned")->boolValue()) << Line;
  EXPECT_EQ(R.Value.member("result")->member("lo_hex")->stringValue(),
            "fff0000000000000"); // -inf
  EXPECT_EQ(R.Value.member("result")->member("hi_hex")->stringValue(),
            "7ff0000000000000"); // +inf

  // The poison request changed nothing daemon-wide: the very next
  // request (default repair policy, clean env) is normal.
  std::string Next = Core.handleFrame("{\"op\":\"eval\",\"handle\":\"" +
                                      H +
                                      "\",\"function\":\"f\","
                                      "\"args\":[1.0]}");
  JsonParseResult R2 = parseJson(Next);
  ASSERT_TRUE(R2.Ok && R2.Value.member("ok")->boolValue()) << Next;
  EXPECT_FALSE(R2.Value.member("poisoned")->boolValue());
  EXPECT_DOUBLE_EQ(R2.Value.member("result")->member("lo")->numberValue(),
                   2.0);
}

TEST_F(ServeConcurrencyTest, CallerThreadDirtyEnvIsRepairedPerRequest) {
  std::string H = compileHandle("double f(double x) { return x * 2.0; }");
  std::string Frame = "{\"op\":\"eval\",\"handle\":\"" + H +
                      "\",\"function\":\"f\",\"args\":[0.3]}";
  std::string Clean = Core.handleFrame(Frame);

  std::string Dirty;
  std::thread([&] {
    // Simulate a hostile client thread: FTZ/DAZ on, rounding to
    // nearest, stale runtime cache — then issue the request.
    harden::writeMxcsr(harden::readMxcsr() | harden::kMxcsrFtz |
                       harden::kMxcsrDaz);
    std::fesetround(FE_TONEAREST);
    invalidateRoundingCache();
    Dirty = Core.handleFrame(Frame);
  }).join();
  EXPECT_EQ(Dirty, Clean);
}

TEST_F(ServeConcurrencyTest, ConcurrentCompilesOfSameSourceConverge) {
  const char *Src = "double u(double x) { return x - 0.25; }";
  std::string Frame = std::string("{\"op\":\"compile\",\"source\":\"") +
                      jsonEscape(Src) +
                      "\",\"options\":{\"opt_level\":0,\"target\":\"ss\"}}";
  std::vector<std::string> Handles(8);
  std::vector<std::thread> Threads;
  for (int T = 0; T < 8; ++T)
    Threads.emplace_back([&, T] {
      JsonParseResult R = parseJson(Core.handleFrame(Frame));
      ASSERT_TRUE(R.Ok && R.Value.member("ok")->boolValue());
      Handles[T] = R.Value.member("handle")->stringValue();
    });
  for (auto &T : Threads)
    T.join();
  for (int T = 1; T < 8; ++T)
    EXPECT_EQ(Handles[T], Handles[0]);
  // Exactly one resident copy regardless of the race outcome.
  EXPECT_EQ(Core.cache().stats().Resident, 1u);
}

} // namespace
