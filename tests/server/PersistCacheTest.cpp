//===- PersistCacheTest.cpp - Crash-recoverable cache journal tests -------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// The journal under IGEN_SERVE_CACHE_DIR is the daemon's only durable
// state, so these tests pin its whole contract: replay reconstructs
// bit-identical programs from journaled inputs, corrupt and stale
// entries are skipped (never fatal), eviction keeps disk in lockstep
// with the LRU, replay respects the capacity bound, and a bad directory
// spec degrades to a memory-only daemon.
//
//===----------------------------------------------------------------------===//

#include "server/PersistCache.h"

#include "server/FunctionCache.h"
#include "server/ServerCore.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace igen;
using namespace igen::server;

namespace {

std::string makeTempDir() {
  char Tmpl[] = "/tmp/igen_persist_test_XXXXXX";
  const char *Dir = mkdtemp(Tmpl);
  EXPECT_NE(Dir, nullptr);
  return Dir ? Dir : "";
}

std::vector<std::string> journalFiles(const std::string &Dir) {
  std::vector<std::string> Names;
  DIR *D = opendir(Dir.c_str());
  if (!D)
    return Names;
  while (struct dirent *E = readdir(D)) {
    std::string Name = E->d_name;
    if (Name.size() > 6 && Name.substr(Name.size() - 6) == ".igenc")
      Names.push_back(Name);
  }
  closedir(D);
  return Names;
}

std::shared_ptr<const InMemoryProgram>
compileOne(const std::string &Source, const TransformOptions &Opts) {
  DiagnosticsEngine Diags;
  auto P = compileToProgram(Source, Opts, Diags);
  EXPECT_NE(P, nullptr);
  return std::shared_ptr<const InMemoryProgram>(std::move(P));
}

TransformOptions serveOptions() {
  TransformOptions Opts;
  Opts.OptLevel = 0;
  Opts.ScalarLibrary = true;
  Opts.SourceName = "<serve>";
  return Opts;
}

TEST(PersistCacheTest, RoundTripReplaysBitIdenticalPrograms) {
  std::string Dir = makeTempDir();
  const std::string SrcA = "double f(double x) { return x * x + 1.0; }\n";
  const std::string SrcB =
      "double g(double x, double y) { return x / (y + 2.0); }\n";
  TransformOptions Opts = serveOptions();

  uint64_t HashA = hashCompileRequest(SrcA, Opts);
  uint64_t HashB = hashCompileRequest(SrcB, Opts);
  std::shared_ptr<const InMemoryProgram> ProgA = compileOne(SrcA, Opts);
  std::shared_ptr<const InMemoryProgram> ProgB = compileOne(SrcB, Opts);

  {
    PersistentCacheDir P(Dir);
    ASSERT_TRUE(P.enabled());
    P.persist(HashA, SrcA, Opts);
    P.persist(HashB, SrcB, Opts);
  }
  EXPECT_EQ(journalFiles(Dir).size(), 2u);

  // A fresh journal object (a restarted process) replays both entries
  // through the ordinary pipeline.
  FunctionCache Cache(8);
  PersistentCacheDir P2(Dir);
  PersistentCacheDir::ReplayStats RS = P2.replay(Cache, 8);
  EXPECT_EQ(RS.Replayed, 2u);
  EXPECT_EQ(RS.Skipped, 0u);

  std::shared_ptr<const InMemoryProgram> GotA = Cache.lookup(HashA);
  std::shared_ptr<const InMemoryProgram> GotB = Cache.lookup(HashB);
  ASSERT_TRUE(GotA && GotB);
  // Bit-identical reconstruction: replay recompiles the same inputs, so
  // the emitted artifact matches byte for byte.
  EXPECT_EQ(GotA->EmittedC, ProgA->EmittedC);
  EXPECT_EQ(GotB->EmittedC, ProgB->EmittedC);
}

TEST(PersistCacheTest, CorruptAndStaleEntriesAreSkippedNotFatal) {
  std::string Dir = makeTempDir();
  const std::string Src = "double f(double x) { return x + 1.0; }\n";
  TransformOptions Opts = serveOptions();
  uint64_t Hash = hashCompileRequest(Src, Opts);
  PersistentCacheDir P(Dir);
  P.persist(Hash, Src, Opts);

  // Corrupt: truncated JSON under a plausible name.
  {
    std::ofstream Out(Dir + "/0123456789abcdef.igenc");
    Out << "{\"schema\":1,\"hash\":\"0123456789abcd";
  }
  // Stale: well-formed, but the stored inputs no longer hash to the
  // filename (as after a hash-function or option-normalization change).
  {
    std::string Good;
    {
      std::ifstream In(Dir + "/" + formatHandle(Hash) + ".igenc");
      std::getline(In, Good, '\0');
    }
    ASSERT_FALSE(Good.empty());
    std::ofstream Out(Dir + "/fedcba9876543210.igenc");
    Out << Good;
  }
  // Not-an-entry noise the scanner must ignore outright.
  {
    std::ofstream Out(Dir + "/README.txt");
    Out << "not a journal entry\n";
  }

  FunctionCache Cache(8);
  PersistentCacheDir P2(Dir);
  PersistentCacheDir::ReplayStats RS = P2.replay(Cache, 8);
  EXPECT_EQ(RS.Replayed, 1u);
  EXPECT_EQ(RS.Skipped, 2u);
  EXPECT_TRUE(Cache.lookup(Hash));
  EXPECT_EQ(Cache.stats().Resident, 1u);
}

TEST(PersistCacheTest, EvictionUnlinksJournalEntry) {
  std::string Dir = makeTempDir();
  TransformOptions Opts = serveOptions();
  FunctionCache Cache(2);
  PersistentCacheDir P(Dir);
  Cache.setEvictionListener([&P](uint64_t Hash) { P.remove(Hash); });

  std::vector<uint64_t> Hashes;
  for (int I = 0; I < 3; ++I) {
    std::string Src = "double k" + std::to_string(I) +
                      "(double x) { return x; }\n";
    uint64_t Hash = hashCompileRequest(Src, Opts);
    Cache.insert(Hash, compileOne(Src, Opts));
    P.persist(Hash, Src, Opts);
    Hashes.push_back(Hash);
  }
  // Capacity 2: inserting the 3rd evicted the 1st, whose journal entry
  // must be gone; the two resident entries are still on disk.
  std::vector<std::string> Files = journalFiles(Dir);
  EXPECT_EQ(Files.size(), 2u);
  for (const std::string &Name : Files)
    EXPECT_NE(Name, formatHandle(Hashes[0]) + ".igenc");

  // Explicit evict and clear() mirror to disk the same way.
  EXPECT_TRUE(Cache.evict(Hashes[1]));
  EXPECT_EQ(journalFiles(Dir).size(), 1u);
  Cache.clear();
  EXPECT_EQ(journalFiles(Dir).size(), 0u);
}

TEST(PersistCacheTest, ReplayRespectsCapacityBoundNewestFirst) {
  std::string Dir = makeTempDir();
  TransformOptions Opts = serveOptions();
  PersistentCacheDir P(Dir);
  std::vector<uint64_t> Hashes;
  for (int I = 0; I < 4; ++I) {
    std::string Src = "double k" + std::to_string(I) +
                      "(double x) { return x; }\n";
    uint64_t Hash = hashCompileRequest(Src, Opts);
    P.persist(Hash, Src, Opts);
    Hashes.push_back(Hash);
    // Distinct mtimes so "newest" is well defined on coarse filesystems.
    std::string Path = Dir + "/" + formatHandle(Hash) + ".igenc";
    struct stat St;
    ASSERT_EQ(stat(Path.c_str(), &St), 0);
    struct timespec Times[2];
    Times[0] = St.st_atim;
    Times[1].tv_sec = St.st_mtim.tv_sec + I + 1;
    Times[1].tv_nsec = 0;
    ASSERT_EQ(utimensat(AT_FDCWD, Path.c_str(), Times, 0), 0);
  }

  FunctionCache Cache(2);
  PersistentCacheDir P2(Dir);
  PersistentCacheDir::ReplayStats RS = P2.replay(Cache, 2);
  EXPECT_EQ(RS.Replayed, 2u);
  // Only the two newest entries were considered; older files stay on
  // disk untouched for a larger-capacity restart.
  EXPECT_TRUE(Cache.lookup(Hashes[2]));
  EXPECT_TRUE(Cache.lookup(Hashes[3]));
  EXPECT_FALSE(Cache.lookup(Hashes[0]));
  EXPECT_EQ(journalFiles(Dir).size(), 4u);
}

TEST(PersistCacheTest, ServerCoreWarmRestartServesFromReplayedCache) {
  std::string Dir = makeTempDir();
  ServerCoreConfig Cfg;
  Cfg.CacheCapacity = 8;
  Cfg.CacheDir = Dir;
  const std::string Frame =
      "{\"op\":\"compile\",\"source\":\"double f(double x) { return x + "
      "1.0; }\",\"options\":{\"opt_level\":0,\"target\":\"ss\"}}";
  std::string ColdResp;
  {
    ServerCore First(Cfg);
    EXPECT_EQ(First.cacheReplayed(), 0u);
    ColdResp = First.handleFrame(Frame);
    EXPECT_NE(ColdResp.find("\"handle\""), std::string::npos);
  }
  // "Restart": a fresh core over the same directory replays the journal
  // and answers the same request from cache, with the same handle.
  ServerCore Second(Cfg);
  EXPECT_EQ(Second.cacheReplayed(), 1u);
  std::string WarmResp = Second.handleFrame(Frame);
  EXPECT_NE(WarmResp.find("\"cached\": true"), std::string::npos)
      << WarmResp;
  // Identical responses modulo the cached flag: same handle, same
  // function list, same emitted size.
  std::string ColdNorm = ColdResp;
  size_t Pos = ColdNorm.find("\"cached\": false");
  ASSERT_NE(Pos, std::string::npos) << ColdResp;
  ColdNorm.replace(Pos, 15, "\"cached\": true");
  EXPECT_EQ(ColdNorm, WarmResp);
}

TEST(PersistCacheTest, CacheDirSpecValidation) {
  std::string Warning;
  EXPECT_EQ(cacheDirFromSpec(nullptr, &Warning), "");
  EXPECT_TRUE(Warning.empty());
  EXPECT_EQ(cacheDirFromSpec("", &Warning), "");
  EXPECT_TRUE(Warning.empty());

  // A fresh path one level deep is created.
  std::string Dir = makeTempDir();
  std::string Sub = Dir + "/cache";
  EXPECT_EQ(cacheDirFromSpec(Sub.c_str(), &Warning), Sub);
  EXPECT_TRUE(Warning.empty());
  struct stat St;
  EXPECT_EQ(stat(Sub.c_str(), &St), 0);
  EXPECT_TRUE(S_ISDIR(St.st_mode));

  // A path whose parent is missing cannot be created: warn, disable.
  std::string Deep = Dir + "/no/such/parent";
  EXPECT_EQ(cacheDirFromSpec(Deep.c_str(), &Warning), "");
  EXPECT_FALSE(Warning.empty());

  // An existing non-directory: warn, disable.
  Warning.clear();
  std::string File = Dir + "/plainfile";
  { std::ofstream Out(File); Out << "x"; }
  EXPECT_EQ(cacheDirFromSpec(File.c_str(), &Warning), "");
  EXPECT_FALSE(Warning.empty());
}

} // namespace

// Free the temp dirs the tests above created (they are tiny; best
// effort so a failed assertion still leaves evidence behind).
namespace {
struct TempDirSweeper {
  ~TempDirSweeper() {
    (void)std::system("rm -rf /tmp/igen_persist_test_?????? 2>/dev/null");
  }
} Sweeper;
} // namespace
