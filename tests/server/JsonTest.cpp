//===- JsonTest.cpp - Serve-frame JSON parser tests ---------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "server/Json.h"

#include <gtest/gtest.h>

using namespace igen::server;

namespace {

JsonValue parseOk(std::string_view Text) {
  JsonParseResult R = parseJson(Text);
  EXPECT_TRUE(R.Ok) << Text << " -> " << R.Error;
  return R.Value;
}

std::string parseErr(std::string_view Text) {
  JsonParseResult R = parseJson(Text);
  EXPECT_FALSE(R.Ok) << Text;
  return R.Error;
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parseOk("null").isNull());
  EXPECT_TRUE(parseOk("true").boolValue());
  EXPECT_FALSE(parseOk("false").boolValue());
  EXPECT_DOUBLE_EQ(parseOk("3.25").numberValue(), 3.25);
  EXPECT_DOUBLE_EQ(parseOk("-1e-3").numberValue(), -1e-3);
  EXPECT_EQ(parseOk("\"hi\\n\"").stringValue(), "hi\n");
}

TEST(JsonParse, NumbersKeepRawSpelling) {
  // 0.1 is not representable; callers that want directed rounding need
  // the original text.
  EXPECT_EQ(parseOk("0.1000000000000000001").stringValue(),
            "0.1000000000000000001");
}

TEST(JsonParse, NestedStructure) {
  JsonValue V = parseOk(
      "{\"op\":\"eval\",\"args\":[1,{\"lo\":-2,\"hi\":2}],\"n\":3}");
  ASSERT_TRUE(V.isObject());
  EXPECT_EQ(V.member("op")->stringValue(), "eval");
  const JsonValue *Args = V.member("args");
  ASSERT_TRUE(Args && Args->isArray());
  ASSERT_EQ(Args->arrayValue().size(), 2u);
  EXPECT_DOUBLE_EQ(Args->arrayValue()[1].member("lo")->numberValue(), -2.0);
  EXPECT_EQ(V.member("missing"), nullptr);
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(parseOk("\"\\u0041\"").stringValue(), "A");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(parseOk("\"\\uD83D\\uDE00\"").stringValue(), "\xF0\x9F\x98\x80");
  parseErr("\"\\uD83D\""); // unpaired surrogate
}

TEST(JsonParse, StrictGrammar) {
  parseErr("");
  parseErr("{");
  parseErr("[1,]");
  parseErr("{\"a\":1,}");
  parseErr("{'a':1}");
  parseErr("{\"a\":1} garbage");
  parseErr("nul");
  parseErr("01");
  parseErr("+1");
  parseErr("1.");
  parseErr("\"unterminated");
  parseErr("{\"a\" 1}");
  parseErr("// comment\n1");
}

TEST(JsonParse, ErrorsCarryOffsets) {
  JsonParseResult R = parseJson("{\"a\": }");
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.ErrorOffset, 6u);
}

TEST(JsonParse, DepthLimitBoundsHostileFrames) {
  std::string Deep(1000, '[');
  Deep += std::string(1000, ']');
  JsonParseResult R = parseJson(Deep);
  EXPECT_FALSE(R.Ok);

  JsonLimits Loose;
  Loose.MaxDepth = 2000;
  EXPECT_TRUE(parseJson(Deep, Loose).Ok);
}

TEST(JsonParse, ElementCountLimit) {
  std::string Wide = "[0";
  for (int I = 0; I < 200; ++I)
    Wide += ",0";
  Wide += "]";
  JsonLimits Tight;
  Tight.MaxElements = 100;
  EXPECT_FALSE(parseJson(Wide, Tight).Ok);
  EXPECT_TRUE(parseJson(Wide).Ok);
}

TEST(JsonParse, DuplicateKeysLastWins) {
  JsonValue V = parseOk("{\"a\":1,\"a\":2}");
  EXPECT_DOUBLE_EQ(V.member("a")->numberValue(), 2.0);
}

TEST(JsonEscape, RoundTripsThroughParser) {
  std::string Nasty = "a\"b\\c\nd\te\x01f";
  std::string Quoted = "\"" + jsonEscape(Nasty) + "\"";
  EXPECT_EQ(parseOk(Quoted).stringValue(), Nasty);
}

} // namespace
