//===- FunctionCacheTest.cpp - Content-hash cache + transaction tests ---------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "server/FunctionCache.h"

#include "transform/Pipeline.h"

#include <gtest/gtest.h>

using namespace igen;
using namespace igen::server;

namespace {

std::shared_ptr<const InMemoryProgram> makeProgram(const char *Source) {
  DiagnosticsEngine Diags;
  TransformOptions Opts;
  Opts.OptLevel = 0;
  Opts.ScalarLibrary = true;
  auto P = compileToProgram(Source, Opts, Diags);
  EXPECT_TRUE(P) << Diags.render("<test>");
  return std::shared_ptr<const InMemoryProgram>(std::move(P));
}

TEST(CompileHash, OptionsAreSemanticallySignificant) {
  TransformOptions A;
  uint64_t Base = hashCompileRequest("double f(double x){return x;}", A);
  EXPECT_NE(Base, hashCompileRequest("double g(double x){return x;}", A));

  TransformOptions B = A;
  B.OptLevel = 0;
  EXPECT_NE(Base, hashCompileRequest("double f(double x){return x;}", B));
  B = A;
  B.Prec = TransformOptions::Precision::DoubleDouble;
  EXPECT_NE(Base, hashCompileRequest("double f(double x){return x;}", B));
  B = A;
  B.Branches = TransformOptions::BranchPolicy::Join;
  EXPECT_NE(Base, hashCompileRequest("double f(double x){return x;}", B));
  B = A;
  B.EnableReductions = true;
  EXPECT_NE(Base, hashCompileRequest("double f(double x){return x;}", B));

  // SourceName is report cosmetics only; it must NOT split the cache.
  B = A;
  B.SourceName = "elsewhere.c";
  EXPECT_EQ(Base, hashCompileRequest("double f(double x){return x;}", B));
}

TEST(CompileHash, HandleRoundTrip) {
  uint64_t H = 0x0123456789abcdefull;
  std::string Text = formatHandle(H);
  EXPECT_EQ(Text, "0123456789abcdef");
  uint64_t Back = 0;
  ASSERT_TRUE(parseHandle(Text, Back));
  EXPECT_EQ(Back, H);

  uint64_t Sink;
  EXPECT_FALSE(parseHandle("0123", Sink));
  EXPECT_FALSE(parseHandle("0123456789ABCDEF", Sink)); // uppercase
  EXPECT_FALSE(parseHandle("0123456789abcdeg", Sink));
}

TEST(FunctionCache, LruEvictsOldest) {
  FunctionCache Cache(2);
  auto P = makeProgram("double f(double x) { return x; }");
  Cache.insert(1, P);
  Cache.insert(2, P);
  Cache.insert(3, P); // evicts 1
  EXPECT_EQ(Cache.lookup(1), nullptr);
  EXPECT_NE(Cache.lookup(2), nullptr);
  EXPECT_NE(Cache.lookup(3), nullptr);

  // Touch 2 so 3 becomes least-recent; inserting 4 then evicts 3.
  (void)Cache.lookup(2);
  Cache.insert(4, P);
  EXPECT_NE(Cache.lookup(2), nullptr);
  EXPECT_EQ(Cache.lookup(3), nullptr);

  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Evictions, 2u);
  EXPECT_EQ(S.Resident, 2u);
  EXPECT_EQ(S.Capacity, 2u);
}

TEST(FunctionCache, StatsCountHitsAndMisses) {
  FunctionCache Cache(4);
  auto P = makeProgram("double f(double x) { return x; }");
  EXPECT_EQ(Cache.lookup(7), nullptr);
  Cache.insert(7, P);
  EXPECT_NE(Cache.lookup(7), nullptr);
  EXPECT_NE(Cache.lookup(7, /*CountMiss=*/false), nullptr);
  EXPECT_EQ(Cache.lookup(8, /*CountMiss=*/false), nullptr);

  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1u); // the uncounted probe stays uncounted
  EXPECT_EQ(S.Hits, 2u);
  EXPECT_EQ(S.Insertions, 1u);
}

TEST(FunctionCache, EvictAndClear) {
  FunctionCache Cache(8);
  auto P = makeProgram("double f(double x) { return x; }");
  Cache.insert(1, P);
  Cache.insert(2, P);
  EXPECT_TRUE(Cache.evict(1));
  EXPECT_FALSE(Cache.evict(1));
  EXPECT_EQ(Cache.clear(), 1u);
  EXPECT_EQ(Cache.stats().Resident, 0u);
}

TEST(FunctionCache, SharedOwnershipSurvivesEviction) {
  FunctionCache Cache(1);
  auto P = makeProgram("double f(double x) { return x + 1.0; }");
  Cache.insert(1, P);
  std::shared_ptr<const InMemoryProgram> Held = Cache.lookup(1);
  ASSERT_NE(Held, nullptr);
  Cache.insert(2, makeProgram("double g(double x) { return x; }"));
  EXPECT_EQ(Cache.lookup(1), nullptr); // evicted...
  EXPECT_FALSE(Held->EmittedC.empty()); // ...but the in-flight user is fine
  EXPECT_NE(Held->Ast, nullptr);
}

TEST(CompileTransaction, FailureLeavesNoState) {
  // A failing compile returns nullptr and the caller never inserts:
  // daemon state after a failed transaction is exactly the state before.
  DiagnosticsEngine Diags;
  TransformOptions Opts;
  auto P = compileToProgram("double f(double x) { return y; }", Opts, Diags);
  EXPECT_EQ(P, nullptr);
  EXPECT_TRUE(Diags.hasErrors());

  // The same engine (and the same thread) immediately compiles a good
  // program: no poisoned global state.
  Diags.clear();
  auto Q = compileToProgram("double f(double x) { return x; }", Opts, Diags);
  EXPECT_NE(Q, nullptr);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(CompileTransaction, FailedStageIsReported) {
  DiagnosticsEngine Diags;
  TransformOptions Opts;
  PipelineStage Stage = PipelineStage::None;
  EXPECT_EQ(compileToProgram("double f(", Opts, Diags, nullptr, &Stage),
            nullptr);
  EXPECT_EQ(Stage, PipelineStage::Parse);

  Diags.clear();
  Stage = PipelineStage::None;
  EXPECT_EQ(compileToProgram("double f(double x) { return q; }", Opts,
                             Diags, nullptr, &Stage),
            nullptr);
  EXPECT_EQ(Stage, PipelineStage::Sema);
}

} // namespace
