//===- SocketServerTest.cpp - End-to-end Unix-socket daemon tests -------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Spawns the real `igen --serve` binary, talks to it over its socket,
// and verifies transport-level behavior the in-process ServerCore tests
// cannot see: framing across the wire, oversized-frame resync on a live
// connection, multiple clients, and clean shutdown (socket unlinked,
// exit code 0).
//
//===----------------------------------------------------------------------===//

#include "server/Json.h"

#include <cstdio>
#include <string>

#include <errno.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

using namespace igen::server;

namespace {

class DaemonTest : public ::testing::Test {
protected:
  pid_t Pid = -1;
  std::string SocketPath;

  void SetUp() override {
    SocketPath = "/tmp/igen_serve_test_" + std::to_string(::getpid()) +
                 "_" + std::to_string(Counter++) + ".sock";
    Pid = ::fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      std::string Arg = "--serve=" + SocketPath;
      ::execl(IGEN_DRIVER_PATH, "igen", Arg.c_str(), (char *)nullptr);
      _exit(127);
    }
    // Wait for the socket to appear.
    for (int I = 0; I < 200; ++I) {
      struct stat St;
      if (::stat(SocketPath.c_str(), &St) == 0)
        return;
      ::usleep(20 * 1000);
    }
    FAIL() << "daemon never created " << SocketPath;
  }

  void TearDown() override {
    if (Pid > 0) {
      ::kill(Pid, SIGKILL);
      int Status;
      ::waitpid(Pid, &Status, 0);
    }
    ::unlink(SocketPath.c_str());
  }

  int connectClient() {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(Fd, 0);
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s",
                  SocketPath.c_str());
    EXPECT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                        sizeof(Addr)),
              0)
        << strerror(errno);
    return Fd;
  }

  void sendAll(int Fd, const std::string &Data) {
    size_t Off = 0;
    while (Off < Data.size()) {
      ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off, 0);
      ASSERT_GT(N, 0);
      Off += (size_t)N;
    }
  }

  std::string recvLine(int Fd) {
    std::string Line;
    char C;
    while (true) {
      ssize_t N = ::recv(Fd, &C, 1, 0);
      if (N <= 0)
        return Line;
      if (C == '\n')
        return Line;
      Line.push_back(C);
    }
  }

  JsonValue rpc(int Fd, const std::string &Frame) {
    sendAll(Fd, Frame + "\n");
    std::string Line = recvLine(Fd);
    JsonParseResult R = parseJson(Line);
    EXPECT_TRUE(R.Ok) << Line;
    return R.Value;
  }

  static int Counter;
};

int DaemonTest::Counter = 0;

TEST_F(DaemonTest, CompileEvalOverTheWire) {
  int Fd = connectClient();
  JsonValue C = rpc(Fd, "{\"op\":\"compile\",\"source\":\"double f(double "
                        "x) { return x * x; }\",\"options\":"
                        "{\"opt_level\":0,\"target\":\"ss\"}}");
  ASSERT_TRUE(C.member("ok")->boolValue());
  std::string H = C.member("handle")->stringValue();
  JsonValue E = rpc(Fd, "{\"op\":\"eval\",\"handle\":\"" + H +
                            "\",\"function\":\"f\",\"args\":[3.0]}");
  ASSERT_TRUE(E.member("ok")->boolValue());
  EXPECT_DOUBLE_EQ(E.member("result")->member("lo")->numberValue(), 9.0);
  ::close(Fd);
}

TEST_F(DaemonTest, TwoClientsShareTheCache) {
  int A = connectClient(), B = connectClient();
  const char *Compile = "{\"op\":\"compile\",\"source\":\"double f(double "
                        "x) { return x + 2.0; }\",\"options\":"
                        "{\"opt_level\":0,\"target\":\"ss\"}}";
  JsonValue R1 = rpc(A, Compile);
  ASSERT_TRUE(R1.member("ok")->boolValue());
  EXPECT_FALSE(R1.member("cached")->boolValue());
  JsonValue R2 = rpc(B, Compile);
  ASSERT_TRUE(R2.member("ok")->boolValue());
  EXPECT_TRUE(R2.member("cached")->boolValue());
  EXPECT_EQ(R1.member("handle")->stringValue(),
            R2.member("handle")->stringValue());
  ::close(A);
  ::close(B);
}

TEST_F(DaemonTest, PipelinedFramesInOneWrite) {
  int Fd = connectClient();
  sendAll(Fd, "{\"op\":\"stats\",\"id\":1}\n{\"op\":\"stats\",\"id\":2}\n");
  JsonParseResult A = parseJson(recvLine(Fd));
  JsonParseResult B = parseJson(recvLine(Fd));
  ASSERT_TRUE(A.Ok && B.Ok);
  EXPECT_DOUBLE_EQ(A.Value.member("id")->numberValue(), 1.0);
  EXPECT_DOUBLE_EQ(B.Value.member("id")->numberValue(), 2.0);
  ::close(Fd);
}

TEST_F(DaemonTest, GarbageFrameKeepsConnectionServing) {
  int Fd = connectClient();
  JsonValue Bad = rpc(Fd, "this is not json {{{");
  EXPECT_FALSE(Bad.member("ok")->boolValue());
  EXPECT_EQ(Bad.member("error")->member("code")->stringValue(),
            "bad-json");
  JsonValue Ok = rpc(Fd, "{\"op\":\"stats\"}");
  EXPECT_TRUE(Ok.member("ok")->boolValue());
  ::close(Fd);
}

TEST_F(DaemonTest, OversizedFrameGetsTypedErrorAndConnectionResyncs) {
  int Fd = connectClient();
  // 5 MiB without a newline: past the 4 MiB default frame cap. The
  // daemon must answer with a typed error, discard to the next newline,
  // and keep serving this same connection.
  std::string Blob(5u << 20, 'a');
  sendAll(Fd, Blob);
  JsonParseResult R = parseJson(recvLine(Fd));
  ASSERT_TRUE(R.Ok);
  EXPECT_FALSE(R.Value.member("ok")->boolValue());
  EXPECT_EQ(R.Value.member("error")->member("code")->stringValue(),
            "frame-too-large");
  sendAll(Fd, "tail-of-oversized-frame\n"); // terminator, then resync
  JsonValue Ok = rpc(Fd, "{\"op\":\"stats\"}");
  EXPECT_TRUE(Ok.member("ok")->boolValue());
  ::close(Fd);
}

TEST_F(DaemonTest, CleanShutdownUnlinksSocketAndExitsZero) {
  int Fd = connectClient();
  JsonValue R = rpc(Fd, "{\"op\":\"shutdown\"}");
  EXPECT_TRUE(R.member("ok")->boolValue());
  ::close(Fd);

  int Status = 0;
  for (int I = 0; I < 200; ++I) {
    pid_t W = ::waitpid(Pid, &Status, WNOHANG);
    if (W == Pid)
      break;
    ::usleep(20 * 1000);
  }
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0);
  Pid = -1; // TearDown must not re-reap

  struct stat St;
  EXPECT_NE(::stat(SocketPath.c_str(), &St), 0)
      << "socket must be unlinked on clean shutdown";
}

} // namespace
