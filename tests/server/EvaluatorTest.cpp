//===- EvaluatorTest.cpp - AST-walking interval evaluator tests ---------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "server/Evaluator.h"

#include "interval/Rounding.h"
#include "transform/Pipeline.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace igen;
using namespace igen::server;

namespace {

std::shared_ptr<const InMemoryProgram>
compile(const char *Source, bool Join = false, bool Reductions = false) {
  DiagnosticsEngine Diags;
  TransformOptions Opts;
  Opts.OptLevel = 0;
  Opts.ScalarLibrary = true;
  Opts.EnableReductions = Reductions;
  if (Join)
    Opts.Branches = TransformOptions::BranchPolicy::Join;
  auto P = compileToProgram(Source, Opts, Diags);
  EXPECT_TRUE(P) << Diags.render("<test>");
  return std::shared_ptr<const InMemoryProgram>(std::move(P));
}

EvalResult eval(const InMemoryProgram &P, const std::string &Fn,
                std::vector<EvalArg> Args, EvalOptions EO = {}) {
  EO.JoinBranches =
      P.Opts.Branches == TransformOptions::BranchPolicy::Join;
  EO.EnableReductions = P.Opts.EnableReductions;
  RoundUpwardScope Up;
  return evalFunction(P, Fn, Args, EO);
}

EvalArg scalar(double Lo, double Hi) {
  EvalArg A;
  A.K = EvalArg::Kind::Scalar;
  A.Scalar = Interval::fromEndpoints(Lo, Hi);
  return A;
}
EvalArg point(double X) { return scalar(X, X); }
EvalArg intArg(long long V) {
  EvalArg A;
  A.K = EvalArg::Kind::Int;
  A.IntValue = V;
  return A;
}
EvalArg arr(std::vector<Interval> Elems) {
  EvalArg A;
  A.K = EvalArg::Kind::Array;
  A.Elements = std::move(Elems);
  return A;
}

TEST(Evaluator, StraightLineArithmetic) {
  auto P = compile("double f(double x) { return (x + 1.0) * x - 0.5; }");
  EvalResult R = eval(*P, "f", {point(2.0)});
  ASSERT_TRUE(R.Ok) << R.Error.Message;
  ASSERT_TRUE(R.HasReturn);
  EXPECT_DOUBLE_EQ(R.Return.lo(), 5.5);
  EXPECT_DOUBLE_EQ(R.Return.hi(), 5.5);
}

TEST(Evaluator, IntervalArgumentsWiden) {
  auto P = compile("double f(double x) { return x * x; }");
  EvalResult R = eval(*P, "f", {scalar(-2.0, 3.0)});
  ASSERT_TRUE(R.Ok);
  // iMul of [-2,3]*[-2,3] (no square-awareness at -O0): [-6, 9].
  EXPECT_DOUBLE_EQ(R.Return.lo(), -6.0);
  EXPECT_DOUBLE_EQ(R.Return.hi(), 9.0);
}

TEST(Evaluator, MathCallsMatchRuntimeMapping) {
  auto P = compile("double f(double x) { return sqrt(x) + fabs(x); }");
  EvalResult R = eval(*P, "f", {point(4.0)});
  ASSERT_TRUE(R.Ok);
  EXPECT_DOUBLE_EQ(R.Return.lo(), 6.0);
  EXPECT_DOUBLE_EQ(R.Return.hi(), 6.0);

  auto Q = compile("double g(double x) { return exp(x); }");
  EvalResult R2 = eval(*Q, "g", {point(0.0)});
  ASSERT_TRUE(R2.Ok);
  EXPECT_LE(R2.Return.lo(), 1.0);
  EXPECT_GE(R2.Return.hi(), 1.0);
}

TEST(Evaluator, LoopsAndIntArithmetic) {
  auto P = compile("double f(double x, int n) {\n"
                   "  double acc = 0.0;\n"
                   "  for (int i = 0; i < n; ++i) acc += x;\n"
                   "  return acc;\n"
                   "}");
  EvalResult R = eval(*P, "f", {point(0.5), intArg(10)});
  ASSERT_TRUE(R.Ok) << R.Error.Message;
  EXPECT_DOUBLE_EQ(R.Return.lo(), 5.0);
  EXPECT_DOUBLE_EQ(R.Return.hi(), 5.0);
}

TEST(Evaluator, ArraysInAndOut) {
  auto P = compile("void scale(double *x, double *y, int n) {\n"
                   "  for (int i = 0; i < n; ++i) y[i] = 2.0 * x[i];\n"
                   "}");
  EvalResult R = eval(*P, "scale",
                      {arr({Interval::fromPoint(1.0),
                            Interval::fromPoint(-3.0)}),
                       arr({Interval::fromPoint(0.0),
                            Interval::fromPoint(0.0)}),
                       intArg(2)});
  ASSERT_TRUE(R.Ok) << R.Error.Message;
  EXPECT_FALSE(R.HasReturn);
  ASSERT_EQ(R.ArrayOutputs.size(), 2u);
  ASSERT_EQ(R.ArrayOutputs[1].size(), 2u);
  EXPECT_DOUBLE_EQ(R.ArrayOutputs[1][0].lo(), 2.0);
  EXPECT_DOUBLE_EQ(R.ArrayOutputs[1][1].hi(), -6.0 + 0.0); // -6 exactly
  EXPECT_DOUBLE_EQ(R.ArrayOutputs[1][1].lo(), -6.0);
}

TEST(Evaluator, OutOfBoundsIsATypedErrorNotACrash) {
  auto P = compile("double f(double *x, int n) { return x[n]; }");
  EvalResult R = eval(*P, "f", {arr({Interval::fromPoint(1.0)}), intArg(5)});
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Error.Code, "out-of-bounds");
}

TEST(Evaluator, UnknownBranchIsTypedErrorUnderExceptionPolicy) {
  auto P = compile("double f(double x) {\n"
                   "  if (x > 0.0) return 1.0;\n"
                   "  return -1.0;\n"
                   "}");
  // [-1, 1] straddles the comparison: TBool::Unknown.
  EvalResult R = eval(*P, "f", {scalar(-1.0, 1.0)});
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Error.Code, "unknown-branch");

  // A decided condition works.
  EvalResult R2 = eval(*P, "f", {scalar(0.5, 1.0)});
  ASSERT_TRUE(R2.Ok);
  EXPECT_DOUBLE_EQ(R2.Return.hi(), 1.0);
}

TEST(Evaluator, JoinPolicyHullsBothBranches) {
  auto P = compile("double f(double x) {\n"
                   "  double r = 0.0;\n"
                   "  if (x > 0.0) r = 1.0; else r = -1.0;\n"
                   "  return r;\n"
                   "}",
                   /*Join=*/true);
  EvalResult R = eval(*P, "f", {scalar(-1.0, 1.0)});
  ASSERT_TRUE(R.Ok) << R.Error.Message;
  EXPECT_DOUBLE_EQ(R.Return.lo(), -1.0);
  EXPECT_DOUBLE_EQ(R.Return.hi(), 1.0);
}

TEST(Evaluator, ReductionAccumulatorRuns) {
  auto P = compile("double dot(double *a, double *b, int n) {\n"
                   "  double s = 0.0;\n"
                   "  #pragma igen reduce\n"
                   "  for (int i = 0; i < n; ++i) s += a[i] * b[i];\n"
                   "  return s;\n"
                   "}",
                   /*Join=*/false, /*Reductions=*/true);
  std::vector<Interval> A, B;
  for (int I = 0; I < 100; ++I) {
    A.push_back(Interval::fromPoint(0.1 * I));
    B.push_back(Interval::fromPoint(1.0));
  }
  EvalResult R = eval(*P, "dot", {arr(A), arr(B), intArg(100)});
  ASSERT_TRUE(R.Ok) << R.Error.Message;
  long double Ref = 0.0L;
  for (int I = 0; I < 100; ++I)
    Ref += (long double)(0.1 * I);
  EXPECT_LE((long double)R.Return.lo(), Ref);
  EXPECT_GE((long double)R.Return.hi(), Ref);
}

TEST(Evaluator, ToleranceParameterWidens) {
  auto P = compile("double f(double:0.5 a) { return a; }");
  EvalArg A;
  A.K = EvalArg::Kind::Tolerance;
  A.Point = 10.0;
  EvalResult R = eval(*P, "f", {A});
  ASSERT_TRUE(R.Ok) << R.Error.Message;
  EXPECT_DOUBLE_EQ(R.Return.lo(), 9.5);
  EXPECT_DOUBLE_EQ(R.Return.hi(), 10.5);
}

TEST(Evaluator, StepLimitStopsRunawayLoops) {
  auto P = compile("double f(double x) {\n"
                   "  while (x < 1.0e308) x = x + 0.0;\n"
                   "  return x;\n"
                   "}");
  EvalOptions EO;
  EO.StepLimit = 10000;
  RoundUpwardScope Up;
  EvalResult R = evalFunction(*P, "f", {point(0.0)}, EO);
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Error.Code, "step-limit");
}

TEST(Evaluator, RecursionLimit) {
  auto P = compile("double f(double x) { return f(x) + 1.0; }");
  EvalResult R = eval(*P, "f", {point(0.0)});
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Error.Code, "recursion-limit");
}

TEST(Evaluator, IntDivZero) {
  auto P = compile("double f(int n) { int m = 10 / n; return 1.0; }");
  EvalResult R = eval(*P, "f", {intArg(0)});
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Error.Code, "int-div-zero");
}

TEST(Evaluator, NoSuchFunctionAndBadArity) {
  auto P = compile("double f(double x) { return x; }");
  EvalResult R = eval(*P, "nope", {point(0.0)});
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Error.Code, "no-such-function");

  EvalResult R2 = eval(*P, "f", {});
  ASSERT_FALSE(R2.Ok);
  EXPECT_EQ(R2.Error.Code, "bad-argument");
}

TEST(Evaluator, PoisonedEntryReturnsWhole) {
  auto P = compile("double f(double x) { return x; }");
  EvalOptions EO;
  EO.PoisonedEntry = true;
  RoundUpwardScope Up;
  EvalResult R = evalFunction(*P, "f", {point(3.0)}, EO);
  ASSERT_TRUE(R.Ok);
  EXPECT_TRUE(std::isinf(R.Return.lo()));
  EXPECT_TRUE(std::isinf(R.Return.hi()));
}

TEST(Evaluator, UserFunctionCalls) {
  auto P = compile("double sq(double x) { return x * x; }\n"
                   "double f(double x) { return sq(x) + sq(x + 1.0); }");
  EvalResult R = eval(*P, "f", {point(2.0)});
  ASSERT_TRUE(R.Ok) << R.Error.Message;
  EXPECT_DOUBLE_EQ(R.Return.lo(), 13.0);
  EXPECT_DOUBLE_EQ(R.Return.hi(), 13.0);
}

TEST(Evaluator, DescribeFunction) {
  auto P = compile(
      "double f(double x, int n, double *a, double:0.25 t) { return x; }");
  std::vector<std::string> Kinds;
  std::string Ret;
  ASSERT_TRUE(describeFunction(*P, "f", Kinds, Ret));
  ASSERT_EQ(Kinds.size(), 4u);
  EXPECT_EQ(Kinds[0], "interval");
  EXPECT_EQ(Kinds[1], "int");
  EXPECT_EQ(Kinds[2], "array");
  EXPECT_EQ(Kinds[3].substr(0, 10), "tolerance:");
  EXPECT_EQ(Ret, "interval");
  EXPECT_FALSE(describeFunction(*P, "g", Kinds, Ret));
}

TEST(Evaluator, DoubleDoubleProgramsAreRejectedTyped) {
  DiagnosticsEngine Diags;
  TransformOptions Opts;
  Opts.Prec = TransformOptions::Precision::DoubleDouble;
  Opts.ScalarLibrary = true;
  auto P = compileToProgram("double f(double x) { return x; }", Opts, Diags);
  ASSERT_NE(P, nullptr);
  RoundUpwardScope Up;
  EvalResult R = evalFunction(*P, "f", {point(1.0)}, {});
  ASSERT_FALSE(R.Ok);
  EXPECT_EQ(R.Error.Code, "unsupported");
}

} // namespace
