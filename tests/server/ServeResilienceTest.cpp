//===- ServeResilienceTest.cpp - Daemon fault & recovery battery ----------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Production-hardening battery for `igen --serve`, run against the real
// binary over a real Unix socket:
//
//  * kill -9 mid-traffic, then a warm restart over IGEN_SERVE_CACHE_DIR:
//    previously compiled hashes must be served bit-identically from the
//    replayed journal;
//  * the IGEN_FAULT transport matrix (accept/read/write/conreset/
//    partial/stall): every fault class must leave the daemon serving
//    with a stable fd count;
//  * a client that disconnects mid-response (the SIGPIPE regression);
//  * SIGTERM graceful drain: exit 0, socket unlinked;
//  * health probes answered while a worker is wedged in a long eval,
//    and a deadline that frees that worker.
//
//===----------------------------------------------------------------------===//

#include "server/Json.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <dirent.h>
#include <errno.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

using namespace igen::server;

namespace {

struct EnvVar {
  std::string Name;
  std::string Value;
};

class ResilienceTest : public ::testing::Test {
protected:
  pid_t Pid = -1;
  std::string SocketPath;
  static int Counter;

  void SetUp() override {
    SocketPath = "/tmp/igen_resilience_" + std::to_string(::getpid()) +
                 "_" + std::to_string(Counter++) + ".sock";
  }

  void TearDown() override {
    stopHard();
    ::unlink(SocketPath.c_str());
  }

  /// Spawns `igen --serve` with extra environment variables. May be
  /// called again after stopHard() to model a restart.
  void start(const std::vector<EnvVar> &Env = {}) {
    Pid = ::fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      for (const EnvVar &E : Env)
        ::setenv(E.Name.c_str(), E.Value.c_str(), 1);
      std::string Arg = "--serve=" + SocketPath;
      ::execl(IGEN_DRIVER_PATH, "igen", Arg.c_str(), (char *)nullptr);
      _exit(127);
    }
    for (int I = 0; I < 400; ++I) {
      struct stat St;
      if (::stat(SocketPath.c_str(), &St) == 0)
        return;
      ::usleep(20 * 1000);
    }
    FAIL() << "daemon never created " << SocketPath;
  }

  void stopHard() {
    if (Pid <= 0)
      return;
    ::kill(Pid, SIGKILL);
    int Status;
    ::waitpid(Pid, &Status, 0);
    Pid = -1;
  }

  /// Waits for the daemon to exit on its own; returns the wait status.
  int awaitExit() {
    int Status = -1;
    for (int I = 0; I < 400; ++I) {
      pid_t W = ::waitpid(Pid, &Status, WNOHANG);
      if (W == Pid) {
        Pid = -1;
        return Status;
      }
      ::usleep(20 * 1000);
    }
    return -1;
  }

  int connectClient() {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(Fd, 0);
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s",
                  SocketPath.c_str());
    EXPECT_EQ(
        ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
        0)
        << strerror(errno);
    return Fd;
  }

  void sendAll(int Fd, const std::string &Data) {
    size_t Off = 0;
    while (Off < Data.size()) {
      ssize_t N =
          ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
      if (N <= 0)
        return; // faulted connections may legitimately die mid-send
      Off += (size_t)N;
    }
  }

  /// Reads one response line; "" means the daemon closed the connection
  /// (which some injected faults legitimately cause).
  std::string recvLine(int Fd) {
    std::string Line;
    char C;
    while (true) {
      ssize_t N = ::recv(Fd, &C, 1, 0);
      if (N <= 0)
        return Line;
      if (C == '\n')
        return Line;
      Line.push_back(C);
    }
  }

  JsonValue rpc(int Fd, const std::string &Frame) {
    sendAll(Fd, Frame + "\n");
    std::string Line = recvLine(Fd);
    JsonParseResult R = parseJson(Line);
    EXPECT_TRUE(R.Ok) << "bad response line: '" << Line << "'";
    return R.Value;
  }

  /// One-connection round-trip; proves the daemon is serving.
  void expectServing() {
    int Fd = connectClient();
    JsonValue V = rpc(Fd, "{\"op\":\"stats\"}");
    EXPECT_TRUE(V.member("ok") && V.member("ok")->boolValue());
    ::close(Fd);
  }

  size_t fdCount() {
    std::string Dir = "/proc/" + std::to_string(Pid) + "/fd";
    DIR *D = opendir(Dir.c_str());
    if (!D)
      return 0;
    size_t N = 0;
    while (struct dirent *E = readdir(D)) {
      if (std::strcmp(E->d_name, ".") && std::strcmp(E->d_name, ".."))
        ++N;
    }
    closedir(D);
    return N;
  }

  /// The reactor reaps dead connections on its next 50ms poll tick;
  /// wait for the fd table to settle back to \p Want.
  bool fdCountSettlesTo(size_t Want) {
    for (int I = 0; I < 100; ++I) {
      if (fdCount() == Want)
        return true;
      ::usleep(20 * 1000);
    }
    return false;
  }

  std::string makeTempDir() {
    char Tmpl[] = "/tmp/igen_resilience_cache_XXXXXX";
    const char *Dir = mkdtemp(Tmpl);
    EXPECT_NE(Dir, nullptr);
    return Dir ? Dir : "";
  }
};

int ResilienceTest::Counter = 0;

const char *kCompileFrame =
    "{\"op\":\"compile\",\"source\":\"double f(double x) { return x * x "
    "+ 0.1; }\",\"options\":{\"opt_level\":0,\"target\":\"ss\"}}";
const char *kRunawaySource =
    "double spin(double x) { while (x < 1.0e300) x = x + 1.0e-6; "
    "return x; }";

TEST_F(ResilienceTest, KillNineThenWarmRestartServesBitIdentically) {
  std::string CacheDir = makeTempDir();
  start({{"IGEN_SERVE_CACHE_DIR", CacheDir}});

  int Fd = connectClient();
  JsonValue C = rpc(Fd, kCompileFrame);
  ASSERT_TRUE(C.member("ok")->boolValue());
  std::string Handle = C.member("handle")->stringValue();
  std::string EvalFrame = "{\"op\":\"eval\",\"handle\":\"" + Handle +
                          "\",\"function\":\"f\",\"args\":[3.0]}";
  JsonValue E1 = rpc(Fd, EvalFrame);
  ASSERT_TRUE(E1.member("ok")->boolValue());
  std::string LoHex = E1.member("result")->member("lo_hex")->stringValue();
  std::string HiHex = E1.member("result")->member("hi_hex")->stringValue();
  // Mid-traffic: more requests in flight when the SIGKILL lands.
  sendAll(Fd, std::string(kCompileFrame) + "\n" + EvalFrame + "\n");
  stopHard();
  ::close(Fd);
  // SIGKILL leaves the stale socket file behind; remove it so the
  // restart wait below observes the *new* daemon's bind.
  ::unlink(SocketPath.c_str());

  // Warm restart over the same journal directory.
  start({{"IGEN_SERVE_CACHE_DIR", CacheDir}});
  int Fd2 = connectClient();
  JsonValue St = rpc(Fd2, "{\"op\":\"stats\"}");
  ASSERT_TRUE(St.member("ok")->boolValue());
  EXPECT_GE(St.member("stats")
                ->member("resilience")
                ->member("cache_replayed")
                ->numberValue(),
            1.0);
  // The very first compile of the old source is a cache hit with the
  // same handle...
  JsonValue C2 = rpc(Fd2, kCompileFrame);
  ASSERT_TRUE(C2.member("ok")->boolValue());
  EXPECT_TRUE(C2.member("cached")->boolValue());
  EXPECT_EQ(C2.member("handle")->stringValue(), Handle);
  // ...and evaluation through the replayed program is bit-identical.
  JsonValue E2 = rpc(Fd2, EvalFrame);
  ASSERT_TRUE(E2.member("ok")->boolValue());
  EXPECT_EQ(E2.member("result")->member("lo_hex")->stringValue(), LoHex);
  EXPECT_EQ(E2.member("result")->member("hi_hex")->stringValue(), HiHex);
  ::close(Fd2);

  std::string Cmd = "rm -rf " + CacheDir;
  (void)system(Cmd.c_str());
}

TEST_F(ResilienceTest, TransportFaultMatrixLeavesDaemonServing) {
  // One daemon per fault class; each fault fires exactly once on the
  // first client's traffic. read/conreset/write cost that client its
  // connection (it sees EOF); accept/stall/partial are absorbed and the
  // client is still answered. Either way the daemon must keep serving
  // and return to its idle fd count.
  struct FaultCase {
    const char *Spec;
    bool FirstClientAnswered;
  };
  const FaultCase Cases[] = {
      {"accept@0", true},   // EMFILE once; the pending connect is
                            // accepted on the next reactor tick
      {"read@0", false},    // EIO: connection dropped
      {"conreset@0", false}, // ECONNRESET: connection dropped
      {"stall@0", true},    // EAGAIN despite poll readiness: retried
      {"write@0", false},   // EPIPE on the response: connection dropped
      {"partial@0", true},  // short write: the write loop resumes
  };
  for (const FaultCase &FC : Cases) {
    SCOPED_TRACE(FC.Spec);
    start({{"IGEN_FAULT", FC.Spec}});
    size_t IdleFds = fdCount();
    ASSERT_GT(IdleFds, 0u);

    int Fd = connectClient();
    sendAll(Fd, "{\"op\":\"stats\"}\n");
    std::string Line = recvLine(Fd);
    if (FC.FirstClientAnswered) {
      JsonParseResult R = parseJson(Line);
      EXPECT_TRUE(R.Ok && R.Value.member("ok")->boolValue())
          << "got: '" << Line << "'";
    } else {
      EXPECT_TRUE(Line.empty())
          << "expected EOF from dropped connection, got: '" << Line
          << "'";
    }
    ::close(Fd);

    // The daemon survived and serves a fresh client.
    expectServing();
    // No leaked connection fds once the reactor reaps.
    EXPECT_TRUE(fdCountSettlesTo(IdleFds))
        << "fd count " << fdCount() << " never settled back to "
        << IdleFds;
    stopHard();
    ::unlink(SocketPath.c_str());
  }
}

TEST_F(ResilienceTest, ClientDisconnectMidResponseDoesNotKillDaemon) {
  start();
  // Fire-and-close: the worker's response hits a dead peer. Without
  // MSG_NOSIGNAL / SIG_IGN this raises SIGPIPE and kills the process.
  for (int I = 0; I < 5; ++I) {
    int Fd = connectClient();
    sendAll(Fd, std::string(kCompileFrame) + "\n");
    ::close(Fd); // gone before the response is written
  }
  ::usleep(300 * 1000); // let the workers run into the dead peers
  expectServing();

  // Clean shutdown still works afterwards — and proves the process was
  // never signaled.
  int Fd = connectClient();
  JsonValue R = rpc(Fd, "{\"op\":\"shutdown\"}");
  EXPECT_TRUE(R.member("ok")->boolValue());
  ::close(Fd);
  int Status = awaitExit();
  ASSERT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0);
}

TEST_F(ResilienceTest, SigtermDrainsExitsZeroAndUnlinksSocket) {
  start({{"IGEN_SERVE_DRAIN_MS", "3000"}});
  expectServing();
  ASSERT_EQ(::kill(Pid, SIGTERM), 0);
  int Status = awaitExit();
  ASSERT_TRUE(WIFEXITED(Status)) << "daemon must drain, not die";
  EXPECT_EQ(WEXITSTATUS(Status), 0);
  struct stat St;
  EXPECT_NE(::stat(SocketPath.c_str(), &St), 0)
      << "socket must be unlinked after drain";
}

TEST_F(ResilienceTest, HealthAnswersDuringLongEvalAndDeadlineFreesWorker) {
  start();
  int A = connectClient();
  JsonValue C = rpc(A, std::string("{\"op\":\"compile\",\"source\":\"") +
                         kRunawaySource +
                         "\",\"options\":{\"opt_level\":0,\"target\":"
                         "\"ss\"}}");
  ASSERT_TRUE(C.member("ok")->boolValue());
  std::string Handle = C.member("handle")->stringValue();

  // A long evaluation with a 600ms deadline and a step limit far beyond
  // what that wall-clock budget can execute.
  sendAll(A, "{\"op\":\"eval\",\"handle\":\"" + Handle +
                 "\",\"function\":\"spin\",\"args\":[0.0],"
                 "\"deadline_ms\":600,"
                 "\"options\":{\"step_limit\":4000000000}}\n");
  ::usleep(100 * 1000); // ensure the eval is on a worker

  // Health must answer while that request is still running (the socket
  // layer handles it on the reactor thread, no worker needed).
  int B = connectClient();
  JsonValue H = rpc(B, "{\"op\":\"health\"}");
  ASSERT_TRUE(H.member("ok")->boolValue());
  EXPECT_EQ(H.member("state")->stringValue(), "serving");
  EXPECT_GE(H.member("in_flight")->numberValue(), 1.0);
  EXPECT_GT(H.member("slowest_in_flight_us")->numberValue(), 0.0);
  ::close(B);

  // The deadline frees the worker with a typed error, not a dead one.
  std::string Line = recvLine(A);
  JsonParseResult R = parseJson(Line);
  ASSERT_TRUE(R.Ok) << Line;
  EXPECT_FALSE(R.Value.member("ok")->boolValue());
  EXPECT_EQ(R.Value.member("error")->member("code")->stringValue(),
            "deadline-exceeded");
  ::close(A);
  expectServing();
}

TEST_F(ResilienceTest, DefaultDeadlineFromEnvironment) {
  start({{"IGEN_SERVE_DEADLINE", "400"}});
  int Fd = connectClient();
  JsonValue C = rpc(Fd, std::string("{\"op\":\"compile\",\"source\":\"") +
                          kRunawaySource +
                          "\",\"options\":{\"opt_level\":0,\"target\":"
                          "\"ss\"}}");
  ASSERT_TRUE(C.member("ok")->boolValue());
  std::string Handle = C.member("handle")->stringValue();
  // No per-request deadline_ms: IGEN_SERVE_DEADLINE supplies the budget.
  JsonValue E = rpc(Fd, "{\"op\":\"eval\",\"handle\":\"" + Handle +
                            "\",\"function\":\"spin\",\"args\":[0.0],"
                            "\"options\":{\"step_limit\":4000000000}}");
  EXPECT_FALSE(E.member("ok")->boolValue());
  EXPECT_EQ(E.member("error")->member("code")->stringValue(),
            "deadline-exceeded");
  ::close(Fd);
  expectServing();
}

} // namespace
