//===- DdBatchTest.cpp - Batched double-double interval runtime tests -----===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Covers the batched ddi tier (DdBatch.h):
//  (a) ddarr_add/sub/mul/fma are bit-identical across every dispatch
//      tier (the AVX2 DdSimd kernels mirror the scalar error-free
//      transformations lane for lane);
//  (b) the elementwise kernels enclose the exact endpoint arithmetic,
//      checked with the expansion oracles (quad precision is not enough
//      for double-double products);
//  (c) ddarr_sum/ddarr_dot use one fixed sequential routine: bits never
//      depend on the ISA selection, and the results enclose the exact
//      corner sums;
//  (d) the dd kernel table resolves to the documented tier names.
//
//===----------------------------------------------------------------------===//

#include "runtime/DdBatch.h"

#include "../interval/TestHelpers.h"

#include <cstring>
#include <vector>

#include "gtest/gtest.h"

using namespace igen;
using namespace igen::runtime;

namespace {

std::vector<Isa> supportedIsas() {
  std::vector<Isa> Out;
  for (int I = 0; I < NumIsas; ++I)
    if (isaSupported(static_cast<Isa>(I)))
      Out.push_back(static_cast<Isa>(I));
  return Out;
}

struct IsaGuard {
  ~IsaGuard() { clearForcedIsa(); }
};

/// Random ddi values with nonzero low words: products of two widened
/// f64i intervals populate the full double-double precision.
std::vector<DdInterval> randomDdIntervals(test::Rng &R, size_t N) {
  RoundUpwardScope Up;
  std::vector<DdInterval> V(N);
  for (size_t I = 0; I < N; ++I) {
    DdInterval A = DdInterval::fromInterval(R.moderateInterval());
    DdInterval B = DdInterval::fromInterval(R.moderateInterval());
    V[I] = ddiMul(A, B);
  }
  return V;
}

bool sameBits(const std::vector<DdInterval> &A,
              const std::vector<DdInterval> &B) {
  return A.size() == B.size() &&
         std::memcmp(A.data(), B.data(), A.size() * sizeof(DdInterval)) ==
             0;
}

//===----------------------------------------------------------------------===//
// (a) Cross-tier bit identity
//===----------------------------------------------------------------------===//

TEST(DdBatchTest, ElementwiseKernelsBitIdenticalAcrossTiers) {
  IsaGuard Restore;
  test::Rng R(0xddb17);
  for (size_t N : {0ul, 1ul, 2ul, 3ul, 7ul, 64ul, 513ul}) {
    std::vector<DdInterval> X = randomDdIntervals(R, N);
    std::vector<DdInterval> Y = randomDdIntervals(R, N);
    std::vector<DdInterval> C = randomDdIntervals(R, N);
    std::vector<DdInterval> D(N);

    forceIsa(Isa::Scalar);
    std::vector<DdInterval> RefAdd(N), RefSub(N), RefMul(N), RefFma(N);
    ddarr_add(RefAdd.data(), X.data(), Y.data(), N);
    ddarr_sub(RefSub.data(), X.data(), Y.data(), N);
    ddarr_mul(RefMul.data(), X.data(), Y.data(), N);
    ddarr_fma(RefFma.data(), X.data(), Y.data(), C.data(), N);

    for (Isa Tier : supportedIsas()) {
      forceIsa(Tier);
      ddarr_add(D.data(), X.data(), Y.data(), N);
      EXPECT_TRUE(sameBits(D, RefAdd)) << isaName(Tier) << " add N=" << N;
      ddarr_sub(D.data(), X.data(), Y.data(), N);
      EXPECT_TRUE(sameBits(D, RefSub)) << isaName(Tier) << " sub N=" << N;
      ddarr_mul(D.data(), X.data(), Y.data(), N);
      EXPECT_TRUE(sameBits(D, RefMul)) << isaName(Tier) << " mul N=" << N;
      ddarr_fma(D.data(), X.data(), Y.data(), C.data(), N);
      EXPECT_TRUE(sameBits(D, RefFma)) << isaName(Tier) << " fma N=" << N;
    }
  }
}

//===----------------------------------------------------------------------===//
// (b) Elementwise soundness against the expansion oracles
//===----------------------------------------------------------------------===//

TEST(DdBatchTest, AddSubMulEncloseExactEndpointArithmetic) {
  IsaGuard Restore;
  test::Rng R(0xdd5d);
  const size_t N = 128;
  std::vector<DdInterval> X = randomDdIntervals(R, N);
  std::vector<DdInterval> Y = randomDdIntervals(R, N);
  std::vector<DdInterval> D(N);

  for (Isa Tier : supportedIsas()) {
    forceIsa(Tier);

    ddarr_add(D.data(), X.data(), Y.data(), N);
    for (size_t I = 0; I < N; ++I) {
      // Corner sums lo+lo and hi+hi are attainable reals of X + Y.
      RoundNearestScope RN;
      Dd XLo = ddNeg(X[I].NegLo), YLo = ddNeg(Y[I].NegLo);
      EXPECT_TRUE(test::containsExact(D[I], test::exactDdSum(XLo, YLo)))
          << isaName(Tier) << " add lo @" << I;
      EXPECT_TRUE(
          test::containsExact(D[I], test::exactDdSum(X[I].Hi, Y[I].Hi)))
          << isaName(Tier) << " add hi @" << I;
    }

    ddarr_mul(D.data(), X.data(), Y.data(), N);
    for (size_t I = 0; I < N; ++I) {
      // Every corner product is an attainable real of X * Y.
      RoundNearestScope RN;
      Dd XLo = ddNeg(X[I].NegLo), YLo = ddNeg(Y[I].NegLo);
      for (const Dd &U : {XLo, X[I].Hi})
        for (const Dd &V : {YLo, Y[I].Hi})
          EXPECT_TRUE(test::containsExact(D[I], test::exactDdProduct(U, V)))
              << isaName(Tier) << " mul @" << I;
    }
  }
}

//===----------------------------------------------------------------------===//
// (c) Reduction determinism and soundness
//===----------------------------------------------------------------------===//

TEST(DdBatchTest, SumDotBitsIndependentOfIsaSelection) {
  IsaGuard Restore;
  test::Rng R(0xdd50);
  for (size_t N : {0ul, 1ul, 17ul, 256ul, 1000ul}) {
    std::vector<DdInterval> X = randomDdIntervals(R, N);
    std::vector<DdInterval> Y = randomDdIntervals(R, N);
    clearForcedIsa();
    DdInterval RefSum = ddarr_sum(X.data(), N);
    DdInterval RefDot = ddarr_dot(X.data(), Y.data(), N);
    for (Isa Tier : supportedIsas()) {
      forceIsa(Tier);
      DdInterval S = ddarr_sum(X.data(), N);
      DdInterval T = ddarr_dot(X.data(), Y.data(), N);
      EXPECT_EQ(std::memcmp(&S, &RefSum, sizeof(DdInterval)), 0)
          << isaName(Tier) << " sum N=" << N;
      EXPECT_EQ(std::memcmp(&T, &RefDot, sizeof(DdInterval)), 0)
          << isaName(Tier) << " dot N=" << N;
    }
  }
}

TEST(DdBatchTest, SumEnclosesExactCornerSums) {
  test::Rng R(0xdd51);
  const size_t N = 200;
  std::vector<DdInterval> X = randomDdIntervals(R, N);
  DdInterval Sum = ddarr_sum(X.data(), N);

  // Exact sums of the lower and upper endpoints, via the error-free
  // expansion accumulator, must both lie inside the result.
  RoundNearestScope RN;
  Expansion Lo, Hi;
  for (size_t I = 0; I < N; ++I) {
    Lo.add(-X[I].NegLo.H);
    Lo.add(-X[I].NegLo.L);
    Hi.add(X[I].Hi.H);
    Hi.add(X[I].Hi.L);
  }
  EXPECT_TRUE(test::containsExact(Sum, Lo));
  EXPECT_TRUE(test::containsExact(Sum, Hi));
}

TEST(DdBatchTest, DotEnclosesExactLoCornerSum) {
  test::Rng R(0xdd52);
  const size_t N = 100;
  std::vector<DdInterval> X = randomDdIntervals(R, N);
  std::vector<DdInterval> Y = randomDdIntervals(R, N);
  DdInterval Dot = ddarr_dot(X.data(), Y.data(), N);

  // sum_i X[i].lo * Y[i].lo picks one attainable corner per product, so
  // the exact sum is an attainable real of the dot product.
  RoundNearestScope RN;
  Expansion E;
  for (size_t I = 0; I < N; ++I) {
    double XH = -X[I].NegLo.H, XL = -X[I].NegLo.L;
    double YH = -Y[I].NegLo.H, YL = -Y[I].NegLo.L;
    E.addProduct(XH, YH);
    E.addProduct(XH, YL);
    E.addProduct(XL, YH);
    E.addProduct(XL, YL);
  }
  EXPECT_TRUE(test::containsExact(Dot, E));
}

TEST(DdBatchTest, ZeroLengthReductionsYieldPointZero) {
  DdInterval Sum = ddarr_sum(nullptr, 0);
  DdInterval Dot = ddarr_dot(nullptr, nullptr, 0);
  RoundUpwardScope Up;
  Interval SH = Sum.outerHull(), DH = Dot.outerHull();
  EXPECT_EQ(SH.lo(), 0.0);
  EXPECT_EQ(SH.hi(), 0.0);
  EXPECT_EQ(DH.lo(), 0.0);
  EXPECT_EQ(DH.hi(), 0.0);
}

//===----------------------------------------------------------------------===//
// (d) Dispatch mapping
//===----------------------------------------------------------------------===//

TEST(DdBatchTest, KernelTableResolvesToDocumentedTiers) {
  IsaGuard Restore;
  for (Isa Tier : supportedIsas()) {
    forceIsa(Tier);
    const char *Want =
        Tier >= Isa::Avx2Fma ? "dd-avx2" : "dd-scalar";
    EXPECT_STREQ(ddKernels().Name, Want) << isaName(Tier);
  }
}

} // namespace
