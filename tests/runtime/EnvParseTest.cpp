//===- EnvParseTest.cpp - IGEN_THREADS / IGEN_ISA parsing tests -----------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// The runtime reads environment knobs -- IGEN_THREADS, IGEN_ISA, and
// the tiering pair IGEN_TIER_WIDTH / IGEN_TIER_MAX. All must fall back
// gracefully on bad input *and* say so: a typo'd override silently
// ignored is a user running a different configuration than they think.
// These tests drive the pure parsing entry points the env readers are
// built on.
//
//===----------------------------------------------------------------------===//

#include "profile/TierRuntime.h"
#include "runtime/CpuDispatch.h"
#include "runtime/ThreadPool.h"

#include <gtest/gtest.h>

using igen::runtime::Isa;
using igen::runtime::resolveIsaFromSpec;
using igen::runtime::ThreadPool;

TEST(EnvParse, ThreadsAcceptsPositiveIntegers) {
  std::string W;
  EXPECT_EQ(ThreadPool::participantsFromEnv("1", 8, &W), 1u);
  EXPECT_EQ(ThreadPool::participantsFromEnv("6", 8, &W), 6u);
  EXPECT_TRUE(W.empty());
}

TEST(EnvParse, ThreadsClampsToUsefulRange) {
  std::string W;
  // Oversubscription clamps to max(4, hardware).
  EXPECT_EQ(ThreadPool::participantsFromEnv("64", 8, &W), 8u);
  EXPECT_EQ(ThreadPool::participantsFromEnv("64", 2, &W), 4u);
  EXPECT_TRUE(W.empty());
}

TEST(EnvParse, ThreadsUnsetOrEmptyIsNotAnError) {
  std::string W;
  EXPECT_EQ(ThreadPool::participantsFromEnv(nullptr, 8, &W), 0u);
  EXPECT_EQ(ThreadPool::participantsFromEnv("", 8, &W), 0u);
  EXPECT_TRUE(W.empty());
}

TEST(EnvParse, ThreadsWarnsOnMalformedValues) {
  for (const char *Bad : {"abc", "3x", "-2", "0", " 4 "}) {
    std::string W;
    EXPECT_EQ(ThreadPool::participantsFromEnv(Bad, 8, &W), 0u)
        << "spec: " << Bad;
    EXPECT_NE(W.find("IGEN_THREADS"), std::string::npos) << "spec: " << Bad;
    EXPECT_NE(W.find(Bad), std::string::npos) << "spec: " << Bad;
  }
}

TEST(EnvParse, IsaAcceptsKnownSupportedNames) {
  std::string W;
  EXPECT_EQ(resolveIsaFromSpec("scalar", &W), Isa::Scalar);
  // Every x86-64 CPU has SSE2; on other hosts the fallback is still a
  // supported tier and must warn.
  Isa Sse = resolveIsaFromSpec("sse2", &W);
  EXPECT_TRUE(igen::runtime::isaSupported(Sse));
  if (igen::runtime::isaSupported(Isa::Sse2)) {
    EXPECT_EQ(Sse, Isa::Sse2);
    EXPECT_TRUE(W.empty());
  }
}

TEST(EnvParse, IsaUnsetOrEmptyAutoDetectsSilently) {
  std::string W;
  EXPECT_EQ(resolveIsaFromSpec(nullptr, &W), igen::runtime::detectIsa());
  EXPECT_EQ(resolveIsaFromSpec("", &W), igen::runtime::detectIsa());
  EXPECT_TRUE(W.empty());
}

TEST(EnvParse, IsaAcceptsAvx512WhereSupported) {
  std::string W;
  Isa Got = resolveIsaFromSpec("avx512", &W);
  EXPECT_TRUE(igen::runtime::isaSupported(Got));
  if (igen::runtime::isaSupported(Isa::Avx512)) {
    EXPECT_EQ(Got, Isa::Avx512);
    EXPECT_TRUE(W.empty());
  } else {
    // Known name, unsupported CPU: fall back to detection, but say so.
    EXPECT_EQ(Got, igen::runtime::detectIsa());
    EXPECT_FALSE(W.empty());
  }
}

TEST(EnvParse, IsaWarnsOnUnknownNamesAndFallsBack) {
  for (const char *Bad : {"avx1024", "AVX2", "fast", "sse", "2"}) {
    std::string W;
    EXPECT_EQ(resolveIsaFromSpec(Bad, &W), igen::runtime::detectIsa())
        << "spec: " << Bad;
    EXPECT_NE(W.find("unknown IGEN_ISA"), std::string::npos)
        << "spec: " << Bad;
    EXPECT_NE(W.find(Bad), std::string::npos) << "spec: " << Bad;
  }
}

TEST(EnvParse, TierWidthAcceptsFiniteDecimals) {
  std::string W;
  EXPECT_EQ(igen::tier::widthFromSpec("1e-6", &W), 1e-6);
  EXPECT_EQ(igen::tier::widthFromSpec("0.5", &W), 0.5);
  EXPECT_EQ(igen::tier::widthFromSpec("1e30", &W), 1e30);
  EXPECT_TRUE(W.empty());
}

TEST(EnvParse, TierWidthUnsetOrEmptyUsesDefaultSilently) {
  std::string W;
  EXPECT_EQ(igen::tier::widthFromSpec(nullptr, &W),
            igen::tier::DefaultWidthThreshold);
  EXPECT_EQ(igen::tier::widthFromSpec("", &W),
            igen::tier::DefaultWidthThreshold);
  EXPECT_TRUE(W.empty());
}

TEST(EnvParse, TierWidthWarnsOnMalformedValues) {
  // The threshold must be a finite decimal > 0: zero and negatives
  // would make every region "blown up", nan/inf would make none.
  for (const char *Bad : {"abc", "-1", "0", "nan", "inf", "1e999", "2x"}) {
    std::string W;
    EXPECT_EQ(igen::tier::widthFromSpec(Bad, &W),
              igen::tier::DefaultWidthThreshold)
        << "spec: " << Bad;
    EXPECT_NE(W.find("IGEN_TIER_WIDTH"), std::string::npos)
        << "spec: " << Bad;
    EXPECT_NE(W.find(Bad), std::string::npos) << "spec: " << Bad;
  }
}

TEST(EnvParse, TierMaxAcceptsSupportedTiers) {
  std::string W;
  EXPECT_EQ(igen::tier::maxTierFromSpec("1", &W), 1);
  EXPECT_EQ(igen::tier::maxTierFromSpec("2", &W), 2);
  EXPECT_EQ(igen::tier::maxTierFromSpec("3", &W), 3);
  EXPECT_TRUE(W.empty());
}

TEST(EnvParse, TierMaxUnsetOrEmptyUsesDefaultSilently) {
  std::string W;
  EXPECT_EQ(igen::tier::maxTierFromSpec(nullptr, &W),
            igen::tier::DefaultMaxTier);
  EXPECT_EQ(igen::tier::maxTierFromSpec("", &W), igen::tier::DefaultMaxTier);
  EXPECT_TRUE(W.empty());
}

TEST(EnvParse, TierMaxWarnsOnOutOfRangeOrGarbage) {
  for (const char *Bad : {"0", "4", "-1", "two", "2.5"}) {
    std::string W;
    EXPECT_EQ(igen::tier::maxTierFromSpec(Bad, &W),
              igen::tier::DefaultMaxTier)
        << "spec: " << Bad;
    EXPECT_NE(W.find("IGEN_TIER_MAX"), std::string::npos) << "spec: " << Bad;
    EXPECT_NE(W.find(Bad), std::string::npos) << "spec: " << Bad;
  }
}
