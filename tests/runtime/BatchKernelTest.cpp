//===- BatchKernelTest.cpp - Batched runtime tests ------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Covers the batched interval array runtime:
//  (a) every batched elementwise kernel, on every supported ISA tier,
//      encloses (for the fused FMA tier: is enclosed by *and* still
//      sound against) the scalar reference computed with the Interval
//      operations; div and sqrt are additionally bit-identical to the
//      sign-specialized scalar routing on all inputs, and every
//      (tier, op) kernel-table row is verified populated;
//  (b) sum/dot are bit-identical across 1/2/4 threads and across ISA
//      overrides, and enclose the sequential SumAccumulatorF64 result;
//  (c) worker threads restore round-to-nearest after every reduction
//      task, and the calling thread's mode survives the entry points.
//
//===----------------------------------------------------------------------===//

#include "runtime/BatchKernels.h"

#include "interval/Accumulator.h"
#include "interval/PolyKernels.h"
#include "runtime/ThreadPool.h"
#include "../interval/TestHelpers.h"

#include <cfenv>
#include <cstring>
#include <vector>

#include "gtest/gtest.h"

using namespace igen;
using namespace igen::runtime;

namespace {

/// ISA tiers the running CPU can execute (always includes Scalar).
std::vector<Isa> supportedIsas() {
  std::vector<Isa> Out;
  for (int I = 0; I < NumIsas; ++I)
    if (isaSupported(static_cast<Isa>(I)))
      Out.push_back(static_cast<Isa>(I));
  return Out;
}

/// Restores auto-detection when a test finishes forcing tiers.
struct IsaGuard {
  ~IsaGuard() { clearForcedIsa(); }
};

/// Random intervals across many magnitudes, with some special endpoints.
std::vector<Interval> randomIntervals(test::Rng &R, size_t N,
                                      bool Specials) {
  std::vector<Interval> V(N);
  int SpecialCount = 0;
  const double *Sp = test::specialValues(SpecialCount);
  for (size_t I = 0; I < N; ++I) {
    if (Specials && R.intIn(0, 15) == 0) {
      double A = Sp[R.intIn(0, SpecialCount - 1)];
      double B = Sp[R.intIn(0, SpecialCount - 1)];
      if (std::isnan(A) || std::isnan(B))
        V[I] = Interval::nan();
      else
        V[I] = Interval::fromEndpoints(std::fmin(A, B), std::fmax(A, B));
    } else {
      V[I] = R.moderateInterval();
    }
  }
  return V;
}

/// Moderate, overflow-free, zero-free intervals: the domain on which the
/// cross-ISA bit-identity guarantee holds (no inf candidates, no signed
/// zero ties in the candidate maxima).
std::vector<Interval> benignIntervals(test::Rng &R, size_t N) {
  std::vector<Interval> V(N);
  for (size_t I = 0; I < N; ++I) {
    double C = R.uniform(0.25, 2.0) * (R.intIn(0, 1) ? 1.0 : -1.0);
    V[I] = Interval::fromEndpoints(C, nextUp(nextUp(C)));
  }
  return V;
}

bool sameBits(const Interval &A, const Interval &B) {
  return std::memcmp(&A, &B, sizeof(Interval)) == 0;
}

//===----------------------------------------------------------------------===//
// (a) Elementwise kernels enclose the scalar reference on every tier
//===----------------------------------------------------------------------===//

class BatchKernelIsaTest : public ::testing::TestWithParam<int> {};

TEST_P(BatchKernelIsaTest, AddSubMulScaleMatchScalarReference) {
  Isa Tier = static_cast<Isa>(GetParam());
  if (!isaSupported(Tier))
    GTEST_SKIP() << "CPU lacks " << isaName(Tier);
  IsaGuard Restore;
  forceIsa(Tier);

  test::Rng R(0x5eed0 + GetParam());
  for (size_t N : {0ul, 1ul, 2ul, 3ul, 5ul, 8ul, 17ul, 64ul, 1023ul}) {
    std::vector<Interval> X = randomIntervals(R, N, /*Specials=*/true);
    std::vector<Interval> Y = randomIntervals(R, N, /*Specials=*/true);
    std::vector<Interval> D(N), Ref(N);
    Interval S = R.moderateInterval();

    iarr_add(D.data(), X.data(), Y.data(), N);
    {
      RoundUpwardScope Up;
      for (size_t I = 0; I < N; ++I)
        Ref[I] = iAdd(X[I], Y[I]);
    }
    for (size_t I = 0; I < N; ++I)
      EXPECT_TRUE(D[I].containsInterval(Ref[I]) &&
                  Ref[I].containsInterval(D[I]))
          << isaName(Tier) << " add @" << I;

    iarr_sub(D.data(), X.data(), Y.data(), N);
    {
      RoundUpwardScope Up;
      for (size_t I = 0; I < N; ++I)
        Ref[I] = iSub(X[I], Y[I]);
    }
    for (size_t I = 0; I < N; ++I)
      EXPECT_TRUE(D[I].containsInterval(Ref[I]) &&
                  Ref[I].containsInterval(D[I]))
          << isaName(Tier) << " sub @" << I;

    iarr_mul(D.data(), X.data(), Y.data(), N);
    {
      RoundUpwardScope Up;
      for (size_t I = 0; I < N; ++I)
        Ref[I] = iMul(X[I], Y[I]);
    }
    for (size_t I = 0; I < N; ++I)
      EXPECT_TRUE(D[I].containsInterval(Ref[I]) &&
                  Ref[I].containsInterval(D[I]))
          << isaName(Tier) << " mul @" << I;

    iarr_scale(D.data(), X.data(), S, N);
    {
      RoundUpwardScope Up;
      for (size_t I = 0; I < N; ++I)
        Ref[I] = iMul(X[I], S);
    }
    for (size_t I = 0; I < N; ++I)
      EXPECT_TRUE(D[I].containsInterval(Ref[I]) &&
                  Ref[I].containsInterval(D[I]))
          << isaName(Tier) << " scale @" << I;
  }
}

TEST_P(BatchKernelIsaTest, FmaIsSoundAndAtMostComposedWidth) {
  Isa Tier = static_cast<Isa>(GetParam());
  if (!isaSupported(Tier))
    GTEST_SKIP() << "CPU lacks " << isaName(Tier);
  IsaGuard Restore;
  forceIsa(Tier);

  test::Rng R(0xfaa + GetParam());
  for (size_t N : {1ul, 2ul, 3ul, 4ul, 7ul, 64ul, 513ul}) {
    std::vector<Interval> A = randomIntervals(R, N, /*Specials=*/true);
    std::vector<Interval> B = randomIntervals(R, N, /*Specials=*/true);
    std::vector<Interval> C = randomIntervals(R, N, /*Specials=*/true);
    std::vector<Interval> D(N), Ref(N);

    iarr_fma(D.data(), A.data(), B.data(), C.data(), N);
    {
      RoundUpwardScope Up;
      for (size_t I = 0; I < N; ++I)
        Ref[I] = iAdd(iMul(A[I], B[I]), C[I]);
    }
    for (size_t I = 0; I < N; ++I) {
      // The fused tier may be tighter, never wider, than the composed
      // reference...
      EXPECT_TRUE(Ref[I].containsInterval(D[I]))
          << isaName(Tier) << " fma wider than composed @" << I;
      // ...and must still contain the exact a*b + c for endpoint reals
      // (quad precision is exact for one product plus one addend).
      if (A[I].hasNaN() || B[I].hasNaN() || C[I].hasNaN())
        continue;
      for (double U : {A[I].lo(), A[I].hi()})
        for (double V : {B[I].lo(), B[I].hi()})
          for (double W : {C[I].lo(), C[I].hi()}) {
            if (std::isinf(U) || std::isinf(V) || std::isinf(W))
              continue;
            __float128 Exact = static_cast<__float128>(U) * V + W;
            EXPECT_TRUE(test::containsQuad(D[I], Exact))
                << isaName(Tier) << " fma unsound @" << I;
          }
    }
  }
}

/// Divisors drawn from every classification the div kernels route on:
/// strictly positive, strictly negative, zero-containing, special
/// (inf/NaN endpoints), and unconstrained moderate.
std::vector<Interval> divisorIntervals(test::Rng &R, size_t N) {
  std::vector<Interval> V(N);
  int SpecialCount = 0;
  const double *Sp = test::specialValues(SpecialCount);
  for (size_t I = 0; I < N; ++I) {
    switch (R.intIn(0, 4)) {
    case 0: { // strictly positive
      double Lo = std::ldexp(R.uniform(0.5, 1.0), R.intIn(-20, 20));
      V[I] = Interval::fromEndpoints(Lo, Lo * R.uniform(1.0, 4.0));
      break;
    }
    case 1: { // strictly negative
      double Hi = -std::ldexp(R.uniform(0.5, 1.0), R.intIn(-20, 20));
      V[I] = Interval::fromEndpoints(Hi * R.uniform(1.0, 4.0), Hi);
      break;
    }
    case 2: // zero-containing (generic slow path)
      V[I] = Interval::fromEndpoints(-R.uniform(0.0, 2.0),
                                     R.uniform(0.0, 2.0));
      break;
    case 3: { // special endpoints, incl. NaN
      double A = Sp[R.intIn(0, SpecialCount - 1)];
      double B = Sp[R.intIn(0, SpecialCount - 1)];
      if (std::isnan(A) || std::isnan(B))
        V[I] = Interval::nan();
      else
        V[I] = Interval::fromEndpoints(std::fmin(A, B), std::fmax(A, B));
      break;
    }
    default:
      V[I] = R.moderateInterval();
    }
  }
  return V;
}

TEST_P(BatchKernelIsaTest, DivBitIdenticalToSignSpecializedRouting) {
  Isa Tier = static_cast<Isa>(GetParam());
  if (!isaSupported(Tier))
    GTEST_SKIP() << "CPU lacks " << isaName(Tier);
  IsaGuard Restore;
  forceIsa(Tier);

  // Unlike mul, div is bit-identical on ALL inputs: the vector fast
  // paths compute the same cross-family NaN screen the scalar iDivP /
  // iDivN routines do, so fast-path-vs-fallback decisions converge.
  test::Rng R(0xd1f + GetParam());
  for (size_t N : {0ul, 1ul, 2ul, 3ul, 5ul, 8ul, 17ul, 64ul, 1023ul}) {
    std::vector<Interval> X = randomIntervals(R, N, /*Specials=*/true);
    std::vector<Interval> Y = divisorIntervals(R, N);
    std::vector<Interval> D(N), Ref(N);

    iarr_div(D.data(), X.data(), Y.data(), N);
    {
      RoundUpwardScope Up;
      for (size_t I = 0; I < N; ++I) {
        // The routing contract shared by every tier (NaN divisors fail
        // both sign tests and take the generic routine).
        if (-Y[I].NegLo > 0.0)
          Ref[I] = iDivP(X[I], Y[I]);
        else if (Y[I].Hi < 0.0)
          Ref[I] = iDivN(X[I], Y[I]);
        else
          Ref[I] = iDiv(X[I], Y[I]);
      }
    }
    for (size_t I = 0; I < N; ++I)
      EXPECT_TRUE(sameBits(D[I], Ref[I]))
          << isaName(Tier) << " div @" << I << " X=[" << X[I].lo() << ", "
          << X[I].hi() << "] Y=[" << Y[I].lo() << ", " << Y[I].hi()
          << "] got [" << -D[I].NegLo << ", " << D[I].Hi << "] want ["
          << -Ref[I].NegLo << ", " << Ref[I].Hi << "]";

    // Soundness spot-check: endpoint quotients are contained whenever
    // they are well-defined reals.
    for (size_t I = 0; I < N; ++I) {
      if (X[I].hasNaN() || Y[I].hasNaN())
        continue;
      if (Y[I].contains(0.0))
        continue;
      for (double U : {X[I].lo(), X[I].hi()})
        for (double V : {Y[I].lo(), Y[I].hi()}) {
          if (std::isinf(U) || std::isinf(V))
            continue;
          __float128 Exact = static_cast<__float128>(U) / V;
          EXPECT_TRUE(test::containsQuad(D[I], Exact))
              << isaName(Tier) << " div unsound @" << I;
        }
    }
  }
}

/// Inputs for sqrt spanning its routing: positive fast-domain, zero and
/// negative lower endpoints, infinite uppers, and NaN.
std::vector<Interval> sqrtInputs(test::Rng &R, size_t N) {
  std::vector<Interval> V(N);
  for (size_t I = 0; I < N; ++I) {
    switch (R.intIn(0, 5)) {
    case 0:
      V[I] = Interval::nan();
      break;
    case 1: // negative lower endpoint: NaN from iSqrt
      V[I] = Interval::fromEndpoints(-R.uniform(0.0, 2.0),
                                     R.uniform(0.0, 2.0));
      break;
    case 2: // exact zero lower endpoint (outside the strict fast screen)
      V[I] = Interval::fromEndpoints(0.0, R.uniform(0.0, 4.0));
      break;
    case 3: // infinite upper endpoint
      V[I] = Interval::fromEndpoints(
          R.uniform(0.0, 1.0), std::numeric_limits<double>::infinity());
      break;
    default: { // strictly positive across many binades
      double Lo = std::ldexp(R.uniform(0.5, 1.0), R.intIn(-300, 300));
      V[I] = Interval::fromEndpoints(Lo, Lo * R.uniform(1.0, 4.0));
    }
    }
  }
  return V;
}

TEST_P(BatchKernelIsaTest, SqrtBitIdenticalToScalarOnAllInputs) {
  Isa Tier = static_cast<Isa>(GetParam());
  if (!isaSupported(Tier))
    GTEST_SKIP() << "CPU lacks " << isaName(Tier);
  IsaGuard Restore;
  forceIsa(Tier);

  test::Rng R(0x5c27 + GetParam());
  for (size_t N : {0ul, 1ul, 2ul, 3ul, 5ul, 8ul, 17ul, 64ul, 1023ul}) {
    std::vector<Interval> X = sqrtInputs(R, N);
    std::vector<Interval> D(N), Ref(N);
    iarr_sqrt(D.data(), X.data(), N);
    {
      RoundUpwardScope Up;
      for (size_t I = 0; I < N; ++I)
        Ref[I] = iSqrt(X[I]);
    }
    for (size_t I = 0; I < N; ++I)
      EXPECT_TRUE(sameBits(D[I], Ref[I]))
          << isaName(Tier) << " sqrt @" << I << " X=[" << X[I].lo() << ", "
          << X[I].hi() << "] got [" << -D[I].NegLo << ", " << D[I].Hi
          << "] want [" << -Ref[I].NegLo << ", " << Ref[I].Hi << "]";

    // Soundness: sqrt of each finite non-negative endpoint is contained.
    for (size_t I = 0; I < N; ++I) {
      if (X[I].hasNaN() || X[I].lo() < 0.0)
        continue;
      for (double U : {X[I].lo(), X[I].hi()}) {
        if (std::isinf(U))
          continue;
        long double S;
        {
          RoundNearestScope Near;
          S = sqrtl(static_cast<long double>(U));
        }
        EXPECT_TRUE(test::containsQuad(D[I], static_cast<__float128>(S)))
            << isaName(Tier) << " sqrt unsound @" << I << " x=" << U;
      }
    }
  }
}

/// Interval inputs for one elementary function, mixing fast-domain
/// elements with out-of-domain / special ones so the SIMD screens and
/// per-element fallbacks are exercised in the same batch.
std::vector<Interval> elemInputs(test::Rng &R, size_t N, char Fn) {
  std::vector<Interval> V(N);
  for (size_t I = 0; I < N; ++I) {
    int Kind = R.intIn(0, 9);
    if (Kind == 0) {
      V[I] = Interval::nan();
      continue;
    }
    if (Kind == 1) {
      V[I] = Interval::fromEndpoints(
          -std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity());
      continue;
    }
    double C, W;
    switch (Fn) {
    case 'e': // straddles the |x| <= 690 fast limit when Kind == 2
      C = Kind == 2 ? R.uniform(680.0, 720.0) : R.uniform(-690.0, 690.0);
      W = R.uniform(0.0, 4.0);
      break;
    case 'l': // positive log-spaced; Kind == 2 dips to subnormal/zero
      C = std::ldexp(R.uniform(1.0, 2.0), R.intIn(-1021, 1023));
      if (Kind == 2) { // lower endpoint outside the fast domain
        V[I] = Interval::fromEndpoints(I % 2 ? 0.0 : 0x1p-1040, C);
        continue;
      }
      W = C * R.uniform(0.0, 0.5);
      break;
    default: // sin/cos: straddles the 2^20 limit when Kind == 2
      C = R.uniform(-1.0, 1.0) * (Kind == 2 ? 0x1.2p20 : 0x1p20);
      W = R.uniform(0.0, 8.0);
      break;
    }
    V[I] = Interval::fromEndpoints(C - W, C + W);
  }
  return V;
}

TEST_P(BatchKernelIsaTest, ElementaryBitIdenticalToScalarKernels) {
  Isa Tier = static_cast<Isa>(GetParam());
  if (!isaSupported(Tier))
    GTEST_SKIP() << "CPU lacks " << isaName(Tier);
  IsaGuard Restore;
  forceIsa(Tier);

  using ArrFn = void (*)(Interval *, const Interval *, size_t);
  using ScalFn = Interval (*)(const Interval &);
  struct Case {
    char Tag;
    ArrFn Arr;
    ScalFn Scal;
  } Cases[] = {{'e', iarr_exp, iExpFast},
               {'l', iarr_log, iLogFast},
               {'s', iarr_sin, iSinFast},
               {'c', iarr_cos, iCosFast}};

  test::Rng R(0xe1e0 + GetParam());
  for (size_t N : {0ul, 1ul, 2ul, 3ul, 5ul, 8ul, 17ul, 64ul, 1023ul}) {
    for (const Case &C : Cases) {
      std::vector<Interval> X = elemInputs(R, N, C.Tag);
      std::vector<Interval> D(N), Ref(N);
      C.Arr(D.data(), X.data(), N);
      {
        RoundUpwardScope Up;
        for (size_t I = 0; I < N; ++I)
          Ref[I] = C.Scal(X[I]);
      }
      for (size_t I = 0; I < N; ++I)
        EXPECT_TRUE(sameBits(D[I], Ref[I]))
            << isaName(Tier) << " " << C.Tag << " @" << I << " got ["
            << -D[I].NegLo << ", " << D[I].Hi << "] want [" << -Ref[I].NegLo
            << ", " << Ref[I].Hi << "]";
    }
  }
}

TEST_P(BatchKernelIsaTest, ElementaryEnclosesTrueValues) {
  Isa Tier = static_cast<Isa>(GetParam());
  if (!isaSupported(Tier))
    GTEST_SKIP() << "CPU lacks " << isaName(Tier);
  IsaGuard Restore;
  forceIsa(Tier);

  constexpr size_t N = 512;
  test::Rng R(0x50111d + GetParam());
  std::vector<Interval> X(N), D(N);
  std::vector<double> Pt(N);
  for (size_t I = 0; I < N; ++I) {
    Pt[I] = R.uniform(-600.0, 600.0);
    X[I] = Interval::fromPoint(Pt[I]);
  }

  auto check = [&](const char *Name, auto RefLd) {
    for (size_t I = 0; I < N; ++I) {
      long double F;
      {
        RoundNearestScope Near;
        F = RefLd(static_cast<long double>(Pt[I]));
      }
      EXPECT_TRUE(test::containsQuad(D[I], static_cast<__float128>(F)))
          << isaName(Tier) << " " << Name << " unsound at x=" << Pt[I];
    }
  };

  iarr_exp(D.data(), X.data(), N);
  check("exp", [](long double V) { return expl(V); });
  iarr_sin(D.data(), X.data(), N);
  check("sin", [](long double V) { return sinl(V); });
  iarr_cos(D.data(), X.data(), N);
  check("cos", [](long double V) { return cosl(V); });
  for (size_t I = 0; I < N; ++I) {
    Pt[I] = std::ldexp(R.uniform(1.0, 2.0), R.intIn(-1021, 1023));
    X[I] = Interval::fromPoint(Pt[I]);
  }
  iarr_log(D.data(), X.data(), N);
  check("log", [](long double V) { return logl(V); });
}

INSTANTIATE_TEST_SUITE_P(AllIsas, BatchKernelIsaTest,
                         ::testing::Range(0, NumIsas),
                         [](const ::testing::TestParamInfo<int> &Info) {
                           return isaName(static_cast<Isa>(Info.param));
                         });

//===----------------------------------------------------------------------===//
// Kernel-table completeness
//===----------------------------------------------------------------------===//

TEST(KernelTableTest, EveryRowPopulatedForEveryIsa) {
  // Guards against a new op being added to KernelTable but left null in
  // one tier's table: the dispatcher would hand out a null function
  // pointer for that (tier, op) pair. The check names the offender.
  std::string Missing;
  EXPECT_TRUE(kernelTablesComplete(&Missing)) << Missing;
}

TEST(KernelTableTest, TableNamesMatchTierNames) {
  IsaGuard Restore;
  for (Isa Tier : supportedIsas()) {
    forceIsa(Tier);
    EXPECT_STREQ(kernels().Name, isaName(Tier));
  }
}

//===----------------------------------------------------------------------===//
// (b) Reduction reproducibility and soundness
//===----------------------------------------------------------------------===//

TEST(BatchReduceTest, SumEnclosesSequentialAccumulatorAndExactSum) {
  test::Rng R(0xacc);
  for (size_t N : {1ul, 5ul, 1000ul, 1024ul, 1025ul, 4096ul, 10000ul}) {
    std::vector<Interval> X = randomIntervals(R, N, /*Specials=*/false);
    Interval Batched = iarr_sum(X.data(), N);

    // Sequential reference: the reduction accumulator the transformer
    // emits today.
    RoundUpwardScope Up;
    SumAccumulatorF64 Acc;
    Acc.init(X[0]);
    for (size_t I = 1; I < N; ++I)
      Acc.accumulate(X[I]);
    Interval Seq = Acc.reduce();
    EXPECT_TRUE(Batched.containsInterval(Seq)) << "N=" << N;

    // Exact endpoint sums via the error-free exponent-indexed
    // accumulator: the batched interval must enclose them.
    ExactAccumulator NegLo, Hi;
    for (size_t I = 0; I < N; ++I) {
      NegLo.add(X[I].NegLo);
      Hi.add(X[I].Hi);
    }
    Dd ExactNeg = NegLo.reduceUp(), ExactHi = Hi.reduceUp();
    EXPECT_GE(Batched.NegLo, ddToDoubleUp(ExactNeg)) << "N=" << N;
    EXPECT_GE(Batched.Hi, ddToDoubleUp(ExactHi)) << "N=" << N;
  }
}

TEST(BatchReduceTest, SumBitIdenticalAcrossThreadCounts) {
  test::Rng R(0xbeef);
  for (size_t N : {1ul, 1024ul, 3000ul, 8192ul, 50000ul}) {
    std::vector<Interval> X = randomIntervals(R, N, /*Specials=*/false);
    Interval T1 = iarr_sum_par(X.data(), N, 1);
    Interval T2 = iarr_sum_par(X.data(), N, 2);
    Interval T4 = iarr_sum_par(X.data(), N, 4);
    Interval Serial = iarr_sum(X.data(), N);
    EXPECT_TRUE(sameBits(T1, Serial)) << "N=" << N;
    EXPECT_TRUE(sameBits(T2, Serial)) << "N=" << N;
    EXPECT_TRUE(sameBits(T4, Serial)) << "N=" << N;
  }
}

TEST(ThreadPoolTest, ParticipantsFromEnvParsesAndClamps) {
  using igen::runtime::ThreadPool;
  // Invalid specs fall back (0): unset, empty, junk, trailing junk,
  // zero, and negatives.
  EXPECT_EQ(ThreadPool::participantsFromEnv(nullptr, 8), 0u);
  EXPECT_EQ(ThreadPool::participantsFromEnv("", 8), 0u);
  EXPECT_EQ(ThreadPool::participantsFromEnv("many", 8), 0u);
  EXPECT_EQ(ThreadPool::participantsFromEnv("8cores", 8), 0u);
  EXPECT_EQ(ThreadPool::participantsFromEnv("0", 8), 0u);
  EXPECT_EQ(ThreadPool::participantsFromEnv("-3", 8), 0u);
  // In-range values pass through.
  EXPECT_EQ(ThreadPool::participantsFromEnv("1", 8), 1u);
  EXPECT_EQ(ThreadPool::participantsFromEnv("6", 8), 6u);
  // Oversubscription clamps to max(4, hardware).
  EXPECT_EQ(ThreadPool::participantsFromEnv("512", 8), 8u);
  EXPECT_EQ(ThreadPool::participantsFromEnv("512", 1), 4u);
  EXPECT_EQ(ThreadPool::participantsFromEnv("3", 1), 3u);
  EXPECT_EQ(ThreadPool::participantsFromEnv("99999999999999999999", 8), 8u);
}

TEST(ThreadPoolTest, EnvThreadSettingsKeepReductionsBitIdentical) {
  // The chunked reduction result must not depend on how many
  // participants IGEN_THREADS selects: every legal setting (after
  // clamping) must reproduce the serial reduction bit for bit.
  using igen::runtime::ThreadPool;
  unsigned HW = std::thread::hardware_concurrency();
  test::Rng R(0x16e2);
  std::vector<Interval> X = randomIntervals(R, 30000, /*Specials=*/false);
  Interval Serial = iarr_sum(X.data(), X.size());
  for (const char *Spec : {"1", "2", "3", "5", "8", "512"}) {
    unsigned P = ThreadPool::participantsFromEnv(Spec, HW);
    ASSERT_GE(P, 1u) << Spec;
    Interval S = iarr_sum_par(X.data(), X.size(), P);
    EXPECT_TRUE(sameBits(S, Serial)) << "IGEN_THREADS=" << Spec;
  }
}

TEST(BatchReduceTest, DotBitIdenticalAcrossThreadsAndIsas) {
  IsaGuard Restore;
  test::Rng R(0xd07);
  for (size_t N : {1ul, 1000ul, 4096ul, 20000ul}) {
    // Benign inputs: products stay finite and nonzero, the domain on
    // which every tier computes identical candidate maxima.
    std::vector<Interval> X = benignIntervals(R, N);
    std::vector<Interval> Y = benignIntervals(R, N);

    clearForcedIsa();
    Interval Ref = iarr_dot(X.data(), Y.data(), N);
    for (Isa Tier : supportedIsas()) {
      forceIsa(Tier);
      Interval D1 = iarr_dot(X.data(), Y.data(), N);
      Interval D2 = iarr_dot_par(X.data(), Y.data(), N, 2);
      Interval D4 = iarr_dot_par(X.data(), Y.data(), N, 4);
      EXPECT_TRUE(sameBits(D1, Ref))
          << isaName(Tier) << " serial N=" << N;
      EXPECT_TRUE(sameBits(D2, Ref)) << isaName(Tier) << " t2 N=" << N;
      EXPECT_TRUE(sameBits(D4, Ref)) << isaName(Tier) << " t4 N=" << N;
    }
  }
}

TEST(BatchReduceTest, DotEnclosesSequentialReference) {
  test::Rng R(0xd0d0);
  for (size_t N : {1ul, 777ul, 4096ul}) {
    std::vector<Interval> X = randomIntervals(R, N, /*Specials=*/false);
    std::vector<Interval> Y = randomIntervals(R, N, /*Specials=*/false);
    Interval Batched = iarr_dot_par(X.data(), Y.data(), N, 4);

    RoundUpwardScope Up;
    SumAccumulatorF64 Acc;
    Acc.init(iMul(X[0], Y[0]));
    for (size_t I = 1; I < N; ++I)
      Acc.accumulate(iMul(X[I], Y[I]));
    EXPECT_TRUE(Batched.containsInterval(Acc.reduce())) << "N=" << N;
  }
}

TEST(BatchReduceTest, SumRespectsIgenIsaEnvOverride) {
  // The env var is consulted whenever the cached selection is empty, so
  // clearing the forced tier makes it take effect mid-process.
  IsaGuard Restore;
  test::Rng R(0xe4f);
  std::vector<Interval> X = benignIntervals(R, 5000);
  std::vector<Interval> Y = benignIntervals(R, 5000);

  clearForcedIsa();
  Interval Ref = iarr_dot(X.data(), Y.data(), X.size());
  for (const char *Name : {"scalar", "sse2", "avx", "avx2", "avx512"}) {
    ASSERT_EQ(setenv("IGEN_ISA", Name, 1), 0);
    clearForcedIsa();
    Isa Wanted = Isa::Scalar;
    bool Known = false;
    for (int I = 0; I < NumIsas; ++I)
      if (std::strcmp(Name, isaName(static_cast<Isa>(I))) == 0) {
        Wanted = static_cast<Isa>(I);
        Known = true;
      }
    ASSERT_TRUE(Known);
    if (!isaSupported(Wanted))
      continue;
    EXPECT_EQ(activeIsa(), Wanted) << Name;
    Interval D = iarr_dot(X.data(), Y.data(), X.size());
    EXPECT_TRUE(sameBits(D, Ref)) << "IGEN_ISA=" << Name;
  }
  unsetenv("IGEN_ISA");
}

TEST(BatchReduceTest, NormTwoIsNonNegativeAndSound) {
  test::Rng R(0x2017);
  std::vector<Interval> X = randomIntervals(R, 300, /*Specials=*/false);
  Interval N2 = iarr_norm2(X.data(), X.size());
  ASSERT_FALSE(N2.hasNaN());
  EXPECT_GE(N2.lo(), 0.0);
  // Midpoint sample: sqrt(sum of midpoint squares) must be inside.
  __float128 S = 0;
  for (const Interval &I : X) {
    __float128 M = (static_cast<__float128>(I.lo()) + I.hi()) / 2;
    S += M * M;
  }
  double Mid = std::sqrt(static_cast<double>(S));
  EXPECT_TRUE(N2.contains(Mid));
}

//===----------------------------------------------------------------------===//
// (c) Rounding-mode hygiene
//===----------------------------------------------------------------------===//

TEST(BatchReduceTest, CallerRoundingModeIsPreserved) {
  test::Rng R(0x0de);
  std::vector<Interval> X = randomIntervals(R, 5000, /*Specials=*/false);

  ASSERT_EQ(std::fegetround(), FE_TONEAREST);
  (void)iarr_sum_par(X.data(), X.size(), 4);
  EXPECT_EQ(std::fegetround(), FE_TONEAREST);

  {
    RoundUpwardScope Up;
    (void)iarr_sum_par(X.data(), X.size(), 4);
    EXPECT_EQ(std::fegetround(), FE_UPWARD);
  }
  EXPECT_EQ(std::fegetround(), FE_TONEAREST);
}

TEST(BatchReduceTest, WorkerThreadsRestoreRoundingAfterTasks) {
  test::Rng R(0x0df);
  std::vector<Interval> X = randomIntervals(R, 50000, /*Specials=*/false);
  // Run reductions that flip every participating worker to upward...
  for (int Round = 0; Round < 4; ++Round)
    (void)iarr_sum_par(X.data(), X.size(), 0);

  // ...then probe the pool: every task invocation must observe the
  // worker back at round-to-nearest. (Task-to-thread assignment is
  // dynamic, so probe many more tasks than workers.)
  ThreadPool &Pool = ThreadPool::instance();
  size_t NumProbes = 64 * Pool.maxParticipants();
  std::vector<int> Seen(NumProbes, -1);
  Pool.parallelFor(NumProbes, 0, [&](size_t I) {
    Seen[I] = std::fegetround();
  });
  for (size_t I = 0; I < NumProbes; ++I)
    EXPECT_EQ(Seen[I], FE_TONEAREST) << "probe " << I;
}

} // namespace
