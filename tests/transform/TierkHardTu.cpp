//===- TierkHardTu.cpp - Wrap the --tier --harden build of tierk.c -----------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#define k_iter k_iter_hard
#define k_env k_env_hard
#define k_sumsq k_sumsq_hard

#include "tierk_hard.cpp"
