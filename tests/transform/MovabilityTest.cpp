//===- MovabilityTest.cpp - Result-movability analysis tests -----------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Unit tests for the --tier movability lattice: a region is immovable
// exactly when every returned value is built from exact-transfer
// operations (selection, negation, copies, integral literals) over the
// snapshot inputs AND every floating comparison has exact operands.
// Wrong answers are never unsound, but the analysis promises to only
// claim immovability on identical-value arguments -- these tests pin
// both directions.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "opt/Movability.h"

#include <gtest/gtest.h>

using namespace igen;

namespace {

MovabilityInfo analyze(std::string_view Src, const char *Fn) {
  auto Ctx = std::make_unique<ASTContext>();
  DiagnosticsEngine Diags;
  Parser P(Src, *Ctx, Diags);
  EXPECT_TRUE(P.parseTranslationUnit()) << Diags.render("test");
  Sema S(*Ctx, Diags);
  EXPECT_TRUE(S.run()) << Diags.render("test");
  FunctionDecl *F = Ctx->TU.findFunction(Fn);
  EXPECT_NE(F, nullptr);
  return analyzeMovability(*F);
}

} // namespace

TEST(Movability, ExactSelectionChainIsImmovable) {
  MovabilityInfo Info = analyze("double f(double x, double y) {\n"
                                "  double m = fmax(fabs(x), fabs(y));\n"
                                "  return -m;\n"
                                "}\n",
                                "f");
  EXPECT_TRUE(Info.ResultImmovable);
  EXPECT_TRUE(Info.ControlExact);
}

TEST(Movability, RoundedArithmeticIsMovable) {
  EXPECT_FALSE(
      analyze("double f(double x) { return x + 1.0; }", "f").ResultImmovable);
  // Even subtraction from zero: binary arithmetic rounds in the
  // lattice, so only unary negation is exact.
  EXPECT_FALSE(
      analyze("double f(double x) { return 0.0 - x; }", "f").ResultImmovable);
  EXPECT_TRUE(
      analyze("double f(double x) { return -x; }", "f").ResultImmovable);
}

TEST(Movability, LiteralExactnessDependsOnIntegrality) {
  // 2.0 lifts to the same point interval in both tiers; 0.1 does not
  // (the dd lift is tighter than the f64 one).
  EXPECT_TRUE(
      analyze("double f(double x) { return fmax(x, 2.0); }", "f")
          .ResultImmovable);
  EXPECT_FALSE(
      analyze("double f(double x) { return fmax(x, 0.1); }", "f")
          .ResultImmovable);
}

TEST(Movability, ToleranceParameterIsMovable) {
  // ia_set_tol widens v +/- tol at tier precision: the dd shadow is
  // tighter, so a tolerance-carrying input is never exact.
  EXPECT_FALSE(
      analyze("double f(double:0.125 a) { return a; }", "f").ResultImmovable);
  EXPECT_TRUE(
      analyze("double f(double a) { return a; }", "f").ResultImmovable);
}

TEST(Movability, InexactComparisonPoisonsControl) {
  // The returned values are exact, but the branch compares a rounded
  // value: the tiers could take different paths, so the result moves.
  MovabilityInfo Info = analyze("double f(double x) {\n"
                                "  double z = x * 2.0;\n"
                                "  if (z < 1.0) { return x; }\n"
                                "  return -x;\n"
                                "}\n",
                                "f");
  EXPECT_FALSE(Info.ControlExact);
  EXPECT_FALSE(Info.ResultImmovable);

  MovabilityInfo Exact = analyze("double g(double x, double y) {\n"
                                 "  if (x < y) { return x; }\n"
                                 "  return y;\n"
                                 "}\n",
                                 "g");
  EXPECT_TRUE(Exact.ControlExact);
  EXPECT_TRUE(Exact.ResultImmovable);
}

TEST(Movability, BranchJoinIntersectsExactness) {
  // Exact in one branch, rounded in the other: movable after the join.
  EXPECT_FALSE(analyze("double f(double x, double c) {\n"
                       "  double t = x;\n"
                       "  if (c > 0.0) { t = x + 1.0; }\n"
                       "  return -t;\n"
                       "}\n",
                       "f")
                   .ResultImmovable);
  // Exact on both paths: still immovable after the join.
  EXPECT_TRUE(analyze("double g(double x, double c) {\n"
                      "  double t = x;\n"
                      "  if (c > 0.0) { t = fabs(x); }\n"
                      "  return t;\n"
                      "}\n",
                      "g")
                  .ResultImmovable);
}

TEST(Movability, LoopFixpointPreservesOrKillsExactness) {
  EXPECT_TRUE(analyze("double f(double x, int n) {\n"
                      "  double t = fabs(x);\n"
                      "  for (int i = 0; i < n; i++) { t = fmin(t, x); }\n"
                      "  return t;\n"
                      "}\n",
                      "f")
                  .ResultImmovable);
  EXPECT_FALSE(analyze("double g(double x, int n) {\n"
                       "  double t = fabs(x);\n"
                       "  for (int i = 0; i < n; i++) { t = t * 0.5; }\n"
                       "  return t;\n"
                       "}\n",
                       "g")
                   .ResultImmovable);
}

TEST(Movability, FloatStoresKillMemoryExactness) {
  // A load from untouched parameter memory is exact (both tiers read
  // the identical f64i): pure read-out functions are immovable.
  EXPECT_TRUE(
      analyze("double f(double *a, int i) { return a[i]; }", "f")
          .ResultImmovable);
  // Any floating store in the body poisons all loads: the clone's
  // narrowed stores make a reread differ from the f64i pass.
  EXPECT_FALSE(analyze("double g(double *a) {\n"
                       "  a[0] = a[0] + 1.0;\n"
                       "  return a[1];\n"
                       "}\n",
                       "g")
                   .ResultImmovable);
}

TEST(Movability, VoidResultIsNotImmovable) {
  // No value-returning path: nothing to prune against, so the analysis
  // reports movable (the transform's eligibility check rejects these
  // functions anyway).
  EXPECT_FALSE(
      analyze("void f(double *a) { a[0] = 1.0; }", "f").ResultImmovable);
}
