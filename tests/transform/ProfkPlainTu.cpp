//===- ProfkPlainTu.cpp - Wrap the plain build of Inputs/profk.c -------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#define cancel cancel_plain
#define dot dot_plain

#include "profk_plain.cpp"
