//===- TierkTierTu.cpp - Wrap the --tier build of Inputs/tierk.c -------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// The same input is compiled by the igen driver with and without
// --tier; renaming the functions lets one test binary link both builds
// and compare their enclosures. The #define renames whole identifier
// tokens only, so the clones (`k_iter__dd` etc.) keep their emitted
// names and stay directly callable as the always-ddi baseline.
//
//===----------------------------------------------------------------------===//

#define k_iter k_iter_tier
#define k_env k_env_tier
#define k_sumsq k_sumsq_tier

#include "tierk_tier.cpp"
