//===- ProfileTransformTest.cpp - --profile instrumentation unit tests -------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Compiler-side tests of the precision-profiling instrumentation: with
// Profile off the output must be byte-identical to the historical
// translation (no iap_*, no profile header, no site table); with it on,
// every scalar interval op carries a site ID and stripping the
// instrumentation back out reproduces the unprofiled output exactly.
//
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"

#include <gmock/gmock.h>
#include <gtest/gtest.h>

#include <regex>

using namespace igen;

namespace {

using ::testing::HasSubstr;
using ::testing::Not;

const char *Kernel = "double f(double a, double b) {\n"
                     "  double c = a * b + 0.5;\n"
                     "  double d = c - a;\n"
                     "  if (d > 0.0) {\n"
                     "    d = sqrt(d) / d;\n"
                     "  }\n"
                     "  return -d;\n"
                     "}\n";

std::string compileWith(std::string_view Src, TransformOptions Opts,
                        ProfileSiteTable *Sites = nullptr) {
  DiagnosticsEngine Diags;
  auto Out = compileToIntervals(Src, Opts, Diags, Sites);
  EXPECT_TRUE(Out.has_value()) << Diags.render("test");
  return Out.value_or("");
}

/// Reverses the instrumentation textually: drops the profile include and
/// the embedded site table, and rewrites iap_op(_igen_prof_base + K, ...)
/// back to ia_op(...). If this round-trips to the unprofiled output, the
/// instrumentation provably changed nothing but the call names.
std::string stripInstrumentation(std::string In) {
  In = std::regex_replace(
      In, std::regex("#include \"profile/igen_prof\\.h\"\n"), "");
  In = std::regex_replace(
      In,
      std::regex("static const igen_prof_site[^;]*;\n"
                 "static const unsigned _igen_prof_base =[^;]*;\n\n"),
      "");
  In = std::regex_replace(
      In, std::regex("iap_(\\w+)\\(_igen_prof_base \\+ \\d+u, "), "ia_$1(");
  return In;
}

} // namespace

TEST(Profile, OffByDefaultAndByteIdentical) {
  TransformOptions Plain;
  std::string Default = compileWith(Kernel, Plain);
  EXPECT_THAT(Default, Not(HasSubstr("iap_")));
  EXPECT_THAT(Default, Not(HasSubstr("igen_prof")));

  TransformOptions Off;
  Off.Profile = false;
  EXPECT_EQ(Default, compileWith(Kernel, Off));
}

TEST(Profile, InstrumentsEveryScalarOpWithSiteIds) {
  TransformOptions Opts;
  Opts.Profile = true;
  Opts.ModuleName = "t";
  ProfileSiteTable Sites;
  std::string Out = compileWith(Kernel, Opts, &Sites);

  EXPECT_THAT(Out, HasSubstr("#include \"profile/igen_prof.h\""));
  EXPECT_THAT(Out, HasSubstr("static const igen_prof_site _igen_prof_sites"));
  EXPECT_THAT(Out, HasSubstr("igen_prof_register_sites(\"t\""));
  EXPECT_THAT(Out, HasSubstr("iap_fma_f64(_igen_prof_base + 0u, a, b"));
  // No bare arithmetic calls remain (constant lifts ia_cst/ia_set and the
  // comparison stay uninstrumented by design).
  EXPECT_THAT(Out, Not(HasSubstr(" ia_mul_f64(")));
  EXPECT_THAT(Out, Not(HasSubstr(" ia_sub_f64(")));
  EXPECT_THAT(Out, HasSubstr("iap_sub_f64("));
  EXPECT_THAT(Out, HasSubstr("iap_sqrt_f64("));
  EXPECT_THAT(Out, HasSubstr("iap_neg_f64("));

  // The compile-time table matches what was embedded, with source
  // locations and reconstructed text.
  ASSERT_EQ(Sites.Sites.size(), 5u); // fma, sub, sqrt, div_p, neg
  EXPECT_EQ(Sites.Sites[0].Op, "fma");
  EXPECT_EQ(Sites.Sites[0].Func, "f");
  EXPECT_EQ(Sites.Sites[0].Line, 2u);
  EXPECT_EQ(Sites.Sites[0].Text, "a * b + 0.5");
  EXPECT_EQ(Sites.Sites[1].Op, "sub");
  EXPECT_EQ(Sites.Sites[1].Text, "c - a");
  EXPECT_EQ(Sites.Sites[2].Op, "sqrt");
  // d > 0.0 proves d positive inside the branch: the division keeps its
  // sign specialization, and the site records the specialized op name.
  EXPECT_EQ(Sites.Sites[3].Op, "div_p");
  EXPECT_EQ(Sites.Sites[4].Op, "neg");
}

TEST(Profile, StrippingInstrumentationRoundTrips) {
  TransformOptions Plain;
  TransformOptions Prof;
  Prof.Profile = true;
  EXPECT_EQ(stripInstrumentation(compileWith(Kernel, Prof)),
            compileWith(Kernel, Plain));

  const char *Loop = "double dot(const double *a, const double *b, int n) {\n"
                     "  double s = 0.0;\n"
                     "  for (int i = 0; i < n; i++)\n"
                     "    s = s + a[i] * b[i];\n"
                     "  return s;\n"
                     "}\n";
  EXPECT_EQ(stripInstrumentation(compileWith(Loop, Prof)),
            compileWith(Loop, Plain));
}

TEST(Profile, DoubleDoubleTargetInstruments) {
  TransformOptions Opts;
  Opts.Profile = true;
  Opts.Prec = TransformOptions::Precision::DoubleDouble;
  ProfileSiteTable Sites;
  std::string Out = compileWith("double f(double a, double b) {\n"
                                "  return a * b - a;\n"
                                "}\n",
                                Opts, &Sites);
  EXPECT_THAT(Out, HasSubstr("iap_mul_dd(_igen_prof_base + 0u"));
  EXPECT_THAT(Out, HasSubstr("iap_sub_dd(_igen_prof_base + 1u"));
  ASSERT_EQ(Sites.Sites.size(), 2u);
  EXPECT_EQ(Sites.Sites[0].Op, "mul");
  EXPECT_EQ(Sites.Sites[1].Op, "sub");
}

TEST(Profile, VectorOpsStayUninstrumented) {
  // The iap_* wrappers only exist for the scalar runtime; SIMD-vector
  // interval ops must pass through untouched even under --profile.
  TransformOptions Opts;
  Opts.Profile = true;
  ProfileSiteTable Sites;
  std::string Out = compileWith(
      "__m256d vmul(__m256d a, __m256d b) { return _mm256_mul_pd(a, b); }\n",
      Opts, &Sites);
  EXPECT_THAT(Out, HasSubstr("ia_mul_m256di_2("));
  EXPECT_THAT(Out, Not(HasSubstr("iap_")));
  EXPECT_TRUE(Sites.Sites.empty());
}
