//===- ProfkProfTu.cpp - Wrap the --profile build of Inputs/profk.c ----------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// The same input is compiled by the igen driver with and without
// --profile; renaming the functions lets one test binary link both
// builds and compare their enclosures bit-for-bit.
//
//===----------------------------------------------------------------------===//

#define cancel cancel_prof
#define dot dot_prof

#include "profk_prof.cpp"
