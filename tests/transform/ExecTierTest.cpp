//===- ExecTierTest.cpp - Execute adaptive precision tiering (--tier) --------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Inputs/tierk.c is compiled by the igen driver twice -- with --tier
// and without -- and both results are linked here (TierkTierTu.cpp /
// TierkPlainTu.cpp). The renaming wrappers leave the emitted ddi
// clones (`k_iter__dd` ...) untouched, so the always-ddi baseline is
// directly callable too. The tests verify the tiering contracts:
//
//  * Easy inputs: the tiered build is bit-identical to the plain f64i
//    build and never escalates (the wrapper IS the plain translation
//    plus a region-exit predicate).
//  * Hard inputs: the region re-executes at ddi, the result equals
//    meet(f64i result, narrow(ddi clone result)) bit-for-bit, is
//    contained in the plain enclosure, and is strictly tighter when
//    the blowup is rounding-induced.
//  * Movability: the immovable kernel is pruned (predicate fires, no
//    rerun) -- justified here by checking its ddi clone really does
//    return the identical interval.
//  * Memory ABI: array parameters stay f64i in the clone; after an
//    escalated run each output element holds the clone's narrowed
//    store and is contained in the plain build's element.
//  * IGEN_TIER_MAX=1 and a huge IGEN_TIER_WIDTH both disable
//    escalation at runtime.
//
//===----------------------------------------------------------------------===//

#include "interval/Rounding.h"
#include "interval/igen_lib.h"
#include "profile/TierRuntime.h"

#include <cstdlib>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

f64i k_iter_tier(f64i x, f64i y, int n);
f64i k_iter_plain(f64i x, f64i y, int n);
ddi k_iter__dd(ddi x, ddi y, int n);

f64i k_env_tier(f64i x, f64i y);
f64i k_env_plain(f64i x, f64i y);
ddi k_env__dd(ddi x, ddi y);

f64i k_sumsq_tier(f64i *xs, f64i *out, int n);
f64i k_sumsq_plain(f64i *xs, f64i *out, int n);
ddi k_sumsq__dd(f64i *xs, f64i *out, int n);

namespace {

using igen::Interval;
using igen::tier::RegionReport;

Interval toI(f64i V) { return V.toInterval(); }
f64i fromI(double Lo, double Hi) {
  return f64i::fromInterval(Interval::fromEndpoints(Lo, Hi));
}

bool bitEqual(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}
bool bitEqual(f64i A, f64i B) {
  Interval P = toI(A), Q = toI(B);
  return bitEqual(P.NegLo, Q.NegLo) && bitEqual(P.Hi, Q.Hi);
}

/// A subseteq B on the enclosure endpoints.
bool subsetEq(f64i A, f64i B) {
  Interval P = toI(A), Q = toI(B);
  return P.NegLo <= Q.NegLo && P.Hi <= Q.Hi;
}

double width(f64i V) {
  Interval I = toI(V);
  return I.Hi + I.NegLo;
}

RegionReport region(const char *Func) {
  for (const RegionReport &R : igen::tier::snapshot())
    if (R.Func == Func)
      return R;
  ADD_FAILURE() << "region '" << Func << "' not registered";
  return RegionReport();
}

class ExecTierTest : public ::testing::Test {
protected:
  void SetUp() override { clean(); }
  void TearDown() override { clean(); }
  static void clean() {
    unsetenv("IGEN_TIER_WIDTH");
    unsetenv("IGEN_TIER_MAX");
    igen_tier_env_refresh();
    igen_tier_reset();
  }
  igen::RoundUpwardScope Up;
};

} // namespace

TEST_F(ExecTierTest, RegionsRegisteredWithMovability) {
  RegionReport Iter = region("k_iter"), Env = region("k_env"),
               Sum = region("k_sumsq");
  EXPECT_TRUE(Iter.Movable);
  EXPECT_FALSE(Env.Movable); // fabs/fmax/negate only: result immovable
  EXPECT_TRUE(Sum.Movable);
  EXPECT_GT(Iter.Line, 0u);
  EXPECT_FALSE(Iter.Module.empty());
  // Renaming happens in the wrapper TU's preprocessor; the registered
  // table keeps the source names.
  EXPECT_EQ(region("k_iter").Func, "k_iter");
}

TEST_F(ExecTierTest, EasyInputsBitIdenticalAndNoEscalation) {
  for (int It = 0; It < 16; ++It) {
    double X = 0.05 + It * 0.01, Y = 0.1 + It * 0.005;
    f64i T = k_iter_tier(fromI(X, X), fromI(Y, Y), 5);
    f64i P = k_iter_plain(fromI(X, X), fromI(Y, Y), 5);
    EXPECT_TRUE(bitEqual(T, P)) << "diverged at It=" << It;
  }
  RegionReport R = region("k_iter");
  EXPECT_EQ(R.Checks, 16u);
  EXPECT_EQ(R.Escalations, 0u);
  EXPECT_EQ(R.Pruned, 0u);
}

TEST_F(ExecTierTest, HardInputsEscalateTightenAndMatchMeet) {
  // Point inputs iterated deep into the chaotic regime: all f64i width
  // is rounding-induced, so the ddi rerun is strictly tighter.
  const int N = 45;
  f64i X = fromI(0.3, 0.3), Y = fromI(0.24, 0.24);
  f64i T = k_iter_tier(X, Y, N);
  f64i P = k_iter_plain(X, Y, N);
  ddi C = k_iter__dd(ia_promote_f64_dd(X), ia_promote_f64_dd(Y), N);
  f64i Expect = ia_meet_f64(P, ia_narrow_dd_f64(C));

  RegionReport R = region("k_iter");
  EXPECT_EQ(R.Checks, 1u);
  EXPECT_EQ(R.Escalations, 1u);
  EXPECT_TRUE(subsetEq(T, P));
  EXPECT_LT(width(T), width(P));
  EXPECT_TRUE(bitEqual(T, Expect));
}

TEST_F(ExecTierTest, WideInputsEscalateSoundly) {
  // Width dominated by the inputs, not rounding: escalation still runs
  // and the meet contract still holds, even if it cannot tighten much.
  const int N = 12;
  f64i X = fromI(0.3, 0.3 + 1e-6), Y = fromI(0.24, 0.24);
  f64i T = k_iter_tier(X, Y, N);
  f64i P = k_iter_plain(X, Y, N);
  ddi C = k_iter__dd(ia_promote_f64_dd(X), ia_promote_f64_dd(Y), N);
  EXPECT_TRUE(subsetEq(T, P));
  EXPECT_TRUE(bitEqual(T, ia_meet_f64(P, ia_narrow_dd_f64(C))));
  EXPECT_GE(region("k_iter").Escalations, 1u);
}

TEST_F(ExecTierTest, ImmovableRegionPrunesRerun) {
  // Wide inputs make the envelope wide enough to trip the predicate,
  // but the region's exact-transfer body means a rerun cannot tighten:
  // the wrapper must count a prune, not an escalation.
  f64i X = fromI(-2.0, 2.0), Y = fromI(-1.0, 3.0);
  f64i T = k_env_tier(X, Y);
  f64i P = k_env_plain(X, Y);
  EXPECT_TRUE(bitEqual(T, P));

  RegionReport R = region("k_env");
  EXPECT_FALSE(R.Movable);
  EXPECT_EQ(R.Checks, 1u);
  EXPECT_EQ(R.Pruned, 1u);
  EXPECT_EQ(R.Escalations, 0u);

  // The immovability claim is checkable: the ddi clone really does
  // return the identical interval on the promoted snapshot.
  f64i Wide = ia_narrow_dd_f64(
      k_env__dd(ia_promote_f64_dd(X), ia_promote_f64_dd(Y)));
  EXPECT_TRUE(bitEqual(Wide, P));
}

TEST_F(ExecTierTest, ArrayKernelEscalatesThroughMemoryAbi) {
  const int N = 6;
  f64i Xs[N], XsPlain[N], XsClone[N];
  f64i OutT[N], OutP[N], OutC[N];
  for (int I = 0; I < N; ++I) {
    double V = 1.0 + I * 0.5;
    XsClone[I] = XsPlain[I] = Xs[I] = fromI(V, V + 1e-5);
  }
  f64i T = k_sumsq_tier(Xs, OutT, N);
  f64i P = k_sumsq_plain(XsPlain, OutP, N);
  ddi C = k_sumsq__dd(XsClone, OutC, N);

  EXPECT_GE(region("k_sumsq").Escalations, 1u);
  EXPECT_TRUE(subsetEq(T, P));
  EXPECT_TRUE(bitEqual(T, ia_meet_f64(P, ia_narrow_dd_f64(C))));
  for (int I = 0; I < N; ++I) {
    // The escalated rerun rewrites out[]: each element is the clone's
    // narrowed store, still contained in the plain build's element
    // (mul/sub have exact-hull transfer functions in both tiers).
    EXPECT_TRUE(bitEqual(OutT[I], OutC[I])) << "element " << I;
    EXPECT_TRUE(subsetEq(OutT[I], OutP[I])) << "element " << I;
  }
}

TEST_F(ExecTierTest, MaxTierOneDisablesEscalation) {
  setenv("IGEN_TIER_MAX", "1", 1);
  igen_tier_env_refresh();
  f64i X = fromI(0.3, 0.3), Y = fromI(0.24, 0.24);
  f64i T = k_iter_tier(X, Y, 45);
  f64i P = k_iter_plain(X, Y, 45);
  EXPECT_TRUE(bitEqual(T, P)); // blown up, but escalation is off
  RegionReport R = region("k_iter");
  EXPECT_EQ(R.Checks, 1u);
  EXPECT_EQ(R.Escalations, 0u);
}

TEST_F(ExecTierTest, HugeWidthThresholdDisablesEscalation) {
  setenv("IGEN_TIER_WIDTH", "1e30", 1);
  igen_tier_env_refresh();
  f64i X = fromI(0.3, 0.3), Y = fromI(0.24, 0.24);
  f64i T = k_iter_tier(X, Y, 45);
  EXPECT_TRUE(bitEqual(T, k_iter_plain(X, Y, 45)));
  EXPECT_EQ(region("k_iter").Escalations, 0u);
}
