//===- TierTransformTest.cpp - Adaptive tiering emission tests ---------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// String-level tests of the --tier emission: the ddi clone, the f64i
// wrapper with live-in snapshots and the region-exit escalate/meet
// sequence, movability pruning, the uniform f64i memory ABI in the
// clone, the region table, and the ineligibility fallback.
//
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"

#include <gmock/gmock.h>
#include <gtest/gtest.h>

using namespace igen;

namespace {

TransformOptions tierOpts() {
  TransformOptions Opts;
  Opts.Tier = true;
  return Opts;
}

std::string compile(std::string_view Src, TransformOptions Opts,
                    ProfileSiteTable *Sites = nullptr,
                    std::string *DiagText = nullptr) {
  DiagnosticsEngine Diags;
  auto Out = compileToIntervals(Src, Opts, Diags, Sites);
  EXPECT_TRUE(Out.has_value()) << Diags.render("test");
  if (DiagText)
    *DiagText = Diags.render("test");
  return Out.value_or("");
}

using ::testing::HasSubstr;
using ::testing::Not;

} // namespace

TEST(TierTransform, EmitsCloneThenWrapper) {
  std::string Out = compile("double f(double a, double b) {\n"
                            "  return a * b + 0.1;\n"
                            "}\n",
                            tierOpts());
  // The ddi clone is a full double-double translation under <name>__dd.
  EXPECT_THAT(Out, HasSubstr("ddi f__dd(ddi a, ddi b)"));
  EXPECT_THAT(Out, HasSubstr("ia_mul_dd(a, b)"));
  // The wrapper keeps the plain f64i translation under the source name.
  EXPECT_THAT(Out, HasSubstr("f64i f(f64i a, f64i b)"));
  // Live-ins are snapshotted at entry, at f64i cost (plain copies).
  EXPECT_THAT(Out, HasSubstr("f64i _tier_in_a = a;"));
  EXPECT_THAT(Out, HasSubstr("f64i _tier_in_b = b;"));
  // Region exit: predicate, then rerun-and-meet on blowup.
  EXPECT_THAT(Out, HasSubstr("if (igen_tier_escalate(_tier_ret, "
                             "_igen_tier_base + 0u))"));
  EXPECT_THAT(
      Out, HasSubstr("ia_meet_f64(_tier_ret, ia_narrow_dd_f64(f__dd("
                     "ia_promote_f64_dd(_tier_in_a), "
                     "ia_promote_f64_dd(_tier_in_b))))"));
  EXPECT_THAT(Out, HasSubstr("#include \"profile/igen_tier.h\""));
}

TEST(TierTransform, RegionTableRegistersModule) {
  ProfileSiteTable Sites;
  std::string Out = compile("double f(double a) { return a + 0.5; }\n"
                            "double g(double a) { return -fabs(a); }\n",
                            tierOpts(), &Sites);
  EXPECT_THAT(Out,
              HasSubstr("static const igen_tier_region _igen_tier_regions[2]"));
  EXPECT_THAT(Out, HasSubstr("igen_tier_register_regions("));
  EXPECT_THAT(Out, HasSubstr("{\"f\", 1u, 1},"));
  EXPECT_THAT(Out, HasSubstr("{\"g\", 2u, 0},"));
  ASSERT_EQ(Sites.Regions.size(), 2u);
  EXPECT_EQ(Sites.Regions[0].Func, "f");
  EXPECT_TRUE(Sites.Regions[0].Movable);
  EXPECT_EQ(Sites.Regions[1].Func, "g");
  EXPECT_FALSE(Sites.Regions[1].Movable);
}

TEST(TierTransform, ImmovableRegionSkipsRerun) {
  std::string Out = compile("double g(double x, double y) {\n"
                            "  double m = fmax(fabs(x), fabs(y));\n"
                            "  return -m;\n"
                            "}\n",
                            tierOpts());
  // The clone is still emitted (callers may want the ddi entry point),
  // but the wrapper never calls it: the predicate only feeds counters.
  EXPECT_THAT(Out, HasSubstr("ddi g__dd(ddi x, ddi y)"));
  EXPECT_THAT(Out, HasSubstr("igen_tier_note_immovable(_tier_ret, "
                             "_igen_tier_base + 0u);"));
  EXPECT_THAT(Out, Not(HasSubstr("ia_narrow_dd_f64(g__dd(")));
  EXPECT_THAT(Out, Not(HasSubstr("igen_tier_escalate")));
}

TEST(TierTransform, CloneUsesUniformF64MemoryAbi) {
  std::string Out = compile("double h(double *xs, double *out, int n) {\n"
                            "  double s = 0.0;\n"
                            "  for (int i = 0; i < n; i++) {\n"
                            "    double v = xs[i] * xs[i];\n"
                            "    out[i] = v;\n"
                            "    s = s + v;\n"
                            "  }\n"
                            "  return s;\n"
                            "}\n",
                            tierOpts());
  // Pointer element types stay f64i in the clone; only scalars widen.
  EXPECT_THAT(Out, HasSubstr("ddi h__dd(f64i *xs, f64i *out, int n)"));
  EXPECT_THAT(Out, HasSubstr("ia_promote_f64_dd(xs[i])"));
  EXPECT_THAT(Out, HasSubstr("out[i] = ia_narrow_dd_f64(v)"));
  // The wrapper passes pointer and int snapshots through unpromoted.
  EXPECT_THAT(Out, HasSubstr("h__dd(_tier_in_xs, _tier_in_out, _tier_in_n)"));
}

TEST(TierTransform, WrapperKeepsF64FastPathsCloneDoesNot) {
  TransformOptions Opts = tierOpts();
  std::string Out = compile("double f(double a, double b, double c) {\n"
                            "  return a * b + c;\n"
                            "}\n",
                            Opts);
  // The f64i tier keeps its fused kernels; the dd tier decomposes.
  EXPECT_THAT(Out, HasSubstr("ia_fma_f64("));
  EXPECT_THAT(Out, HasSubstr("ia_add_dd(ia_mul_dd(a, b), c)"));
}

TEST(TierTransform, IneligibleFunctionFallsBackWithWarning) {
  std::string DiagText;
  std::string Out = compile("double q(double x, double y) {\n"
                            "  if (x == y) { return x; }\n"
                            "  return y;\n"
                            "}\n",
                            tierOpts(), nullptr, &DiagText);
  EXPECT_THAT(DiagText, HasSubstr("not tier-eligible"));
  EXPECT_THAT(Out, HasSubstr("f64i q(f64i x, f64i y)"));
  EXPECT_THAT(Out, Not(HasSubstr("q__dd")));
  EXPECT_THAT(Out, Not(HasSubstr("igen_tier_escalate")));
}

TEST(TierTransform, MixedEligibilityStillNumbersRegionsDensely) {
  ProfileSiteTable Sites;
  std::string Out = compile(
      // eligible
      "double a1(double x) { return x * 2.5; }\n"
      // ineligible: float equality
      "double a2(double x) { if (x == 0.0) { return x; } return x; }\n"
      // eligible
      "double a3(double x) { return x / 3.0; }\n",
      tierOpts(), &Sites);
  ASSERT_EQ(Sites.Regions.size(), 2u);
  EXPECT_EQ(Sites.Regions[0].Func, "a1");
  EXPECT_EQ(Sites.Regions[1].Func, "a3");
  EXPECT_THAT(Out, HasSubstr("_igen_tier_base + 0u"));
  EXPECT_THAT(Out, HasSubstr("_igen_tier_base + 1u"));
}

TEST(TierTransform, TierOffEmitsNoTierMachinery) {
  TransformOptions Opts; // Tier off
  std::string Out =
      compile("double f(double a) { return a + 0.1; }\n", Opts);
  EXPECT_THAT(Out, Not(HasSubstr("igen_tier")));
  EXPECT_THAT(Out, Not(HasSubstr("__dd")));
  EXPECT_THAT(Out, Not(HasSubstr("_tier_in_")));
}
