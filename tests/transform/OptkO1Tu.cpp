//===- OptkO1Tu.cpp - Wrap the -O build of Inputs/optk.c ---------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// The same input is compiled by the igen driver at both optimization
// levels; renaming the functions lets one test binary link both builds
// and compare their enclosures.
//
//===----------------------------------------------------------------------===//

#define opt_horner opt_horner_O1
#define opt_pade opt_pade_O1
#define opt_henon opt_henon_O1
#define opt_invsq opt_invsq_O1
#define opt_negsq opt_negsq_O1
#define opt_elem opt_elem_O1
#define opt_cse opt_cse_O1

#include "optk_O1.cpp"
