//===- OptkO0Tu.cpp - Wrap the -O0 build of Inputs/optk.c --------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#define opt_horner opt_horner_O0
#define opt_pade opt_pade_O0
#define opt_henon opt_henon_O0
#define opt_invsq opt_invsq_O0
#define opt_negsq opt_negsq_O0
#define opt_elem opt_elem_O0
#define opt_cse opt_cse_O0

#include "optk_O0.cpp"
