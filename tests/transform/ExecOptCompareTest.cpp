//===- ExecOptCompareTest.cpp - -O vs -O0 enclosure comparison ---------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Inputs/optk.c is compiled by the igen driver twice -- at the default
// optimization level and at -O0 -- and both results are linked here (see
// OptkO1Tu.cpp / OptkO0Tu.cpp). For every kernel and many random inputs
// the optimized enclosure must be contained in (equal to or tighter
// than) the naive one, and both must contain the long double reference.
//
//===----------------------------------------------------------------------===//

#include "interval/igen_lib.h"

#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

f64i opt_horner_O1(f64i *coef, f64i x, int d);
f64i opt_horner_O0(f64i *coef, f64i x, int d);
f64i opt_pade_O1(f64i x);
f64i opt_pade_O0(f64i x);
f64i opt_henon_O1(f64i x, f64i y, int n);
f64i opt_henon_O0(f64i x, f64i y, int n);
f64i opt_invsq_O1(f64i x);
f64i opt_invsq_O0(f64i x);
f64i opt_negsq_O1(f64i x, f64i y);
f64i opt_negsq_O0(f64i x, f64i y);
f64i opt_cse_O1(f64i *v, f64i a, f64i b, int n);
f64i opt_cse_O0(f64i *v, f64i a, f64i b, int n);
f64i opt_elem_O1(f64i x);
f64i opt_elem_O0(f64i x);

namespace {

using igen::Interval;

Interval toI(f64i V) {
#if defined(IGEN_F64I_SCALAR)
  return V;
#else
  return V.toInterval();
#endif
}

bool containsLd(const Interval &I, long double V) {
  if (I.hasNaN())
    return true;
  return -static_cast<long double>(I.NegLo) <= V &&
         V <= static_cast<long double>(I.Hi);
}

/// Optimized vs naive: tightened-or-equal, and NaN states agree (a
/// rewrite may never turn a valid enclosure into NaN or vice versa).
void expectTightened(const Interval &O1, const Interval &O0) {
  EXPECT_EQ(O1.hasNaN(), O0.hasNaN());
  if (!O0.hasNaN())
    EXPECT_TRUE(O0.containsInterval(O1))
        << "O1=[" << O1.lo() << "," << O1.hi() << "] O0=[" << O0.lo()
        << "," << O0.hi() << "]";
}

class ExecOptTest : public ::testing::Test {
protected:
  igen::RoundUpwardScope Up;
  std::mt19937_64 Gen{2026};
  double uniform(double Lo, double Hi) {
    return std::uniform_real_distribution<double>(Lo, Hi)(Gen);
  }
};

} // namespace

TEST_F(ExecOptTest, HornerTightenedAndSound) {
  for (int It = 0; It < 500; ++It) {
    int D = 1 + static_cast<int>(uniform(1.0, 12.0));
    std::vector<f64i> Coef;
    std::vector<long double> CoefLd;
    for (int K = 0; K <= D; ++K) {
      double C = uniform(-2.0, 2.0);
      Coef.push_back(f64i::fromPoint(C));
      CoefLd.push_back(C);
    }
    double X = uniform(0.001, 3.0);
    Interval R1 = toI(opt_horner_O1(Coef.data(), f64i::fromPoint(X), D));
    Interval R0 = toI(opt_horner_O0(Coef.data(), f64i::fromPoint(X), D));
    expectTightened(R1, R0);
    long double Ref = CoefLd[D];
    for (int K = D - 1; K >= 0; --K)
      Ref = Ref * static_cast<long double>(X) + CoefLd[K];
    EXPECT_TRUE(containsLd(R1, Ref)) << X;
    EXPECT_TRUE(containsLd(R0, Ref)) << X;
  }
}

TEST_F(ExecOptTest, PadeTightenedAndSound) {
  for (int It = 0; It < 3000; ++It) {
    double X = uniform(0.0, 50.0);
    Interval R1 = toI(opt_pade_O1(f64i::fromPoint(X)));
    Interval R0 = toI(opt_pade_O0(f64i::fromPoint(X)));
    expectTightened(R1, R0);
    long double L = X;
    long double Ref =
        X > 0.0 ? (0.125L + L * (2.0L + L)) / (2.0L + L * (0.5L + L)) : 0.0L;
    EXPECT_TRUE(containsLd(R1, Ref)) << X;
  }
}

TEST_F(ExecOptTest, HenonTightenedAndSound) {
  for (int It = 0; It < 300; ++It) {
    double X = uniform(-0.5, 0.5), Y = uniform(-0.5, 0.5);
    int N = 1 + static_cast<int>(uniform(0.0, 12.0));
    Interval R1 = toI(opt_henon_O1(f64i::fromPoint(X), f64i::fromPoint(Y), N));
    Interval R0 = toI(opt_henon_O0(f64i::fromPoint(X), f64i::fromPoint(Y), N));
    expectTightened(R1, R0);
    long double Lx = X, Ly = Y;
    for (int I = 0; I < N; ++I) {
      long double Nx = 1.0L - 1.05L * Lx * Lx + Ly;
      Ly = 0.3L * Lx;
      Lx = Nx;
    }
    EXPECT_TRUE(containsLd(R1, Lx)) << X << " " << Y;
    EXPECT_TRUE(containsLd(R0, Lx)) << X << " " << Y;
  }
}

TEST_F(ExecOptTest, InvsqAndNegsqTightened) {
  for (int It = 0; It < 3000; ++It) {
    double X = uniform(1.0 + 1e-9, 100.0);
    expectTightened(toI(opt_invsq_O1(f64i::fromPoint(X))),
                    toI(opt_invsq_O0(f64i::fromPoint(X))));
    double Xn = uniform(-10.0, -0.001);
    double Yn = Xn - uniform(0.001, 10.0);
    expectTightened(
        toI(opt_negsq_O1(f64i::fromPoint(Xn), f64i::fromPoint(Yn))),
        toI(opt_negsq_O0(f64i::fromPoint(Xn), f64i::fromPoint(Yn))));
  }
}

TEST_F(ExecOptTest, CseTightenedAndSound) {
  for (int It = 0; It < 200; ++It) {
    int N = 1 + static_cast<int>(uniform(0.0, 40.0));
    std::vector<f64i> V;
    std::vector<long double> Vl;
    for (int I = 0; I < N; ++I) {
      double E = uniform(-1.0, 1.0);
      V.push_back(f64i::fromPoint(E));
      Vl.push_back(E);
    }
    double A = uniform(-2.0, 2.0), B = uniform(-2.0, 2.0);
    Interval R1 = toI(
        opt_cse_O1(V.data(), f64i::fromPoint(A), f64i::fromPoint(B), N));
    Interval R0 = toI(
        opt_cse_O0(V.data(), f64i::fromPoint(A), f64i::fromPoint(B), N));
    expectTightened(R1, R0);
    long double T = static_cast<long double>(A) * B + 1.0L;
    long double Ref = 0.0L;
    for (int I = 0; I < N; ++I)
      Ref = Ref + T * Vl[I] + T;
    EXPECT_TRUE(containsLd(R1, Ref));
    EXPECT_TRUE(containsLd(R0, Ref));
  }
}

TEST_F(ExecOptTest, IntervalInputsStayTightened) {
  // Width > 0 exercises the non-degenerate corner selection in the
  // specialized variants.
  for (int It = 0; It < 3000; ++It) {
    double C = uniform(0.5, 20.0);
    double W = uniform(0.0, 0.1);
    f64i X = f64i::fromEndpoints(C - W, C + W);
    expectTightened(toI(opt_pade_O1(X)), toI(opt_pade_O0(X)));
    f64i X2 = f64i::fromEndpoints(1.0 + 1e-6, 1.0 + 1e-6 + W);
    expectTightened(toI(opt_invsq_O1(X2)), toI(opt_invsq_O0(X2)));
  }
}

TEST_F(ExecOptTest, ElemFastPathSoundWithBoundedExtraWidth) {
  // -O lowers exp/log/sin/cos to the certified polynomial fast path.
  // Its enclosure carries the statically certified 2^-48 relative margin
  // per call, which is a few ulps *wider* than the empirical 4-ulp libm
  // band of the -O0 path (the price of removing fesetround from the hot
  // path; DESIGN.md "Certified polynomial kernels"). So instead of
  // strict containment the exec comparison checks the guarantees that do
  // hold: both levels enclose the long double reference, the two
  // enclosures overlap, and the fast path's extra width stays within its
  // certified per-call budget (3 calls and an add: well under 2^-44
  // relative; a fast-path regression past its certificate fails here).
  for (int It = 0; It < 4000; ++It) {
    double X = uniform(0.0001, 100.0);
    Interval R1 = toI(opt_elem_O1(f64i::fromPoint(X)));
    Interval R0 = toI(opt_elem_O0(f64i::fromPoint(X)));
    long double Ref;
    {
      igen::RoundNearestScope Near;
      long double L = X;
      Ref = expl(0.5L * sinl(L)) + logl(2.0L + cosl(L));
    }
    EXPECT_TRUE(containsLd(R1, Ref)) << X;
    EXPECT_TRUE(containsLd(R0, Ref)) << X;
    EXPECT_TRUE(R1.lo() <= R0.hi() && R0.lo() <= R1.hi())
        << "disjoint enclosures at x=" << X;
    double W1 = R1.Hi + R1.NegLo; // hi - lo, exactly representable here
    double W0 = R0.Hi + R0.NegLo;
    EXPECT_LE(W1, W0 + std::fabs(R0.Hi) * 0x1p-44) << X;
  }
}
