//===- ExecDdTest.cpp - Execute IGen-compiled kernels (double-double) --------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Links against the double-double compilation of Inputs/kernels.c and
// checks both soundness (containment of quad references) and the paper's
// headline claim: double-double keeps error accumulation small enough for
// certified double-precision results (>= 68 correct bits in Fig. 9b).
//
//===----------------------------------------------------------------------===//

#include "interval/Accuracy.h"
#include "interval/igen_lib.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

ddi poly(ddi x);
ddi henon(ddi x, ddi y, int n);
ddi dot(ddi *a, ddi *b, int n);
void axpy(ddi alpha, ddi *x, ddi *y, int n);
ddi absdiff(ddi a, ddi b);
ddi sensor_scale(double a);
void vscale(ddi *x, ddi *y, int n);
ddi ratio(ddi a, ddi b);

namespace {

using igen::DdInterval;

DdInterval toI(ddi V) {
#if defined(IGEN_F64I_SCALAR)
  return V;
#else
  return V.toScalar();
#endif
}

bool containsQ(const DdInterval &I, __float128 V) {
  if (I.hasNaN())
    return true;
  __float128 Lo = -((__float128)I.NegLo.H + I.NegLo.L);
  __float128 Hi = (__float128)I.Hi.H + I.Hi.L;
  return Lo <= V && V <= Hi;
}

class ExecDdTest : public ::testing::Test {
protected:
  igen::RoundUpwardScope Up;
  std::mt19937_64 Gen{123};
  double uniform(double Lo, double Hi) {
    return std::uniform_real_distribution<double>(Lo, Hi)(Gen);
  }
};

} // namespace

TEST_F(ExecDdTest, PolyCertifiedDoubleAccuracy) {
  for (int I = 0; I < 500; ++I) {
    double X = uniform(-10.0, 10.0);
    DdInterval R = toI(poly(ddi::fromPoint(X)));
    __float128 QX = X;
    // NB: (__float128)0.1 would be the *double* 0.1; build the decimal
    // value in quad precision instead.
    __float128 Ref = ((QX + 1) * QX - (__float128)0.5) * QX +
                     (__float128)1 / 10;
    EXPECT_TRUE(containsQ(R, Ref)) << X;
    // Headline: enough bits for certified double results.
    EXPECT_GT(igen::accuracyBits(R), 68.0) << X;
  }
}

TEST_F(ExecDdTest, HenonKeepsBitsLonger) {
  DdInterval R50 = toI(henon(ddi::fromPoint(0.0), ddi::fromPoint(0.0), 50));
  EXPECT_GT(igen::accuracyBits(R50), 60.0);
  DdInterval R90 = toI(henon(ddi::fromPoint(0.0), ddi::fromPoint(0.0), 90));
  EXPECT_GT(igen::accuracyBits(R90), 30.0);
  // Accuracy still decays with iteration count (dependency problem).
  EXPECT_GT(igen::accuracyBits(R50), igen::accuracyBits(R90));
}

TEST_F(ExecDdTest, DotExactAccumulator) {
  const int N = 500;
  std::vector<ddi> A(N), B(N);
  __float128 Ref = 0;
  for (int I = 0; I < N; ++I) {
    double X = uniform(-1, 1), Y = uniform(-1, 1);
    A[I] = ddi::fromPoint(X);
    B[I] = ddi::fromPoint(Y);
    Ref += (__float128)X * Y;
  }
  DdInterval R = toI(dot(A.data(), B.data(), N));
  EXPECT_TRUE(containsQ(R, Ref));
  EXPECT_GT(igen::accuracyBits(R), 85.0);
}

TEST_F(ExecDdTest, AxpySound) {
  const int N = 16;
  std::vector<ddi> X(N), Y(N);
  std::vector<__float128> RefY(N);
  for (int I = 0; I < N; ++I) {
    double XV = uniform(-5, 5), YV = uniform(-5, 5);
    X[I] = ddi::fromPoint(XV);
    Y[I] = ddi::fromPoint(YV);
    RefY[I] = (__float128)YV + (__float128)1.5 * XV;
  }
  axpy(ddi::fromPoint(1.5), X.data(), Y.data(), N);
  for (int I = 0; I < N; ++I) {
    EXPECT_TRUE(containsQ(toI(Y[I]), RefY[I])) << I;
    EXPECT_GT(igen::accuracyBits(toI(Y[I])), 95.0) << I;
  }
}

TEST_F(ExecDdTest, VectorizedDdKernel) {
  const int N = 8;
  std::vector<ddi> X(N), Y(N, ddi::fromPoint(0.0));
  for (int I = 0; I < N; ++I)
    X[I] = ddi::fromPoint(uniform(-3, 3));
  vscale(X.data(), Y.data(), N);
  for (int I = 0; I < N; ++I) {
    __float128 V = (__float128)toI(X[I]).Hi.H + toI(X[I]).Hi.L;
    EXPECT_TRUE(containsQ(toI(Y[I]), 3 * V)) << I;
    EXPECT_GT(igen::accuracyBits(toI(Y[I])), 90.0) << I;
  }
}

TEST_F(ExecDdTest, RatioDivisionDd) {
  for (int I = 0; I < 500; ++I) {
    double A = uniform(-10, 10), B = uniform(-10, 10);
    DdInterval R = toI(ratio(ddi::fromPoint(A), ddi::fromPoint(B)));
    __float128 Ref = ((__float128)A * A + 1) / ((__float128)B * B + 2);
    EXPECT_TRUE(containsQ(R, Ref));
    EXPECT_GT(igen::accuracyBits(R), 85.0);
  }
}

TEST_F(ExecDdTest, SensorTolerance) {
  DdInterval R = toI(sensor_scale(10.0));
  EXPECT_TRUE(containsQ(R, (__float128)19.0));
  EXPECT_TRUE(containsQ(R, (__float128)21.0));
  EXPECT_FALSE(containsQ(R, (__float128)18.9));
}

TEST_F(ExecDdTest, BranchOnDdIntervals) {
  DdInterval R =
      toI(absdiff(ddi::fromPoint(1.0), ddi::fromPoint(3.0)));
  EXPECT_TRUE(containsQ(R, (__float128)2.0));
  EXPECT_GT(igen::accuracyBits(R), 100.0);
}

TEST_F(ExecDdTest, ElementaryHullFallbackSound) {
  // ia_*_dd lower the transcendentals onto the f64 kernels applied to
  // the argument's outer double hull (igen_lib.h); the enclosure must
  // still contain the true image even though it is only f64i-tight.
  for (int I = 0; I < 200; ++I) {
    double X = uniform(-10.0, 10.0);
    ddi A = ddi::fromPoint(X);
    EXPECT_TRUE(containsQ(toI(ia_sin_dd(A)), (__float128)sinl(X)));
    EXPECT_TRUE(containsQ(toI(ia_cos_dd(A)), (__float128)cosl(X)));
    EXPECT_TRUE(containsQ(toI(ia_atan_dd(A)), (__float128)atanl(X)));
    double P = uniform(0.001, 10.0);
    ddi B = ddi::fromPoint(P);
    EXPECT_TRUE(containsQ(toI(ia_exp_dd(B)), (__float128)expl(P)));
    EXPECT_TRUE(containsQ(toI(ia_log_dd(B)), (__float128)logl(P)));
  }
  // The fallback narrows to the hull first, so a dd-tight input loses
  // nothing beyond the f64 kernel's width: result == f64 kernel on hull.
  ddi A = ia_set_tol_dd(0.3, 1e-30);
  f64i Hull = ia_narrow_dd_f64(A);
  f64i Direct = ia_sin_f64(Hull);
  f64i Round = ia_narrow_dd_f64(ia_sin_dd(A));
  EXPECT_EQ(ia_inf_f64(Round), ia_inf_f64(Direct));
  EXPECT_EQ(ia_sup_f64(Round), ia_sup_f64(Direct));
}
