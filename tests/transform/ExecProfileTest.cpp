//===- ExecProfileTest.cpp - Execute --profile instrumented kernels ----------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Inputs/profk.c is compiled by the igen driver twice -- with --profile
// and without -- and both results are linked here (ProfkProfTu.cpp /
// ProfkPlainTu.cpp). The tests verify the profiler's core contracts:
//
//  * Instrumentation never changes computed enclosures (bit-for-bit).
//  * Blowup attribution ranks the kernel's deliberate catastrophic-
//    cancellation site first.
//  * Merged per-site statistics are bit-identical however the same work
//    is partitioned across threads.
//  * The text and JSON reports carry the ranked site data.
//
//===----------------------------------------------------------------------===//

#include "interval/Rounding.h"
#include "interval/igen_lib.h"
#include "profile/Profile.h"
#include "runtime/ThreadPool.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

f64i cancel_prof(f64i x);
f64i cancel_plain(f64i x);
f64i dot_prof(f64i *a, f64i *b, int n);
f64i dot_plain(f64i *a, f64i *b, int n);

namespace {

using igen::Interval;
using igen::prof::SiteReport;

Interval toI(f64i V) { return V.toInterval(); }
f64i fromI(double Lo, double Hi) {
  return f64i::fromInterval(Interval::fromEndpoints(Lo, Hi));
}

bool bitEqual(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

/// One deterministic unit of work: a cancellation-heavy call plus a
/// short dot product, parameterized by a task index so any partitioning
/// of the index space records the same multiset of operations.
void workUnit(size_t I) {
  igen::RoundUpwardScope Up;
  double V = 1.0 + static_cast<double>(I) * 0.015625;
  f64i X = fromI(V, V + 1e-10);
  f64i R = cancel_prof(X);
  (void)R;
  f64i A[4], B[4];
  for (int K = 0; K < 4; ++K) {
    A[K] = fromI(V + K, V + K + 1e-9);
    B[K] = fromI(0.5 + K, 0.5 + K);
  }
  f64i D = dot_prof(A, B, 4);
  (void)D;
}

std::vector<SiteReport> snapshotAfter(unsigned Participants) {
  igen_prof_reset();
  igen::runtime::ThreadPool::instance().parallelFor(64, Participants,
                                                    workUnit);
  return igen::prof::snapshot();
}

} // namespace

TEST(ExecProfile, InstrumentedEnclosuresBitIdentical) {
  igen::RoundUpwardScope Up;
  for (int It = 0; It < 200; ++It) {
    double V = 0.75 + It * 0.03125;
    f64i X = fromI(V, V + 1e-10);
    Interval P = toI(cancel_prof(X)), Q = toI(cancel_plain(X));
    EXPECT_TRUE(bitEqual(P.NegLo, Q.NegLo) && bitEqual(P.Hi, Q.Hi))
        << "cancel diverged at V=" << V;

    f64i A[8], B[8], A2[8], B2[8];
    for (int K = 0; K < 8; ++K) {
      A2[K] = A[K] = fromI(V + K, V + K + 1e-9);
      B2[K] = B[K] = fromI(-K - 0.25, -K + 0.25);
    }
    Interval DP = toI(dot_prof(A, B, 8)), DQ = toI(dot_plain(A2, B2, 8));
    EXPECT_TRUE(bitEqual(DP.NegLo, DQ.NegLo) && bitEqual(DP.Hi, DQ.Hi))
        << "dot diverged at V=" << V;
  }
}

TEST(ExecProfile, BlowupAttributionRanksCancellationFirst) {
  igen_prof_reset();
  {
    igen::RoundUpwardScope Up;
    for (int It = 0; It < 256; ++It) {
      double V = 1.0 + It * 0.00390625;
      f64i R = cancel_prof(fromI(V, V + 1e-10));
      (void)R;
    }
  }
  std::vector<SiteReport> Sites = igen::prof::snapshot();
  ASSERT_FALSE(Sites.empty());
  // The subtraction cancels the 1e8 common term: absolute rounding error
  // acquired at magnitude 1e8 becomes relative width at magnitude ~1, a
  // growth of tens of bits per execution. It must rank first.
  EXPECT_EQ(Sites[0].Op, "sub");
  EXPECT_EQ(Sites[0].Func, "cancel");
  EXPECT_EQ(Sites[0].Count, 256u);
  EXPECT_GT(Sites[0].GrowthBits, 0u);
  EXPECT_GT(Sites[0].MaxGrowth, 1e3);
  EXPECT_GT(Sites[0].MaxRelW, 0.0);
  EXPECT_GE(Sites[0].MaxRelW, Sites[0].MeanRelW);
  // The multiply downstream only transports the width; it must not claim
  // the blowup.
  for (const SiteReport &S : Sites) {
    if (S.Op == "mul" && S.Func == "cancel") {
      EXPECT_LT(S.GrowthBits, Sites[0].GrowthBits);
    }
  }
}

TEST(ExecProfile, WholeIntervalEscapesCounted) {
  igen_prof_reset();
  {
    igen::RoundUpwardScope Up;
    f64i R = cancel_prof(f64i::fromInterval(Interval::entire()));
    (void)R;
  }
  std::vector<SiteReport> Sites = igen::prof::snapshot();
  uint64_t Whole = 0;
  for (const SiteReport &S : Sites)
    Whole += S.WholeCount;
  EXPECT_GT(Whole, 0u);
}

TEST(ExecProfile, ThreadMergeBitIdenticalAcrossPartitionings) {
  std::vector<SiteReport> R1 = snapshotAfter(1);
  std::vector<SiteReport> R2 = snapshotAfter(2);
  std::vector<SiteReport> R4 = snapshotAfter(4);
  ASSERT_EQ(R1.size(), R2.size());
  ASSERT_EQ(R1.size(), R4.size());
  for (size_t I = 0; I < R1.size(); ++I) {
    for (const std::vector<SiteReport> *Other : {&R2, &R4}) {
      const SiteReport &A = R1[I], &B = (*Other)[I];
      EXPECT_EQ(A.Id, B.Id);
      EXPECT_EQ(A.Count, B.Count);
      EXPECT_EQ(A.NanCount, B.NanCount);
      EXPECT_EQ(A.WholeCount, B.WholeCount);
      EXPECT_EQ(A.GrowthBits, B.GrowthBits);
      EXPECT_TRUE(bitEqual(A.MaxRelW, B.MaxRelW));
      EXPECT_TRUE(bitEqual(A.MeanRelW, B.MeanRelW));
      EXPECT_TRUE(bitEqual(A.MaxGrowth, B.MaxGrowth));
    }
  }
}

TEST(ExecProfile, ReportsCarryRankedSites) {
  igen_prof_reset();
  {
    igen::RoundUpwardScope Up;
    f64i R = cancel_prof(fromI(2.0, 2.0 + 1e-10));
    (void)R;
  }
  std::string Text = igen::prof::reportText();
  EXPECT_NE(Text.find("igen precision profile"), std::string::npos);
  EXPECT_NE(Text.find("sub"), std::string::npos);
  EXPECT_NE(Text.find("(cancel)"), std::string::npos);

  std::string Json = igen::prof::reportJson();
  EXPECT_NE(Json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(Json.find("\"report\": \"igen_profile\""), std::string::npos);
  EXPECT_NE(Json.find("\"op\": \"sub\""), std::string::npos);
  EXPECT_NE(Json.find("\"growth_bits\""), std::string::npos);

  std::string Path =
      ::testing::TempDir() + "igen_prof_report_test.json";
  ASSERT_EQ(igen_prof_report_json(Path.c_str()), 0);
  std::FILE *F = std::fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  char Buf[64] = {0};
  size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  std::remove(Path.c_str());
  ASSERT_GT(N, 0u);
  EXPECT_EQ(Buf[0], '{');
}
