//===- ReductionAnalysisTest.cpp - Reduction detection tests -----------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "analysis/ReductionAnalysis.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"

#include <gtest/gtest.h>

using namespace igen;

namespace {

struct Analyzed {
  std::unique_ptr<ASTContext> Ctx;
  DiagnosticsEngine Diags;
  ReductionAnalysisResult Result;
  FunctionDecl *F = nullptr;
};

Analyzed analyze(std::string_view Src, const char *Fn) {
  Analyzed A;
  A.Ctx = std::make_unique<ASTContext>();
  Parser P(Src, *A.Ctx, A.Diags);
  EXPECT_TRUE(P.parseTranslationUnit()) << A.Diags.render("test");
  Sema S(*A.Ctx, A.Diags);
  EXPECT_TRUE(S.run()) << A.Diags.render("test");
  A.F = A.Ctx->TU.findFunction(Fn);
  A.Result = analyzeReductions(A.F, A.Diags);
  return A;
}

/// First ForStmt in a statement (searching compounds).
ForStmt *firstFor(Stmt *S) {
  if (!S)
    return nullptr;
  if (auto *For = dynCast<ForStmt>(S))
    return For;
  if (auto *C = dynCast<CompoundStmt>(S)) {
    for (Stmt *Child : C->Body)
      if (ForStmt *For = firstFor(Child))
        return For;
  }
  return nullptr;
}

/// The ForStmt at nesting depth \p Depth of the function's first loop nest.
ForStmt *innerLoop(FunctionDecl *F, int Depth) {
  ForStmt *For = firstFor(F->Body);
  for (int I = 1; For && I < Depth; ++I)
    For = firstFor(For->Body);
  return For;
}

} // namespace

TEST(ReductionAnalysis, PaperMvmExample) {
  Analyzed A = analyze(
      "void mvm(double *A, double *x, double *y) {\n"
      "  #pragma igen reduce y\n"
      "  for (int i = 0; i < 100; i++)\n"
      "    for (int j = 0; j < 500; j++)\n"
      "      y[i] = y[i] + A[i * 500 + j] * x[j];\n"
      "}\n",
      "mvm");
  ASSERT_EQ(A.Result.Sites.size(), 1u);
  const ReductionSite &Site = A.Result.Sites[0];
  ASSERT_EQ(Site.Terms.size(), 1u);
  EXPECT_FALSE(Site.Terms[0].Negated);
  // Accumulator sits around the *inner* loop (target y[i] varies with i).
  EXPECT_EQ(Site.AccumLoop, innerLoop(A.F, 2));
}

TEST(ReductionAnalysis, ScalarDotProduct) {
  Analyzed A = analyze("double dot(double *a, double *b, int n) {\n"
                       "  double s = 0.0;\n"
                       "  #pragma igen reduce s\n"
                       "  for (int i = 0; i < n; i++)\n"
                       "    s = s + a[i] * b[i];\n"
                       "  return s;\n"
                       "}\n",
                       "dot");
  ASSERT_EQ(A.Result.Sites.size(), 1u);
  // s invariant in the (only) loop: accumulate around it.
  const auto *For = dynCast<ForStmt>(A.F->Body->Body[1]);
  EXPECT_EQ(A.Result.Sites[0].AccumLoop, For);
}

TEST(ReductionAnalysis, CompoundAssignAndSubtraction) {
  Analyzed A = analyze("double f(double *a, int n) {\n"
                       "  double s = 0.0;\n"
                       "  #pragma igen reduce s\n"
                       "  for (int i = 0; i < n; i++)\n"
                       "    s += a[i] - a[0];\n"
                       "  return s;\n"
                       "}\n",
                       "f");
  ASSERT_EQ(A.Result.Sites.size(), 1u);
  ASSERT_EQ(A.Result.Sites[0].Terms.size(), 2u);
  EXPECT_FALSE(A.Result.Sites[0].Terms[0].Negated);
  EXPECT_TRUE(A.Result.Sites[0].Terms[1].Negated);
}

TEST(ReductionAnalysis, TargetOnRightSide) {
  Analyzed A = analyze("double f(double *a, int n) {\n"
                       "  double s = 0.0;\n"
                       "  #pragma igen reduce s\n"
                       "  for (int i = 0; i < n; i++)\n"
                       "    s = a[i] + s;\n"
                       "  return s;\n"
                       "}\n",
                       "f");
  EXPECT_EQ(A.Result.Sites.size(), 1u);
}

TEST(ReductionAnalysis, NotAReductionWithoutSelfReference) {
  Analyzed A = analyze("void f(double *y, double *x) {\n"
                       "  #pragma igen reduce y\n"
                       "  for (int i = 0; i < 4; i++)\n"
                       "    y[i] = x[i] + 1.0;\n"
                       "}\n",
                       "f");
  EXPECT_TRUE(A.Result.Sites.empty());
  bool Warned = false;
  for (const Diagnostic &D : A.Diags.diagnostics())
    if (D.Severity == DiagSeverity::Warning)
      Warned = true;
  EXPECT_TRUE(Warned);
}

TEST(ReductionAnalysis, MultiplicativeUpdateNotDetected) {
  // Only summations are transformed (Section VI-B).
  Analyzed A = analyze("double f(double *a, int n) {\n"
                       "  double p = 1.0;\n"
                       "  #pragma igen reduce p\n"
                       "  for (int i = 0; i < n; i++)\n"
                       "    p = p * a[i];\n"
                       "  return p;\n"
                       "}\n",
                       "f");
  EXPECT_TRUE(A.Result.Sites.empty());
}

TEST(ReductionAnalysis, NoPragmaNoDetection) {
  Analyzed A = analyze("double f(double *a, int n) {\n"
                       "  double s = 0.0;\n"
                       "  for (int i = 0; i < n; i++)\n"
                       "    s = s + a[i];\n"
                       "  return s;\n"
                       "}\n",
                       "f");
  EXPECT_TRUE(A.Result.Sites.empty());
}

TEST(ReductionAnalysis, TargetVaryingInInnermostLoopRejected) {
  Analyzed A = analyze("void f(double *y, double *x) {\n"
                       "  #pragma igen reduce y\n"
                       "  for (int i = 0; i < 4; i++)\n"
                       "    y[i] = y[i] + x[i];\n"
                       "}\n",
                       "f");
  // y[i] varies with the only loop: no carried reduction.
  EXPECT_TRUE(A.Result.Sites.empty());
}

TEST(ReductionAnalysis, UsesOutsideUpdateBlockHoisting) {
  Analyzed A = analyze("double f(double *a, int n) {\n"
                       "  double s = 0.0;\n"
                       "  double last = 0.0;\n"
                       "  #pragma igen reduce s\n"
                       "  for (int i = 0; i < n; i++) {\n"
                       "    for (int j = 0; j < n; j++)\n"
                       "      s = s + a[j];\n"
                       "    last = s;\n"
                       "  }\n"
                       "  return s + last;\n"
                       "}\n",
                       "f");
  ASSERT_EQ(A.Result.Sites.size(), 1u);
  // `last = s` reads s inside the i-loop: accumulator must stay at the
  // inner j-loop even though s is invariant in i too.
  EXPECT_EQ(A.Result.Sites[0].AccumLoop, innerLoop(A.F, 2));
}

TEST(ReductionAnalysis, ExprEqualityHelper) {
  Analyzed A = analyze("void f(double *y) {\n"
                       "  #pragma igen reduce y\n"
                       "  for (int i = 0; i < 2; i++)\n"
                       "    for (int j = 0; j < 2; j++)\n"
                       "      y[i + 1] = y[i + 1] + 1.0;\n"
                       "}\n",
                       "f");
  // Structural equality must see y[i+1] == y[i+1].
  EXPECT_EQ(A.Result.Sites.size(), 1u);
}
