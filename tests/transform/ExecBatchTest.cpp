//===- ExecBatchTest.cpp - Execute --batch-loops compiled kernels -----------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Links against code produced by `igen --batch-loops` at build time from
// Inputs/batchk.c and verifies the collapsed ia_arr_* calls compute sound
// enclosures of long-double references. Built twice: with
// IGEN_BATCH_RUNTIME (the ia_arr_* wrappers dispatch into the
// SIMD-tiered batched runtime) and without (the portable per-element
// fallback loops). Both must be sound; enclosures are identical across
// the two modes by the runtime's bit-identity contract.
//
//===----------------------------------------------------------------------===//

#include "interval/igen_lib.h"

#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

// Prototypes of the generated functions.
void vadd(f64i *d, f64i *a, f64i *b, int n);
void vsub(f64i *d, f64i *a, f64i *b, int n);
void vmul(f64i *d, f64i *a, f64i *b, int n);
void vdiv(f64i *d, f64i *a, f64i *b, int n);
void vsqrt(f64i *d, f64i *a, int n);
void vnorm2(f64i *d, f64i *a, f64i *b, int n);

namespace {

using igen::Interval;

Interval toI(f64i V) {
#if defined(IGEN_F64I_SCALAR)
  return V;
#else
  return V.toInterval();
#endif
}

bool containsLd(const Interval &I, long double V) {
  if (I.hasNaN())
    return true;
  return -static_cast<long double>(I.NegLo) <= V &&
         V <= static_cast<long double>(I.Hi);
}

class ExecBatchTest : public ::testing::Test {
protected:
  igen::RoundUpwardScope Up;
  std::mt19937_64 Gen{1234};
  static constexpr int N = 257; // odd, spans several SIMD tail shapes
  std::vector<double> A, B;
  std::vector<f64i> IA, IB, ID;

  void SetUp() override {
    A.resize(N);
    B.resize(N);
    IA.resize(N);
    IB.resize(N);
    ID.resize(N);
    std::uniform_real_distribution<double> U(-100.0, 100.0);
    for (int I = 0; I < N; ++I) {
      A[I] = U(Gen);
      B[I] = U(Gen);
      if (std::fabs(B[I]) < 1.0)
        B[I] = B[I] < 0.0 ? B[I] - 1.0 : B[I] + 1.0; // keep divisors off 0
      IA[I] = f64i::fromPoint(A[I]);
      IB[I] = f64i::fromPoint(B[I]);
    }
  }
};

} // namespace

TEST_F(ExecBatchTest, AddSubMulDivEncloseLongDoubleReference) {
  vadd(ID.data(), IA.data(), IB.data(), N);
  for (int I = 0; I < N; ++I)
    EXPECT_TRUE(containsLd(toI(ID[I]),
                           static_cast<long double>(A[I]) + B[I]))
        << I;
  vsub(ID.data(), IA.data(), IB.data(), N);
  for (int I = 0; I < N; ++I)
    EXPECT_TRUE(containsLd(toI(ID[I]),
                           static_cast<long double>(A[I]) - B[I]))
        << I;
  vmul(ID.data(), IA.data(), IB.data(), N);
  for (int I = 0; I < N; ++I)
    EXPECT_TRUE(containsLd(toI(ID[I]),
                           static_cast<long double>(A[I]) * B[I]))
        << I;
  vdiv(ID.data(), IA.data(), IB.data(), N);
  for (int I = 0; I < N; ++I)
    EXPECT_TRUE(containsLd(toI(ID[I]),
                           static_cast<long double>(A[I]) / B[I]))
        << I;
}

TEST_F(ExecBatchTest, SqrtEnclosesAndDivIsTight) {
  for (int I = 0; I < N; ++I)
    IA[I] = f64i::fromPoint(std::fabs(A[I]));
  vsqrt(ID.data(), IA.data(), N);
  for (int I = 0; I < N; ++I) {
    Interval R = toI(ID[I]);
    EXPECT_TRUE(containsLd(R, sqrtl(std::fabs(A[I])))) << I;
    // Point input: the enclosure is at most a few ulp wide.
    EXPECT_LE(R.Hi - (-R.NegLo), 4.0 * std::fabs(R.Hi) * 0x1p-52) << I;
  }
}

TEST_F(ExecBatchTest, ZeroContainingDivisorYieldsSoundWideInterval) {
  IB[7] = f64i::fromEndpoints(-0.5, 0.5);
  vdiv(ID.data(), IA.data(), IB.data(), N);
  Interval R = toI(ID[7]);
  // 0 interior to the divisor: quotient must cover the whole line.
  EXPECT_EQ(-R.NegLo, -std::numeric_limits<double>::infinity());
  EXPECT_EQ(R.Hi, std::numeric_limits<double>::infinity());
  // Neighbours are unaffected.
  EXPECT_TRUE(containsLd(toI(ID[6]),
                         static_cast<long double>(A[6]) / B[6]));
  EXPECT_TRUE(containsLd(toI(ID[8]),
                         static_cast<long double>(A[8]) / B[8]));
}

TEST_F(ExecBatchTest, NonMatchingLoopStaysSoundElementwise) {
  vnorm2(ID.data(), IA.data(), IB.data(), N);
  for (int I = 0; I < N; ++I) {
    long double Ref = static_cast<long double>(A[I]) * A[I] +
                      static_cast<long double>(B[I]) * B[I];
    EXPECT_TRUE(containsLd(toI(ID[I]), Ref)) << I;
  }
}
