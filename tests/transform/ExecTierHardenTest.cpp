//===- ExecTierHardenTest.cpp - Tiering under fenv faults (--tier --harden) --===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Inputs/tierk.c compiled with --tier --harden: both the f64i wrapper
// and its ddi clone carry the fenv-sentinel prologue. The fault matrix
// for the combination:
//
//  * clean environment: the tier contract is unchanged (escalation on
//    blowup, meet with the clone's narrowed result);
//  * environment corrupted before the wrapper runs (poison policy):
//    the wrapper's prologue fires first, the whole line comes back,
//    the environment is repaired, and the very next call behaves as if
//    nothing happened -- no stuck escalation state;
//  * environment corrupted at the clone's entry check (the "fault
//    inside the escalated region" leg): the clone poisons ITS result
//    to the whole ddi line, and the wrapper's meet then degrades to
//    the f64i result instead of widening the final answer to the
//    whole line -- sound, and strictly better than not tiering.
//
//===----------------------------------------------------------------------===//

#include "harden/FenvSentinel.h"
#include "interval/Rounding.h"
#include "interval/igen_lib.h"
#include "profile/TierRuntime.h"

#include <cfenv>
#include <cstdlib>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

f64i k_iter_hard(f64i x, f64i y, int n);
ddi k_iter__dd(ddi x, ddi y, int n);

namespace {

using igen::Interval;
using namespace igen::harden;

Interval toI(f64i V) { return V.toInterval(); }
f64i fromI(double Lo, double Hi) {
  return f64i::fromInterval(Interval::fromEndpoints(Lo, Hi));
}
bool bitEqual(f64i A, f64i B) {
  Interval P = toI(A), Q = toI(B);
  return std::memcmp(&P.NegLo, &Q.NegLo, sizeof(double)) == 0 &&
         std::memcmp(&P.Hi, &Q.Hi, sizeof(double)) == 0;
}
bool isEntire(f64i V) {
  Interval I = toI(V);
  double Inf = std::numeric_limits<double>::infinity();
  return I.lo() == -Inf && I.hi() == Inf;
}

class ExecTierHardenTest : public ::testing::Test {
protected:
  void SetUp() override { resetAll(); }
  void TearDown() override { resetAll(); }

  static void resetAll() {
    std::fesetround(FE_TONEAREST);
    writeMxcsr(readMxcsr() & ~(kMxcsrFtz | kMxcsrDaz));
    igen::invalidateRoundingCache();
    setFenvPolicy(FenvPolicy::Repair);
    resetFenvStats();
    unsetenv("IGEN_TIER_WIDTH");
    unsetenv("IGEN_TIER_MAX");
    igen_tier_env_refresh();
    igen_tier_reset();
  }

  // Hard point inputs: deep enough into the chaotic regime that the
  // f64i enclosure trips the blowup predicate.
  static constexpr int N = 45;
  f64i hardX() { return fromI(0.3, 0.3); }
  f64i hardY() { return fromI(0.24, 0.24); }
};

} // namespace

TEST_F(ExecTierHardenTest, CleanEnvironmentKeepsTierContract) {
  igen::RoundUpwardScope Up;
  f64i T = k_iter_hard(hardX(), hardY(), N);
  ddi C = k_iter__dd(ia_promote_f64_dd(hardX()), ia_promote_f64_dd(hardY()),
                     N);
  EXPECT_FALSE(isEntire(T));
  EXPECT_GE(igen::tier::snapshot().at(0).Escalations, 1u);
  // The clone ran clean, so the escalated result contains its narrowing.
  Interval TI = toI(T), CI = toI(ia_narrow_dd_f64(C));
  EXPECT_LE(TI.NegLo, CI.NegLo);
  EXPECT_LE(TI.Hi, CI.Hi);
}

TEST_F(ExecTierHardenTest, WrapperPrologueCatchesPoisonedEntry) {
  setFenvPolicy(FenvPolicy::Poison);
  igen::RoundUpwardScope Up;
  f64i Ref = k_iter_hard(hardX(), hardY(), N);
  igen_tier_reset();

  // A foreign library resets the rounding mode behind the cached scope.
  std::fesetround(FE_TONEAREST);
  f64i Poisoned = k_iter_hard(hardX(), hardY(), N);
  EXPECT_TRUE(isEntire(Poisoned));
  // The prologue returns before the region-exit predicate runs.
  EXPECT_EQ(igen::tier::snapshot().at(0).Checks, 0u);
  EXPECT_GE(fenvStats().Violations, 1u);

  // The sentinel repaired the environment: the next call is unaffected.
  f64i After = k_iter_hard(hardX(), hardY(), N);
  EXPECT_TRUE(bitEqual(After, Ref));
  EXPECT_GE(igen::tier::snapshot().at(0).Escalations, 1u);
}

TEST_F(ExecTierHardenTest, PoisonedCloneDegradesToF64NotWhole) {
  setFenvPolicy(FenvPolicy::Poison);
  igen::RoundUpwardScope Up;

  // The pure f64i tier result: same wrapper with escalation disabled.
  setenv("IGEN_TIER_MAX", "1", 1);
  igen_tier_env_refresh();
  f64i F64Only = k_iter_hard(hardX(), hardY(), N);
  unsetenv("IGEN_TIER_MAX");
  igen_tier_env_refresh();

  // Simulate the fenv fault landing exactly at the escalated region:
  // the clone's own prologue sees the dirty environment, poisons its
  // result to the whole ddi line, and repairs.
  std::fesetround(FE_TONEAREST);
  ddi C = k_iter__dd(ia_promote_f64_dd(hardX()), ia_promote_f64_dd(hardY()),
                     N);
  f64i Narrowed = ia_narrow_dd_f64(C);
  EXPECT_TRUE(isEntire(Narrowed));
  EXPECT_GE(fenvStats().Violations, 1u);

  // The wrapper's meet with a whole-line clone result is exactly the
  // f64i result: poisoning the rerun can never widen the answer.
  EXPECT_TRUE(bitEqual(ia_meet_f64(F64Only, Narrowed), F64Only));

  // And a full tiered call after the repair escalates for real again.
  f64i T = k_iter_hard(hardX(), hardY(), N);
  EXPECT_FALSE(isEntire(T));
  EXPECT_TRUE(bitEqual(T, ia_meet_f64(F64Only, ia_narrow_dd_f64(
                              k_iter__dd(ia_promote_f64_dd(hardX()),
                                         ia_promote_f64_dd(hardY()), N)))));
}
