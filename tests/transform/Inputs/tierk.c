/* Kernels for the adaptive precision tiering tests (--tier).

   `k_iter` is a Henon-style chaotic map: interval widths blow up
   exponentially in the iteration count at f64i precision, so hard
   inputs (wide boxes or many iterations) trip the region-exit blowup
   predicate while easy inputs stay below it. Every operation on the
   return path is rounded arithmetic, so the region is movable and the
   ddi rerun genuinely tightens the enclosure.

   `k_env` computes an envelope bound from exact-transfer operations
   only (fabs/fmax selection and unary negation). The movability
   analysis must classify its result immovable: a ddi rerun would
   return the identical interval, so the transform emits the pruned
   (no-clone-call) wrapper.

   `k_sumsq` exercises the uniform memory ABI: array parameters stay
   f64i in the ddi clone, with loads promoted and stores narrowed.
   `xs` is read-only and `out` write-only, which keeps the function
   tier-eligible. */

double k_iter(double x, double y, int n) {
  for (int i = 0; i < n; i++) {
    double xi = x;
    x = 1.0 - 1.05 * xi * xi + y;
    y = 0.3 * xi;
  }
  return x;
}

double k_env(double x, double y) {
  double m = fmax(fabs(x), fabs(y));
  return -m;
}

double k_sumsq(double *xs, double *out, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) {
    double h = xs[i] * xs[i] - 0.1;
    out[i] = h;
    s = s + h;
  }
  return s;
}
