/* Kernels for the precision profiler tests. `cancel` contains a
   deliberate catastrophic-cancellation site: the subtraction strips the
   large common term, so the absolute rounding error picked up at 1e8
   magnitude becomes a huge *relative* width at magnitude ~1. Blowup
   attribution must rank that subtraction first. `dot` provides a loop
   with a carried accumulation for the thread-merge determinism test. */

double cancel(double x) {
  double big = x + 100000000.0;
  double d = big - 100000000.0;
  return d * 3.0;
}

double dot(const double *a, const double *b, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) {
    s = s + a[i] * b[i];
  }
  return s;
}
