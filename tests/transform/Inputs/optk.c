/* Kernels exercising the mid-end optimizer: guard-derived sign facts,
   sign-specialized multiplies and divides, FMA fusion, CSE, and
   loop-invariant hoisting. Compiled twice (default -O and -O0) so the
   exec test can compare enclosures. */

double opt_horner(const double *coef, double x, int d) {
  double r = 0.0;
  if (x > 0.0) {
    r = coef[d];
    for (int k = d - 1; k >= 0; k--) {
      r = r * x + coef[k];
    }
  }
  return r;
}

double opt_pade(double x) {
  double r = 0.0;
  if (x > 0.0) {
    double p = 0.125 + x * (2.0 + x);
    double q = 2.0 + x * (0.5 + x);
    r = p / q;
  }
  return r;
}

double opt_henon(double x, double y, int n) {
  double a = 1.05;
  double b = 0.3;
  for (int i = 0; i < n; i++) {
    double xi = x;
    double yi = y;
    x = 1 - a * xi * xi + yi;
    y = b * xi;
  }
  return x;
}

double opt_invsq(double x) {
  double r = 0.0;
  if (x > 1.0) {
    r = 1.0 / (x * x);
  }
  return r;
}

double opt_negsq(double x, double y) {
  double r = 0.0;
  if (x < 0.0) {
    if (y < x) {
      r = x * y;
    }
  }
  return r;
}

double opt_elem(double x) {
  double r = 0.0;
  if (x > 0.0) {
    r = exp(0.5 * sin(x)) + log(2.0 + cos(x));
  }
  return r;
}

double opt_cse(const double *v, double a, double b, int n) {
  double s = 0.0;
  for (int i = 0; i < n; i++) {
    s = s + (a * b + 1.0) * v[i] + (a * b + 1.0);
  }
  return s;
}
