/* Elementwise array kernels for the --batch-loops exec tests. Each loop
 * matches the batched shape and compiles to a single ia_arr_* call. */

void vadd(double *d, double *a, double *b, int n) {
  for (int i = 0; i < n; i++)
    d[i] = a[i] + b[i];
}

void vsub(double *d, double *a, double *b, int n) {
  for (int i = 0; i < n; i++)
    d[i] = a[i] - b[i];
}

void vmul(double *d, double *a, double *b, int n) {
  for (int i = 0; i < n; i++)
    d[i] = a[i] * b[i];
}

void vdiv(double *d, double *a, double *b, int n) {
  for (int i = 0; i < n; i++)
    d[i] = a[i] / b[i];
}

void vsqrt(double *d, double *a, int n) {
  for (int i = 0; i < n; i++)
    d[i] = sqrt(a[i]);
}

/* Does not match the batched shape (two-statement body); stays an
 * elementwise loop so the two paths coexist in one translation unit. */
void vnorm2(double *d, double *a, double *b, int n) {
  for (int i = 0; i < n; i++) {
    d[i] = a[i] * a[i];
    d[i] = d[i] + b[i] * b[i];
  }
}
