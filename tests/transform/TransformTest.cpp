//===- TransformTest.cpp - Interval transformation unit tests ---------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"

#include <gmock/gmock.h>
#include <gtest/gtest.h>

using namespace igen;

namespace {

std::string compile(std::string_view Src, TransformOptions Opts = {}) {
  DiagnosticsEngine Diags;
  auto Out = compileToIntervals(Src, Opts, Diags);
  EXPECT_TRUE(Out.has_value()) << Diags.render("test");
  return Out.value_or("");
}

bool fails(std::string_view Src, TransformOptions Opts = {}) {
  DiagnosticsEngine Diags;
  return !compileToIntervals(Src, Opts, Diags).has_value();
}

using ::testing::HasSubstr;
using ::testing::Not;

} // namespace

TEST(Transform, PaperFigure2) {
  std::string Out = compile("double foo(double a, double b) {\n"
                            "  double c;\n"
                            "  c = a + b + 0.1;\n"
                            "  if (c > a) {\n"
                            "    c = a * c;\n"
                            "  }\n"
                            "  return c;\n"
                            "}\n");
  EXPECT_THAT(Out, HasSubstr("#include \"interval/igen_lib.h\""));
  EXPECT_THAT(Out, HasSubstr("f64i foo(f64i a, f64i b)"));
  EXPECT_THAT(Out, HasSubstr("ia_add_f64(a, b)"));
  // The constant 0.1 is lifted to its neighbouring doubles.
  EXPECT_THAT(Out, HasSubstr("ia_set_f64(0.09999999999999999"));
  EXPECT_THAT(Out, HasSubstr("tbool _t1 = ia_cmpgt_f64(c, a);"));
  EXPECT_THAT(Out, HasSubstr("if (ia_cvt2bool_tb(_t1))"));
  EXPECT_THAT(Out, HasSubstr("ia_mul_f64(a, c)"));
}

TEST(Transform, PaperFigure3Tolerances) {
  std::string Out = compile("double read_sensor(double:0.125 a) {\n"
                            "  double c = 5.0 + 0.25t;\n"
                            "  return a + c;\n"
                            "}\n");
  // Parameter keeps its scalar type; an interval shadow is introduced.
  EXPECT_THAT(Out, HasSubstr("f64i read_sensor(double a)"));
  EXPECT_THAT(Out, HasSubstr("f64i _a = ia_set_tol_f64(a, 0.125"));
  // 5.0 + 0.25t folds to a single constant interval ~ [4.75, 5.25].
  EXPECT_THAT(Out, HasSubstr("ia_set_f64(4.74"));
  EXPECT_THAT(Out, HasSubstr("ia_add_f64(_a, c)"));
}

TEST(Transform, IntegerConstantsAreExact) {
  std::string Out =
      compile("double f(double x) { return x + 1.0 + 2.0; }");
  EXPECT_THAT(Out, HasSubstr("ia_cst_f64(1")); // point interval
  EXPECT_THAT(Out, Not(HasSubstr("ia_set_f64(1")));
}

TEST(Transform, ConstantFolding) {
  std::string Out = compile("double f(double x) { return x * (2.0 + 0.1); }");
  // 2.0 + 0.1 folds into one interval constant around 2.1.
  EXPECT_THAT(Out, HasSubstr("ia_set_f64(2.09999999"));
  EXPECT_THAT(Out, Not(HasSubstr("ia_add_f64(ia_cst")));
}

TEST(Transform, IntLiteralMixesWithIntervals) {
  std::string Out = compile("double f(double x) { return 1 - x; }");
  EXPECT_THAT(Out, HasSubstr("ia_sub_f64(ia_cst_f64("));
}

TEST(Transform, IntExpressionsUntouched) {
  std::string Out = compile("int f(int a, int b) { return a * b + 3; }");
  EXPECT_THAT(Out, HasSubstr("return (a * b) + 3;"));
  EXPECT_THAT(Out, Not(HasSubstr("ia_")));
}

TEST(Transform, IndexLiftingAndPointers) {
  std::string Out = compile(
      "void axpy(double alpha, double *x, double *y, int n) {\n"
      "  for (int i = 0; i < n; i++)\n"
      "    y[i] = y[i] + alpha * x[i];\n"
      "}\n");
  EXPECT_THAT(Out, HasSubstr("void axpy(f64i alpha, f64i *x, f64i *y"));
  // The add feeds the loop-carried accumulator y[i], so the optimizer
  // deliberately keeps it unfused (fusing would serialize the loop on
  // the fma latency).
  EXPECT_THAT(Out,
              HasSubstr("y[i] = ia_add_f64(y[i], ia_mul_f64(alpha, x[i]))"));
}

TEST(Transform, MathFunctionsMap) {
  // Default -O1: the transcendentals with certified polynomial kernels
  // lower to the _fast variants; sqrt/abs have no polynomial version.
  std::string Out =
      compile("double f(double x) { return sin(x) + sqrt(fabs(x)); }");
  EXPECT_THAT(Out, HasSubstr("ia_sin_fast_f64(x)"));
  EXPECT_THAT(Out, HasSubstr("ia_sqrt_f64(ia_abs_f64(x))"));
}

TEST(Transform, MathFunctionsKeepLibmPathAtO0) {
  TransformOptions Opts;
  Opts.OptLevel = 0;
  std::string Out = compile(
      "double f(double x) { return exp(x) + log(x) + sin(x) + cos(x); }",
      Opts);
  EXPECT_THAT(Out, HasSubstr("ia_exp_f64(x)"));
  EXPECT_THAT(Out, HasSubstr("ia_log_f64(x)"));
  EXPECT_THAT(Out, HasSubstr("ia_sin_f64(x)"));
  EXPECT_THAT(Out, HasSubstr("ia_cos_f64(x)"));
  EXPECT_THAT(Out, Not(HasSubstr("_fast_f64")));
}

TEST(Transform, MathFunctionsUseFastKernelsAtO1) {
  std::string Out = compile(
      "double f(double x) { return exp(x) + log(x) + sin(x) + cos(x); }");
  EXPECT_THAT(Out, HasSubstr("ia_exp_fast_f64(x)"));
  EXPECT_THAT(Out, HasSubstr("ia_log_fast_f64(x)"));
  EXPECT_THAT(Out, HasSubstr("ia_sin_fast_f64(x)"));
  EXPECT_THAT(Out, HasSubstr("ia_cos_fast_f64(x)"));
  // tan has no certified polynomial kernel; it stays on the libm path
  // at every level.
  std::string Tan = compile("double g(double x) { return tan(x); }");
  EXPECT_THAT(Tan, HasSubstr("ia_tan_f64(x)"));
}

TEST(Transform, CompoundAssignments) {
  std::string Out = compile("void f(double *s, double x) {\n"
                            "  *s += x;\n"
                            "  *s *= 2.0;\n"
                            "}\n");
  EXPECT_THAT(Out, HasSubstr("*s = ia_add_f64(*s, x);"));
  // 2.0 is provably positive, so -O specializes (and commutes) the
  // multiply.
  EXPECT_THAT(Out, HasSubstr("*s = ia_mul_pu_f64(ia_cst_f64(2"));
}

TEST(Transform, DdTarget) {
  TransformOptions Opts;
  Opts.Prec = TransformOptions::Precision::DoubleDouble;
  std::string Out = compile("double f(double a, double b) {\n"
                            "  double c = a * b + 0.1;\n"
                            "  return c / b;\n"
                            "}\n",
                            Opts);
  EXPECT_THAT(Out, HasSubstr("ddi f(ddi a, ddi b)"));
  EXPECT_THAT(Out, HasSubstr("ia_mul_dd(a, b)"));
  EXPECT_THAT(Out, HasSubstr("ia_div_dd(c, b)"));
  // 0.1 gets a double-double-tight enclosure: four endpoint words.
  EXPECT_THAT(Out, HasSubstr("ia_set_ddc(0.099999999999999992, "));
}

TEST(Transform, DdElementaryHullFallback) {
  // sqrt is native at dd accuracy; the transcendentals lower to the
  // ia_*_dd hull fallbacks (f64 kernel on the outer double hull), which
  // is what lets --tier clones of transcendental kernels compile.
  TransformOptions Opts;
  Opts.Prec = TransformOptions::Precision::DoubleDouble;
  EXPECT_THAT(compile("double f(double x) { return sin(x); }", Opts),
              HasSubstr("ia_sin_dd(x)"));
  EXPECT_THAT(compile("double f(double x) { return sqrt(x); }", Opts),
              HasSubstr("ia_sqrt_dd(x)"));
}

TEST(Transform, ScalarLibraryDefine) {
  TransformOptions Opts;
  Opts.ScalarLibrary = true;
  std::string Out = compile("double f(double x) { return x; }", Opts);
  EXPECT_THAT(Out, HasSubstr("#define IGEN_F64I_SCALAR 1"));
}

TEST(Transform, SimdIntrinsicsHandOptimized) {
  std::string Out = compile(
      "#include <immintrin.h>\n"
      "void vaxpy(double *x, double *y) {\n"
      "  __m256d a = _mm256_loadu_pd(x);\n"
      "  __m256d b = _mm256_loadu_pd(y);\n"
      "  _mm256_storeu_pd(y, _mm256_add_pd(a, b));\n"
      "}\n");
  EXPECT_THAT(Out, HasSubstr("m256di_2 a = ia_loadu_m256di_2(x)"));
  EXPECT_THAT(Out,
              HasSubstr("ia_storeu_m256di_2(y, ia_add_m256di_2(a, b))"));
  // Hand-optimized set only: no generated-intrinsics include needed.
  EXPECT_THAT(Out, Not(HasSubstr("igen_simd.h")));
}

TEST(Transform, SimdIntrinsicsGeneratedFallback) {
  std::string Out = compile(
      "#include <immintrin.h>\n"
      "__m256d f(__m256d a, __m256d b) {\n"
      "  return _mm256_unpacklo_pd(a, b);\n"
      "}\n");
  EXPECT_THAT(Out, HasSubstr("_ci_mm256_unpacklo_pd(a, b)"));
  EXPECT_THAT(Out, HasSubstr("#include \"igen_simd.h\""));
}

TEST(Transform, SimdDdUsesAutomaticPath) {
  TransformOptions Opts;
  Opts.Prec = TransformOptions::Precision::DoubleDouble;
  std::string Out = compile(
      "#include <immintrin.h>\n"
      "void f(double *x, double *y) {\n"
      "  __m256d a = _mm256_loadu_pd(x);\n"
      "  _mm256_storeu_pd(y, _mm256_mul_pd(a, a));\n"
      "}\n",
      Opts);
  EXPECT_THAT(Out, HasSubstr("ddi_4 a = ia_loadu_ddi_4(x)"));
  EXPECT_THAT(Out, HasSubstr("ia_mul_ddi_4(a, a)"));
}

TEST(Transform, ReductionTransformation) {
  TransformOptions Opts;
  Opts.EnableReductions = true;
  std::string Out = compile(
      "void mvm(double *A, double *x, double *y) {\n"
      "  #pragma igen reduce y\n"
      "  for (int i = 0; i < 100; i++)\n"
      "    for (int j = 0; j < 500; j++)\n"
      "      y[i] = y[i] + A[i * 500 + j] * x[j];\n"
      "}\n",
      Opts);
  // Fig. 7: accumulator around the inner loop.
  EXPECT_THAT(Out, HasSubstr("acc_f64 _acc1;"));
  EXPECT_THAT(Out, HasSubstr("isum_init_f64(&_acc1, y[i]);"));
  EXPECT_THAT(
      Out, HasSubstr("isum_accumulate_f64(&_acc1, "
                     "ia_mul_f64(A[(i * 500) + j], x[j]));"));
  EXPECT_THAT(Out, HasSubstr("y[i] = isum_reduce_f64(&_acc1);"));
  // The original update must be gone.
  EXPECT_THAT(Out, Not(HasSubstr("y[i] = ia_add_f64")));
}

TEST(Transform, ReductionDisabledByDefault) {
  std::string Out = compile(
      "void mvm(double *A, double *x, double *y) {\n"
      "  #pragma igen reduce y\n"
      "  for (int i = 0; i < 4; i++)\n"
      "    y[0] = y[0] + A[i] * x[i];\n"
      "}\n");
  EXPECT_THAT(Out, Not(HasSubstr("acc_f64")));
}

TEST(Transform, ReductionDdUsesDdAccumulator) {
  TransformOptions Opts;
  Opts.EnableReductions = true;
  Opts.Prec = TransformOptions::Precision::DoubleDouble;
  std::string Out = compile("double dot(double *a, double *b, int n) {\n"
                            "  double s = 0.0;\n"
                            "  #pragma igen reduce s\n"
                            "  for (int i = 0; i < n; i++)\n"
                            "    s = s + a[i] * b[i];\n"
                            "  return s;\n"
                            "}\n",
                            Opts);
  EXPECT_THAT(Out, HasSubstr("acc_dd _acc1;"));
  EXPECT_THAT(Out, HasSubstr("isum_init_dd"));
  EXPECT_THAT(Out, HasSubstr("isum_reduce_dd"));
}

TEST(Transform, JoinModeBranches) {
  TransformOptions Opts;
  Opts.Branches = TransformOptions::BranchPolicy::Join;
  std::string Out = compile("double f(double a, double b) {\n"
                            "  double r = 0.0;\n"
                            "  if (a > b) { r = a; } else { r = b; }\n"
                            "  return r;\n"
                            "}\n",
                            Opts);
  EXPECT_THAT(Out, HasSubstr("ia_istrue_tb"));
  EXPECT_THAT(Out, HasSubstr("ia_isfalse_tb"));
  EXPECT_THAT(Out, HasSubstr("f64i _sav_r = r;"));
  EXPECT_THAT(Out, HasSubstr("r = ia_join_f64(r, _res_r);"));
}

TEST(Transform, JoinModeFallsBackOnArrayStores) {
  TransformOptions Opts;
  Opts.Branches = TransformOptions::BranchPolicy::Join;
  std::string Out = compile("void f(double *p, double a, double b) {\n"
                            "  if (a > b) { p[0] = a; }\n"
                            "}\n",
                            Opts);
  // Paper: not implemented when arrays are modified -> exception path.
  EXPECT_THAT(Out, HasSubstr("ia_cvt2bool_tb"));
  EXPECT_THAT(Out, Not(HasSubstr("ia_join_f64")));
}

TEST(Transform, FloatPromotesToDoubleIntervals) {
  std::string Out = compile("float f(float x) { return x * 0.5f; }");
  EXPECT_THAT(Out, HasSubstr("f64i f(f64i x)"));
  EXPECT_THAT(Out, HasSubstr("ia_mul_pu_f64(ia_set_f64("));
}

TEST(Transform, CastsBehave) {
  std::string Out =
      compile("double f(int n) { return (double)n * 0.5; }");
  EXPECT_THAT(Out, HasSubstr("ia_cst_f64((double)(n))"));
  std::string Out2 =
      compile("float g(double x) { return (float)x; }");
  EXPECT_THAT(Out2, HasSubstr("ia_f32cast_f64(x)"));
}

TEST(Transform, WhileAndDoLoops) {
  std::string Out = compile("double f(double x, int n) {\n"
                            "  int i = 0;\n"
                            "  while (i < n) { x = x * x; i++; }\n"
                            "  do { x = x + 1.0; i--; } while (i > 0);\n"
                            "  return x;\n"
                            "}\n");
  EXPECT_THAT(Out, HasSubstr("while (i < n)"));
  EXPECT_THAT(Out, HasSubstr("x = ia_mul_f64(x, x);"));
  EXPECT_THAT(Out, HasSubstr("while (i > 0);"));
}

TEST(Transform, UserFunctionCallsKeepNames) {
  std::string Out = compile("double g(double x) { return x * x; }\n"
                            "double f(double x) { return g(x + 1.0); }\n");
  EXPECT_THAT(Out, HasSubstr("f64i g(f64i x)"));
  EXPECT_THAT(Out, HasSubstr("g(ia_add_f64(x, ia_cst_f64(1"));
}

TEST(Transform, LogicalOpsOnIntervals) {
  std::string Out = compile("double f(double a, double b) {\n"
                            "  if (a > 0.0 && b > 0.0) return a;\n"
                            "  return b;\n"
                            "}\n");
  EXPECT_THAT(Out, HasSubstr("ia_and_tb(ia_cmpgt_f64"));
}

TEST(Transform, MixedIntAndIntervalConditions) {
  std::string Out = compile("double f(double a, int n) {\n"
                            "  if (n > 0 && a > 0.0) return a;\n"
                            "  return a + 1.0;\n"
                            "}\n");
  EXPECT_THAT(Out, HasSubstr("ia_bool2tb(n > 0)"));
}

TEST(Transform, DirectivesPassThrough) {
  std::string Out = compile("#include <math.h>\n"
                            "double f(double x) { return x; }\n");
  EXPECT_THAT(Out, HasSubstr("#include <math.h>"));
}

TEST(Transform, TernaryWithPlainCondition) {
  std::string Out =
      compile("double f(int n, double a, double b) { return n > 0 ? a : "
              "b; }");
  EXPECT_THAT(Out, HasSubstr("(n > 0 ? a : b)"));
}

TEST(Transform, TernaryWithIntervalConditionRejected) {
  EXPECT_TRUE(
      fails("double f(double a, double b) { return a > b ? a : b; }"));
}

TEST(Transform, InverseTrigMap) {
  std::string Out = compile(
      "double f(double x) { return atan(x) + asin(x) - acos(x); }");
  EXPECT_THAT(Out, HasSubstr("ia_atan_f64(x)"));
  EXPECT_THAT(Out, HasSubstr("ia_asin_f64(x)"));
  EXPECT_THAT(Out, HasSubstr("ia_acos_f64(x)"));
  TransformOptions Opts;
  Opts.Prec = TransformOptions::Precision::DoubleDouble;
  EXPECT_THAT(compile("double f(double x) { return atan(x); }", Opts),
              HasSubstr("ia_atan_dd(x)"));
}

TEST(Transform, ChainedAssignmentsEmitValidC) {
  std::string Out = compile("double f(double a) {\n"
                            "  double b = 0.0;\n"
                            "  double c = 0.0;\n"
                            "  b = c = a + 1.0;\n"
                            "  return b;\n"
                            "}\n");
  EXPECT_THAT(Out, HasSubstr("b = c = ia_add_f64(a, ia_cst_f64(1"));
}

TEST(Transform, JoinModeNestedIfs) {
  TransformOptions Opts;
  Opts.Branches = TransformOptions::BranchPolicy::Join;
  std::string Out = compile("double f(double a, double b) {\n"
                            "  double r = 0.0;\n"
                            "  if (a > b) {\n"
                            "    if (a > 0.0) { r = a; } else { r = b; }\n"
                            "  } else { r = b - a; }\n"
                            "  return r;\n"
                            "}\n",
                            Opts);
  // The outer join must collect r through the nested if as well.
  EXPECT_THAT(Out, HasSubstr("_sav_r"));
  EXPECT_THAT(Out, HasSubstr("ia_join_f64(r, _res_r)"));
}

TEST(Transform, WhileWithIntervalConditionWrapsCvt) {
  std::string Out = compile("double f(double x) {\n"
                            "  while (x < 10.0) { x = x * 2.0; }\n"
                            "  return x;\n"
                            "}\n");
  EXPECT_THAT(Out,
              HasSubstr("while (ia_cvt2bool_tb(ia_cmplt_f64(x, "));
}

//===----------------------------------------------------------------------===//
// Mid-end optimizer golden tests (-O vs -O0)
//===----------------------------------------------------------------------===//

namespace {

const char *SignKernel = "double f(double x) {\n"
                         "  double r = 0.0;\n"
                         "  if (x > 1.0) {\n"
                         "    r = 1.0 / (x * x);\n"
                         "  }\n"
                         "  return r;\n"
                         "}\n";

const char *MacKernel = "void mac(double *y, double *a, double *b, int n) {\n"
                        "  for (int i = 0; i < n; i++)\n"
                        "    y[i] = y[i] + a[i] * b[i];\n"
                        "}\n";

} // namespace

TEST(Optimizer, SignProvableKernelSpecializesUnderO1) {
  std::string Out = compile(SignKernel);
  // x > 1.0 proves x (and hence x*x) strictly positive.
  EXPECT_THAT(Out, HasSubstr("ia_mul_pp_f64(x, x)"));
  EXPECT_THAT(Out, HasSubstr("ia_div_p_f64("));
  EXPECT_THAT(Out, Not(HasSubstr("ia_mul_f64")));
  EXPECT_THAT(Out, Not(HasSubstr("ia_div_f64")));
}

TEST(Optimizer, O0EmitsGenericCalls) {
  TransformOptions Opts;
  Opts.OptLevel = 0;
  std::string Out = compile(SignKernel, Opts);
  EXPECT_THAT(Out, HasSubstr("ia_mul_f64(x, x)"));
  EXPECT_THAT(Out, HasSubstr("ia_div_f64("));
  EXPECT_THAT(Out, Not(HasSubstr("ia_mul_pp")));
  EXPECT_THAT(Out, Not(HasSubstr("ia_div_p")));
}

TEST(Optimizer, LoopCarriedMulAddStaysUnfused) {
  // y[i] = y[i] + a[i]*b[i] inside a loop: the add is the loop-carried
  // recurrence, so FMA fusion is suppressed — fused, every iteration's
  // multiply would sit on the recurrence's critical path.
  std::string Out = compile(MacKernel);
  EXPECT_THAT(Out,
              HasSubstr("y[i] = ia_add_f64(y[i], ia_mul_f64(a[i], b[i]))"));
  EXPECT_THAT(Out, Not(HasSubstr("ia_fma")));

  // Outside a loop the same shape fuses as before.
  std::string Straight =
      compile("double g(double y, double a, double b) {\n"
              "  y = y + a * b;\n"
              "  return y;\n"
              "}\n");
  EXPECT_THAT(Straight, HasSubstr("y = ia_fma_f64(a, b, y)"));

  // A compound accumulation inside a loop is suppressed too.
  std::string Compound =
      compile("double h(double *a, double *b, int n) {\n"
              "  double s = 0.0;\n"
              "  for (int i = 0; i < n; i++)\n"
              "    s += a[i] * b[i];\n"
              "  return s;\n"
              "}\n");
  EXPECT_THAT(Compound, HasSubstr("s = ia_add_f64(s, ia_mul_f64(a[i], b[i]))"));
  EXPECT_THAT(Compound, Not(HasSubstr("ia_fma")));

  TransformOptions Opts;
  Opts.OptLevel = 0;
  std::string Naive = compile(MacKernel, Opts);
  EXPECT_THAT(Naive,
              HasSubstr("y[i] = ia_add_f64(y[i], ia_mul_f64(a[i], b[i]))"));
  EXPECT_THAT(Naive, Not(HasSubstr("ia_fma")));
}

TEST(Optimizer, NonCarriedMulAddInLoopStillFuses) {
  // Horner shape: r = r*x + c[k]. The addend c[k] is not the target r —
  // the recurrence already runs through the multiply, so fusing costs
  // nothing on the critical path and saves the separate add.
  std::string Out = compile("double horner(const double *c, double x, int n) {\n"
                            "  double r = c[0];\n"
                            "  for (int k = 1; k < n; k++)\n"
                            "    r = r * x + c[k];\n"
                            "  return r;\n"
                            "}\n");
  EXPECT_THAT(Out, HasSubstr("r = ia_fma_f64(r, x, c[k])"));
}

TEST(Optimizer, SubtractionFusesWithNegation) {
  // a*b - c = fma(a, b, -c); c - a*b = fma(-a, b, c).
  std::string Out = compile("double f(double a, double b, double c) {\n"
                            "  return a * b - c;\n"
                            "}\n");
  EXPECT_THAT(Out, HasSubstr("ia_fma_f64(a, b, ia_neg_f64(c))"));
  Out = compile("double f(double a, double b, double c) {\n"
                "  return c - a * b;\n"
                "}\n");
  EXPECT_THAT(Out, HasSubstr("ia_fma_f64(ia_neg_f64(a), b, c)"));
}

TEST(Optimizer, CseAndHoistingIntroduceTemps) {
  std::string Src = "double f(const double *v, double a, double b, int n) {\n"
                    "  double s = 0.0;\n"
                    "  for (int i = 0; i < n; i++) {\n"
                    "    s = s + (a * b + 1.0) * v[i] + (a * b + 1.0);\n"
                    "  }\n"
                    "  return s;\n"
                    "}\n";
  std::string Out = compile(Src);
  // The loop-invariant a*b + 1.0 is computed once ahead of the loop. The
  // accumulation into s stays unfused (loop-carried FMA suppression).
  EXPECT_THAT(Out, HasSubstr("f64i _hoist1 = ia_fma_f64(a, b, ia_cst_f64(1));"));
  EXPECT_THAT(Out, HasSubstr("ia_add_f64(s, ia_mul_f64(_hoist1, v[i]))"));

  TransformOptions Opts;
  Opts.OptLevel = 0;
  std::string Naive = compile(Src, Opts);
  EXPECT_THAT(Naive, Not(HasSubstr("_hoist")));
  EXPECT_THAT(Naive, Not(HasSubstr("_cse")));
}

TEST(Optimizer, CseWithinOneStatement) {
  std::string Out = compile("double f(double a, double b, double c) {\n"
                            "  return (a * b + c) * (a * b + c) + a * b;\n"
                            "}\n");
  EXPECT_THAT(Out, HasSubstr("f64i _cse1 = ia_mul_f64(a, b);"));
  EXPECT_THAT(Out, HasSubstr("f64i _cse2 = ia_add_f64(_cse1, c);"));
  EXPECT_THAT(Out, HasSubstr("return ia_fma_f64(_cse2, _cse2, _cse1);"));
}

TEST(Optimizer, DdTargetStaysGeneric) {
  // The specialized entry points exist for f64 only; dd lowering must
  // not change under -O.
  TransformOptions Opts;
  Opts.Prec = TransformOptions::Precision::DoubleDouble;
  std::string Out = compile(SignKernel, Opts);
  EXPECT_THAT(Out, HasSubstr("ia_mul_dd(x, x)"));
  EXPECT_THAT(Out, Not(HasSubstr("ia_mul_pp")));
  EXPECT_THAT(Out, Not(HasSubstr("ia_fma")));
}

TEST(Optimizer, VectorIntrinsicAddMulFuses) {
  std::string Src =
      "void vmac(__m256d *y, __m256d *a, __m256d *b, int n) {\n"
      "  for (int i = 0; i < n; i++)\n"
      "    y[i] = _mm256_add_pd(_mm256_mul_pd(a[i], b[i]), y[i]);\n"
      "}\n";
  std::string Out = compile(Src);
  EXPECT_THAT(Out, HasSubstr("ia_fma_m256di_2("));

  TransformOptions Opts;
  Opts.OptLevel = 0;
  std::string Naive = compile(Src, Opts);
  EXPECT_THAT(Naive, HasSubstr("ia_add_m256di_2("));
  EXPECT_THAT(Naive, Not(HasSubstr("ia_fma")));
}

TEST(Optimizer, GuardFactsDisabledUnderJoinPolicy) {
  // Under the join policy both sides of a branch execute, so the guard
  // cannot prove signs; only guard-independent facts may specialize.
  TransformOptions Opts;
  Opts.Branches = TransformOptions::BranchPolicy::Join;
  std::string Out = compile(SignKernel, Opts);
  EXPECT_THAT(Out, Not(HasSubstr("ia_mul_pp")));
  EXPECT_THAT(Out, Not(HasSubstr("ia_div_p_f64")));
}

//===----------------------------------------------------------------------===//
// Batched array loops (--batch-loops)
//===----------------------------------------------------------------------===//

namespace {
TransformOptions batchOpts() {
  TransformOptions Opts;
  Opts.EnableBatchLoops = true;
  return Opts;
}
} // namespace

TEST(BatchLoops, ElementwiseBinaryLoopsCollapseToOneCall) {
  std::string Out = compile(
      "void vadd(double *d, double *a, double *b, int n) {\n"
      "  for (int i = 0; i < n; i++)\n"
      "    d[i] = a[i] + b[i];\n"
      "}\n"
      "void vdiv(double *d, double *a, double *b, int n) {\n"
      "  for (int i = 0; i < n; i++)\n"
      "    d[i] = a[i] / b[i];\n"
      "}\n",
      batchOpts());
  EXPECT_THAT(Out, HasSubstr("ia_arr_add_f64(d, a, b, (unsigned long)(n));"));
  EXPECT_THAT(Out, HasSubstr("ia_arr_div_f64(d, a, b, (unsigned long)(n));"));
  // The per-element loop is gone entirely.
  EXPECT_THAT(Out, Not(HasSubstr("ia_add_f64")));
  EXPECT_THAT(Out, Not(HasSubstr("ia_div_f64")));
  EXPECT_THAT(Out, Not(HasSubstr("for (")));
}

TEST(BatchLoops, SqrtLoopCollapses) {
  std::string Out = compile("void vsqrt(double *d, double *a, int n) {\n"
                            "  for (int i = 0; i < n; i++)\n"
                            "    d[i] = sqrt(a[i]);\n"
                            "}\n",
                            batchOpts());
  EXPECT_THAT(Out, HasSubstr("ia_arr_sqrt_f64(d, a, (unsigned long)(n));"));
  EXPECT_THAT(Out, Not(HasSubstr("ia_sqrt_f64")));
}

TEST(BatchLoops, OffByDefault) {
  std::string Out =
      compile("void vadd(double *d, double *a, double *b, int n) {\n"
              "  for (int i = 0; i < n; i++)\n"
              "    d[i] = a[i] + b[i];\n"
              "}\n");
  EXPECT_THAT(Out, Not(HasSubstr("ia_arr_")));
  EXPECT_THAT(Out, HasSubstr("ia_add_f64(a[i], b[i])"));
}

TEST(BatchLoops, DdPrecisionStaysElementwise) {
  TransformOptions Opts = batchOpts();
  Opts.Prec = TransformOptions::Precision::DoubleDouble;
  std::string Out =
      compile("void vadd(double *d, double *a, double *b, int n) {\n"
              "  for (int i = 0; i < n; i++)\n"
              "    d[i] = a[i] + b[i];\n"
              "}\n",
              Opts);
  EXPECT_THAT(Out, Not(HasSubstr("ia_arr_")));
  EXPECT_THAT(Out, HasSubstr("ia_add_dd(a[i], b[i])"));
}

TEST(BatchLoops, ProfileModeStaysElementwise) {
  // --profile wants per-site instrumentation on every interval op; a
  // collapsed ia_arr_ call would lose the site attribution.
  TransformOptions Opts = batchOpts();
  Opts.Profile = true;
  std::string Out =
      compile("void vadd(double *d, double *a, double *b, int n) {\n"
              "  for (int i = 0; i < n; i++)\n"
              "    d[i] = a[i] + b[i];\n"
              "}\n",
              Opts);
  EXPECT_THAT(Out, Not(HasSubstr("ia_arr_")));
}

TEST(BatchLoops, NonMatchingLoopsAreLeftAlone) {
  // Broadcast operand, strided access, accumulation, two-statement
  // bodies: none match the d[i] = a[i] OP b[i] shape.
  std::string Out = compile(
      "void broadcast(double *d, double *a, double *b, int n) {\n"
      "  for (int i = 0; i < n; i++)\n"
      "    d[i] = a[i] + b[0];\n"
      "}\n"
      "void strided(double *d, double *a, double *b, int n) {\n"
      "  for (int i = 0; i < n; i += 2)\n"
      "    d[i] = a[i] + b[i];\n"
      "}\n"
      "double accum(double *a, int n) {\n"
      "  double s = 0.0;\n"
      "  for (int i = 0; i < n; i++)\n"
      "    s = s + a[i];\n"
      "  return s;\n"
      "}\n",
      batchOpts());
  EXPECT_THAT(Out, Not(HasSubstr("ia_arr_")));
}

TEST(BatchLoops, LiteralTripCountAndCompoundBodyMatch) {
  std::string Out = compile("void vmul8(double *d, double *a, double *b) {\n"
                            "  for (int i = 0; i < 8; i++) {\n"
                            "    d[i] = a[i] * b[i];\n"
                            "  }\n"
                            "}\n",
                            batchOpts());
  EXPECT_THAT(Out, HasSubstr("ia_arr_mul_f64(d, a, b, (unsigned long)(8));"));
}
