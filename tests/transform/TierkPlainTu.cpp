//===- TierkPlainTu.cpp - Wrap the plain f64i build of Inputs/tierk.c --------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#define k_iter k_iter_plain
#define k_env k_env_plain
#define k_sumsq k_sumsq_plain

#include "tierk_plain.cpp"
