//===- ExecDoubleTest.cpp - Execute IGen-compiled kernels (double) -----------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Links against code produced by the igen driver at build time from
// Inputs/kernels.c, Inputs/trig.c and Inputs/joink.c and verifies
// soundness of the executed interval code against long-double references.
// Built twice: with the SIMD-backed f64i (sv) and, with IGEN_F64I_SCALAR
// defined, the scalar f64i (ss).
//
//===----------------------------------------------------------------------===//

#include "interval/Accuracy.h"
#include "interval/igen_lib.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

// Prototypes of the generated functions.
f64i poly(f64i x);
f64i henon(f64i x, f64i y, int n);
f64i dot(f64i *a, f64i *b, int n);
void axpy(f64i alpha, f64i *x, f64i *y, int n);
f64i absdiff(f64i a, f64i b);
f64i sensor_scale(double a);
void vscale(f64i *x, f64i *y, int n);
f64i ratio(f64i a, f64i b);
f64i pyth(f64i x);
f64i softplusish(f64i x);
f64i hypot2(f64i a, f64i b);
f64i jbranch(f64i a, f64i b);
f64i jclamp(f64i x);

namespace {

using igen::Interval;

Interval toI(f64i V) {
#if defined(IGEN_F64I_SCALAR)
  return V;
#else
  return V.toInterval();
#endif
}
f64i fromI(const Interval &V) {
#if defined(IGEN_F64I_SCALAR)
  return V;
#else
  return f64i::fromInterval(V);
#endif
}

bool containsLd(const Interval &I, long double V) {
  if (I.hasNaN())
    return true;
  return -static_cast<long double>(I.NegLo) <= V &&
         V <= static_cast<long double>(I.Hi);
}

class ExecTest : public ::testing::Test {
protected:
  igen::RoundUpwardScope Up;
  std::mt19937_64 Gen{99};
  double uniform(double Lo, double Hi) {
    return std::uniform_real_distribution<double>(Lo, Hi)(Gen);
  }
};

} // namespace

TEST_F(ExecTest, PolySoundAndTight) {
  for (int I = 0; I < 2000; ++I) {
    double X = uniform(-10.0, 10.0);
    Interval R = toI(poly(f64i::fromPoint(X)));
    long double LX = X;
    long double Ref = ((LX + 1.0L) * LX - 0.5L) * LX + 0.1L;
    EXPECT_TRUE(containsLd(R, Ref)) << X;
    // Near the polynomial's roots relative accuracy dips; 40 bits is the
    // conservative floor over the sampled range.
    EXPECT_GT(igen::accuracyBits(R), 40.0) << X;
  }
}

TEST_F(ExecTest, HenonMatchesReference) {
  for (int N : {1, 5, 10, 20}) {
    Interval R = toI(henon(f64i::fromPoint(0.0), f64i::fromPoint(0.0), N));
    long double X = 0.0L, Y = 0.0L;
    for (int I = 0; I < N; ++I) {
      long double XI = X;
      X = 1.0L - 1.05L * XI * XI + Y;
      Y = 0.3L * XI;
    }
    EXPECT_TRUE(containsLd(R, X)) << N;
  }
}

TEST_F(ExecTest, HenonAccuracyDegradesWithIterations) {
  Interval R10 = toI(henon(f64i::fromPoint(0.0), f64i::fromPoint(0.0), 10));
  Interval R50 = toI(henon(f64i::fromPoint(0.0), f64i::fromPoint(0.0), 50));
  EXPECT_GT(igen::accuracyBits(R10), igen::accuracyBits(R50));
}

TEST_F(ExecTest, DotWithReductionIsSoundAndAccurate) {
  const int N = 1000;
  std::vector<f64i> A(N), B(N);
  long double Ref = 0.0L;
  for (int I = 0; I < N; ++I) {
    double X = uniform(-1.0, 1.0), Y = uniform(-1.0, 1.0);
    A[I] = f64i::fromPoint(X);
    B[I] = f64i::fromPoint(Y);
    Ref += static_cast<long double>(X) * Y;
  }
  Interval R = toI(dot(A.data(), B.data(), N));
  EXPECT_TRUE(containsLd(R, Ref));
  // The double-double accumulator keeps the result extremely tight
  // (residual loss only from cancellation in the +-1 inputs).
  EXPECT_GT(igen::accuracyBits(R), 46.0);
}

TEST_F(ExecTest, AxpyArrays) {
  const int N = 64;
  std::vector<f64i> X(N), Y(N);
  std::vector<long double> RefY(N);
  for (int I = 0; I < N; ++I) {
    double XV = uniform(-5, 5), YV = uniform(-5, 5);
    X[I] = f64i::fromPoint(XV);
    Y[I] = f64i::fromPoint(YV);
    RefY[I] = static_cast<long double>(YV) + 1.5L * XV;
  }
  axpy(f64i::fromPoint(1.5), X.data(), Y.data(), N);
  for (int I = 0; I < N; ++I)
    EXPECT_TRUE(containsLd(toI(Y[I]), RefY[I])) << I;
}

TEST_F(ExecTest, BranchCertainSides) {
  Interval R = toI(absdiff(f64i::fromPoint(1.0), f64i::fromPoint(3.0)));
  EXPECT_TRUE(R.contains(2.0));
  EXPECT_GT(igen::accuracyBits(R), 50.0);
  R = toI(absdiff(f64i::fromPoint(5.0), f64i::fromPoint(2.0)));
  EXPECT_TRUE(R.contains(3.0));
}

TEST_F(ExecTest, BranchUnknownSignals) {
  // Overlapping intervals make a < b unknown; the default policy invokes
  // the handler (installed here as counting so the test survives).
  igen::UnknownBranchHandler Old =
      igen::setUnknownBranchHandler(igen::countingUnknownBranchHandler);
  igen::resetUnknownBranchCount();
  f64i A = fromI(Interval::fromEndpoints(0.0, 2.0));
  f64i B = fromI(Interval::fromEndpoints(1.0, 3.0));
  (void)absdiff(A, B);
  EXPECT_EQ(igen::unknownBranchCount(), 1u);
  igen::setUnknownBranchHandler(Old);
}

TEST_F(ExecTest, SensorToleranceWidensInput) {
  Interval R = toI(sensor_scale(10.0));
  // (10 +- 0.5) * 2 = [19, 21].
  EXPECT_LE(R.lo(), 19.0);
  EXPECT_GE(R.hi(), 21.0);
  EXPECT_LE(R.lo(), R.hi());
  EXPECT_GE(R.lo(), 18.99);
  EXPECT_LE(R.hi(), 21.01);
}

TEST_F(ExecTest, VectorizedKernelMatchesScalarSemantics) {
  const int N = 32;
  std::vector<f64i> X(N), Y(N, f64i::fromPoint(0.0));
  for (int I = 0; I < N; ++I)
    X[I] = f64i::fromPoint(uniform(-3, 3));
  vscale(X.data(), Y.data(), N);
  for (int I = 0; I < N; ++I) {
    long double Ref = 3.0L * static_cast<long double>(toI(X[I]).hi());
    EXPECT_TRUE(containsLd(toI(Y[I]), Ref)) << I;
    EXPECT_GT(igen::accuracyBits(toI(Y[I])), 50.0) << I;
  }
}

TEST_F(ExecTest, RatioDivision) {
  for (int I = 0; I < 2000; ++I) {
    double A = uniform(-10, 10), B = uniform(-10, 10);
    Interval R = toI(ratio(f64i::fromPoint(A), f64i::fromPoint(B)));
    long double Ref =
        (static_cast<long double>(A) * A + 1.0L) /
        (static_cast<long double>(B) * B + 2.0L);
    EXPECT_TRUE(containsLd(R, Ref));
    EXPECT_GT(igen::accuracyBits(R), 45.0);
  }
}

TEST_F(ExecTest, TrigIdentityNearOne) {
  for (int I = 0; I < 500; ++I) {
    double X = uniform(-100, 100);
    Interval R = toI(pyth(f64i::fromPoint(X)));
    EXPECT_TRUE(R.contains(1.0)) << X;
    EXPECT_GT(igen::accuracyBits(R), 30.0) << X;
  }
}

TEST_F(ExecTest, SoftplusSound) {
  for (int I = 0; I < 500; ++I) {
    double X = uniform(-20, 20);
    Interval R = toI(softplusish(f64i::fromPoint(X)));
    long double Ref = logl(expl(static_cast<long double>(X)) + 1.0L);
    EXPECT_TRUE(containsLd(R, Ref)) << X;
  }
}

TEST_F(ExecTest, Hypot2Sound) {
  for (int I = 0; I < 500; ++I) {
    double A = uniform(-50, 50), B = uniform(-50, 50);
    Interval R = toI(hypot2(f64i::fromPoint(A), f64i::fromPoint(B)));
    long double Ref = sqrtl(static_cast<long double>(A) * A +
                            static_cast<long double>(B) * B);
    EXPECT_TRUE(containsLd(R, Ref));
  }
}

TEST_F(ExecTest, JoinBranchHullsBothSides) {
  igen::resetUnknownBranchCount();
  // a = [0, 2], b = 1: a > b unknown -> result joins a+1 and a-1.
  f64i A = fromI(Interval::fromEndpoints(0.0, 2.0));
  Interval R = toI(jbranch(A, f64i::fromPoint(1.0)));
  EXPECT_TRUE(R.contains(3.0)); // a+1 upper
  EXPECT_TRUE(R.contains(-1.0)); // a-1 lower
  // Join mode never signals.
  EXPECT_EQ(igen::unknownBranchCount(), 0u);
  // Certain side still tight: a = 5 > b = 1.
  Interval C = toI(jbranch(f64i::fromPoint(5.0), f64i::fromPoint(1.0)));
  EXPECT_TRUE(C.contains(6.0));
  EXPECT_FALSE(C.contains(4.0));
}

TEST_F(ExecTest, JoinClampStaysInRange) {
  igen::resetUnknownBranchCount();
  f64i X = fromI(Interval::fromEndpoints(0.5, 1.5));
  Interval R = toI(jclamp(X));
  // True result set is [0.5, 1]; the join may widen but must contain it
  // and never exceed [0.5, 1.5] hull semantics.
  EXPECT_TRUE(R.contains(0.5));
  EXPECT_TRUE(R.contains(1.0));
  EXPECT_EQ(igen::unknownBranchCount(), 0u);
}

f64i grow_until(f64i x, f64i limit);
f64i chain_assign(f64i a);

TEST_F(ExecTest, WhileLoopWithIntervalCondition) {
  // Point inputs: every comparison is certain; result = first power of 2
  // times x above the limit.
  Interval R = toI(grow_until(f64i::fromPoint(1.0), f64i::fromPoint(100.0)));
  EXPECT_TRUE(R.contains(128.0));
  EXPECT_GT(igen::accuracyBits(R), 50.0);
  // Overlapping threshold: the loop condition eventually turns unknown
  // and signals under the default policy (counting handler here).
  igen::UnknownBranchHandler Old =
      igen::setUnknownBranchHandler(igen::countingUnknownBranchHandler);
  igen::resetUnknownBranchCount();
  f64i X = fromI(Interval::fromEndpoints(1.0, 3.0));
  (void)grow_until(X, f64i::fromPoint(4.0));
  EXPECT_GE(igen::unknownBranchCount(), 1u);
  igen::setUnknownBranchHandler(Old);
}

TEST_F(ExecTest, ChainedAssignment) {
  Interval R = toI(chain_assign(f64i::fromPoint(1.5)));
  EXPECT_TRUE(R.contains(6.0));
  EXPECT_GT(igen::accuracyBits(R), 50.0);
}
