//===- DriverExitCodeTest.cpp - igen CLI exit-code contract ---------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// The driver promises distinct exit codes per failure class (usage 2,
// parse 3, sema 4, I/O 6, success 0; 1 is deliberately unused so an
// uncaught crash is distinguishable from a clean diagnostic). Scripts
// and the differential fuzzers rely on this contract, so it gets pinned
// by shelling out to the real binary (path injected by CMake as
// IGEN_DRIVER_PATH).
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

namespace {

/// Runs the driver with \p Args appended, stdout/stderr discarded;
/// returns the exit status (-1 if it did not exit normally).
int runDriver(const std::string &Args) {
  std::string Cmd = std::string(IGEN_DRIVER_PATH) + " " + Args +
                    " >/dev/null 2>&1";
  int Status = std::system(Cmd.c_str());
  if (Status == -1 || !WIFEXITED(Status))
    return -1;
  return WEXITSTATUS(Status);
}

/// Writes \p Text to a fresh file under the test temp dir.
std::string writeTemp(const char *Name, const std::string &Text) {
  std::string Path = std::string(::testing::TempDir()) + Name;
  std::ofstream Out(Path);
  Out << Text;
  return Path;
}

TEST(DriverExitCode, SuccessIsZero) {
  std::string In =
      writeTemp("ok.c", "double f(double x) { return x * 2.0; }\n");
  std::string Out = std::string(::testing::TempDir()) + "igen_ok_out.c";
  EXPECT_EQ(runDriver(In + " -o " + Out), 0);
}

TEST(DriverExitCode, UsageErrorsAreTwo) {
  EXPECT_EQ(runDriver(""), 2);                   // no input
  EXPECT_EQ(runDriver("--bogus-flag in.c"), 2);  // unknown option
  EXPECT_EQ(runDriver("--precision=half in.c"), 2);
  EXPECT_EQ(runDriver("-o"), 2);                 // missing -o argument
  EXPECT_EQ(runDriver("a.c b.c"), 2);            // multiple inputs
}

TEST(DriverExitCode, ParseErrorsAreThree) {
  std::string In =
      writeTemp("parse_err.c", "double f(double x) { return x + ; }\n");
  EXPECT_EQ(runDriver(In), 3);
  EXPECT_EQ(runDriver("--dump-ast " + In), 3);
}

TEST(DriverExitCode, SemaErrorsAreFour) {
  std::string In = writeTemp("sema_err.c",
                             "double f(double x) { return x + y; }\n");
  EXPECT_EQ(runDriver(In), 4);
  EXPECT_EQ(runDriver("--dump-ast " + In), 4);
}

TEST(DriverExitCode, IoErrorsAreSix) {
  EXPECT_EQ(runDriver("/nonexistent/igen/input.c"), 6); // unreadable in
  std::string In =
      writeTemp("io_ok.c", "double f(double x) { return x; }\n");
  EXPECT_EQ(runDriver(In + " -o /nonexistent/dir/out.c"), 6);
}

TEST(DriverExitCode, MultipleParseErrorsStillExitThree) {
  // Error recovery reports several diagnostics but the process exit
  // class stays "parse error".
  std::string In = writeTemp("parse_multi.c",
                             "double f(double x) {\n"
                             "  double a = ;\n"
                             "  double b = ;\n"
                             "  return x;\n"
                             "}\n");
  EXPECT_EQ(runDriver(In), 3);
}

TEST(DriverExitCode, HardenFlagAccepted) {
  std::string In =
      writeTemp("harden_in.c", "double f(double x) { return x + 1.0; }\n");
  std::string Out =
      std::string(::testing::TempDir()) + "igen_harden_out.c";
  ASSERT_EQ(runDriver("--harden " + In + " -o " + Out), 0);
  // The hardened output must reference the sentinel header.
  std::ifstream Gen(Out);
  std::string Text((std::istreambuf_iterator<char>(Gen)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(Text.find("harden/igen_fenv.h"), std::string::npos);
  EXPECT_NE(Text.find("igen_fenv_check"), std::string::npos);
}

} // namespace
