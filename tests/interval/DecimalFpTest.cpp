//===- DecimalFpTest.cpp - Decimal-literal enclosure tests -------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/DecimalFp.h"

#include "TestHelpers.h"

#include <cstdio>
#include <gtest/gtest.h>

using namespace igen;
using igen::test::Rng;

namespace {

class DecimalTest : public ::testing::Test {
protected:
  RoundUpwardScope Up;

  /// Quad value of the decimal string, built independently of the code
  /// under test (digits + quad powers of ten; quad has 113 bits, enough
  /// to check ~2^-100-tight enclosures with margin).
  static __float128 quadOf(const std::string &S) {
    size_t Pos = 0;
    bool Neg = false;
    if (S[Pos] == '+' || S[Pos] == '-')
      Neg = S[Pos++] == '-';
    __float128 V = 0;
    int Exp = 0;
    bool Dot = false;
    for (; Pos < S.size(); ++Pos) {
      char C = S[Pos];
      if (C == '.') {
        Dot = true;
        continue;
      }
      if (C == 'e' || C == 'E') {
        Exp += std::atoi(S.c_str() + Pos + 1);
        break;
      }
      if (C < '0' || C > '9')
        break;
      V = V * 10 + (C - '0');
      if (Dot)
        --Exp;
    }
    __float128 P = 1;
    for (int K = 0; K < (Exp < 0 ? -Exp : Exp); ++K)
      P *= 10;
    V = Exp < 0 ? V / P : V * P;
    return Neg ? -V : V;
  }

  static bool containsQ(const DdInterval &I, __float128 V) {
    __float128 Lo = -((__float128)I.NegLo.H + I.NegLo.L);
    __float128 Hi = (__float128)I.Hi.H + I.Hi.L;
    return Lo <= V && V <= Hi;
  }
};

} // namespace

TEST_F(DecimalTest, PowersOfTen) {
  for (int N : {-300, -30, -3, -1, 0, 1, 3, 22, 30, 300}) {
    DdInterval P = pow10Interval(N);
    __float128 Ref = 1;
    for (int K = 0; K < (N < 0 ? -N : N); ++K)
      Ref *= 10;
    if (N < 0)
      Ref = 1 / Ref;
    EXPECT_TRUE(containsQ(P, Ref)) << N;
    // Tight to ~2^-90 relative, up to the absolute widening floor at the
    // bottom of double-double's range.
    double W = (P.Hi.H + P.NegLo.H) + (P.Hi.L + P.NegLo.L);
    EXPECT_LE(W, std::fabs(P.Hi.H) * 0x1p-90 + 0x1p-1055) << N;
  }
}

TEST_F(DecimalTest, ExactValuesEncloseTightly) {
  // Exactly representable decimals: enclosure contains the value and is
  // no wider than ~2^-90 relative (the pow10 margins).
  for (const char *S : {"1", "2", "0.5", "0.25", "1024", "4.75",
                        "123456789", "0.125", "3", "10", "1e3"}) {
    DdInterval I = ddIntervalFromDecimal(S);
    double V = std::strtod(S, nullptr);
    EXPECT_TRUE(I.contains(V)) << S;
    double W = (I.Hi.H + I.NegLo.H) + (I.Hi.L + I.NegLo.L);
    EXPECT_LE(W, std::fabs(V) * 0x1p-88 + 1e-300) << S;
  }
}

TEST_F(DecimalTest, InexactDecimalsContainTrueValue) {
  for (const char *S :
       {"0.1", "0.2", "0.3", "3.14159265358979323846", "1.05",
        "2.718281828459045", "-0.1", "6.02e23", "1.6e-19",
        "0.000123456", "9.999999999999999999"}) {
    DdInterval I = ddIntervalFromDecimal(S);
    EXPECT_TRUE(containsQ(I, quadOf(S))) << S;
    // Much tighter than a double enclosure: the double value of the
    // literal must be interior or on the edge, and the width far below a
    // double ulp.
    double V = std::strtod(S, nullptr);
    double W = (I.Hi.H + I.NegLo.H) + (I.Hi.L + I.NegLo.L);
    EXPECT_LE(W, ulpOf(V) * 0x1p-30) << S;
  }
}

TEST_F(DecimalTest, RandomRoundTripAgainstStrtod) {
  Rng R(7);
  for (int Trial = 0; Trial < 2000; ++Trial) {
    char Buf[64];
    double V = std::ldexp(R.uniform(-1.0, 1.0), R.intIn(-200, 200));
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
    DdInterval I = ddIntervalFromDecimal(Buf);
    // %.17g round-trips: the double V is the decimal's nearest double,
    // so it lies within half a ulp of the true decimal value, and the
    // dd enclosure must contain the true value (checked via quadOf).
    EXPECT_TRUE(containsQ(I, quadOf(Buf))) << Buf;
    Interval H = intervalFromDecimal(Buf);
    EXPECT_TRUE(H.contains(V)) << Buf;
  }
}

TEST_F(DecimalTest, ExponentForms) {
  EXPECT_TRUE(ddIntervalFromDecimal("1.5e2").contains(150.0));
  EXPECT_TRUE(ddIntervalFromDecimal("1.5E+2").contains(150.0));
  EXPECT_TRUE(ddIntervalFromDecimal("15e-1").contains(1.5));
  EXPECT_TRUE(ddIntervalFromDecimal("-2.5e0").contains(-2.5));
}

TEST_F(DecimalTest, SuffixesTolerated) {
  EXPECT_TRUE(ddIntervalFromDecimal("0.5f").contains(0.5));
  EXPECT_TRUE(ddIntervalFromDecimal("0.25t").contains(0.25));
}

TEST_F(DecimalTest, ZeroAndSigns) {
  EXPECT_TRUE(ddIntervalFromDecimal("0").contains(0.0));
  EXPECT_TRUE(ddIntervalFromDecimal("0.000").contains(0.0));
  EXPECT_TRUE(ddIntervalFromDecimal("-0.0").contains(0.0));
  DdInterval Z = ddIntervalFromDecimal("0");
  EXPECT_FALSE(Z.contains(1e-300));
}

TEST_F(DecimalTest, MalformedRejected) {
  EXPECT_TRUE(ddIntervalFromDecimal("").hasNaN());
  EXPECT_TRUE(ddIntervalFromDecimal("abc").hasNaN());
  EXPECT_TRUE(ddIntervalFromDecimal("1.2.3").hasNaN());
  EXPECT_TRUE(ddIntervalFromDecimal("1e").hasNaN());
  EXPECT_TRUE(ddIntervalFromDecimal("--1").hasNaN());
}

TEST_F(DecimalTest, HugeAndTinyExponentsSaturateSoundly) {
  DdInterval Huge = ddIntervalFromDecimal("1e400");
  EXPECT_TRUE(Huge.Hi.isInf() || Huge.hasNaN()); // saturates upward
  EXPECT_TRUE(containsQ(Huge, quadOf("1e400")));
  DdInterval Tiny = ddIntervalFromDecimal("1e-400");
  EXPECT_TRUE(containsQ(Tiny, quadOf("1e-400")));
  EXPECT_GE(Tiny.Hi.H, 0.0);
  EXPECT_LE(-Tiny.NegLo.H, 1e-300); // lower bound below the tiny value
}

TEST_F(DecimalTest, LongDigitStrings) {
  // > 15 digits exercises the multi-chunk path.
  const char *S = "1.2345678901234567890123456789012345";
  DdInterval I = ddIntervalFromDecimal(S);
  EXPECT_TRUE(containsQ(I, quadOf(S)));
  double W = (I.Hi.H + I.NegLo.H) + (I.Hi.L + I.NegLo.L);
  EXPECT_LE(W, 0x1p-85);
}
