//===- IntervalIOTest.cpp - Interval formatting tests ------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/IntervalIO.h"

#include <cstdlib>
#include <gtest/gtest.h>

using namespace igen;

TEST(IntervalIO, RoundTripsEndpoints) {
  Interval I = Interval::fromEndpoints(0.1, 0.30000000000000004);
  std::string S = toString(I);
  // Parse back the two endpoints.
  double Lo = std::strtod(S.c_str() + 1, nullptr);
  size_t Comma = S.find(',');
  double Hi = std::strtod(S.c_str() + Comma + 1, nullptr);
  EXPECT_EQ(Lo, 0.1);
  EXPECT_EQ(Hi, 0.30000000000000004);
}

TEST(IntervalIO, SpecialValues) {
  EXPECT_NE(toString(Interval::nan()).find("nan"), std::string::npos);
  EXPECT_NE(toString(Interval::entire()).find("inf"), std::string::npos);
}

TEST(IntervalIO, DoubleDoubleForm) {
  DdInterval X = DdInterval::fromEndpoints(Dd(1.0, 1e-20), Dd(2.0, -1e-20));
  std::string S = toString(X);
  EXPECT_NE(S.find("(1 + 1e-20)"), std::string::npos);
  EXPECT_NE(S.find("(2 + -1e-20)"), std::string::npos);
}
