//===- IntervalSimdTest.cpp - SSE interval tests ---------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/IntervalSimd.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace igen;
using igen::test::Rng;

namespace {

class SseTest : public ::testing::Test {
protected:
  RoundUpwardScope Up;
  Rng R{31};
};

/// Two intervals are identical as sets (treating any-NaN as equal).
bool sameSet(const Interval &A, const Interval &B) {
  if (A.hasNaN() || B.hasNaN())
    return A.hasNaN() == B.hasNaN();
  return A.NegLo == B.NegLo && A.Hi == B.Hi;
}

} // namespace

TEST_F(SseTest, RoundTripConversion) {
  Interval I = Interval::fromEndpoints(-1.25, 3.5);
  IntervalSse S = IntervalSse::fromInterval(I);
  EXPECT_EQ(S.lo(), -1.25);
  EXPECT_EQ(S.hi(), 3.5);
  EXPECT_TRUE(sameSet(S.toInterval(), I));
}

TEST_F(SseTest, AddMatchesScalar) {
  for (int I = 0; I < 10000; ++I) {
    Interval A = R.interval(), B = R.interval();
    Interval Ref = iAdd(A, B);
    Interval Got = iAdd(IntervalSse::fromInterval(A),
                        IntervalSse::fromInterval(B))
                       .toInterval();
    EXPECT_TRUE(sameSet(Got, Ref)) << A.lo() << " " << B.lo();
  }
}

TEST_F(SseTest, SubNegMatchScalar) {
  for (int I = 0; I < 10000; ++I) {
    Interval A = R.interval(), B = R.interval();
    EXPECT_TRUE(sameSet(iSub(IntervalSse::fromInterval(A),
                             IntervalSse::fromInterval(B))
                            .toInterval(),
                        iSub(A, B)));
    EXPECT_TRUE(sameSet(iNeg(IntervalSse::fromInterval(A)).toInterval(),
                        iNeg(A)));
  }
}

TEST_F(SseTest, MulMatchesScalarOnFinite) {
  for (int I = 0; I < 20000; ++I) {
    Interval A = R.moderateInterval(), B = R.moderateInterval();
    Interval Ref = iMul(A, B);
    Interval Got = iMul(IntervalSse::fromInterval(A),
                        IntervalSse::fromInterval(B))
                       .toInterval();
    EXPECT_TRUE(sameSet(Got, Ref))
        << "[" << A.lo() << "," << A.hi() << "] * [" << B.lo() << ","
        << B.hi() << "]";
  }
}

TEST_F(SseTest, MulSpecialValuesSound) {
  int N;
  const double *Vals = igen::test::specialValues(N);
  for (int I = 0; I < N; ++I)
    for (int J = 0; J < N; ++J) {
      double L = std::min(Vals[I], Vals[J]);
      double H = std::max(Vals[I], Vals[J]);
      if (std::isnan(L) || std::isnan(H))
        L = H = Vals[I];
      Interval A = std::isnan(L) ? Interval::nan()
                                 : Interval::fromEndpoints(L, H);
      Interval B = Interval::fromEndpoints(-1.0, 2.0);
      Interval Ref = iMul(A, B);
      Interval Got = iMul(IntervalSse::fromInterval(A),
                          IntervalSse::fromInterval(B))
                         .toInterval();
      // The SIMD path may only be equal or wider, never narrower.
      EXPECT_TRUE(Got.containsInterval(Ref))
          << L << " " << H;
    }
}

TEST_F(SseTest, DivMatchesScalar) {
  for (int I = 0; I < 20000; ++I) {
    Interval A = R.moderateInterval(), B = R.moderateInterval();
    Interval Ref = iDiv(A, B);
    Interval Got = iDiv(IntervalSse::fromInterval(A),
                        IntervalSse::fromInterval(B))
                       .toInterval();
    EXPECT_TRUE(sameSet(Got, Ref));
  }
}

TEST_F(SseTest, DivZeroContainingFallsBack) {
  IntervalSse A = IntervalSse::fromEndpoints(1.0, 2.0);
  IntervalSse B = IntervalSse::fromEndpoints(0.0, 4.0);
  Interval Q = iDiv(A, B).toInterval();
  EXPECT_EQ(Q.lo(), 0.25);
  EXPECT_EQ(Q.hi(), std::numeric_limits<double>::infinity());
}

TEST_F(SseTest, SqrtAndCmp) {
  IntervalSse A = IntervalSse::fromEndpoints(4.0, 9.0);
  Interval S = iSqrt(A).toInterval();
  EXPECT_EQ(S.lo(), 2.0);
  EXPECT_EQ(S.hi(), 3.0);
  EXPECT_EQ(iCmpLT(IntervalSse::fromEndpoints(0, 1),
                   IntervalSse::fromEndpoints(2, 3)),
            TBool::True);
}

TEST_F(SseTest, HullMatchesScalar) {
  for (int I = 0; I < 5000; ++I) {
    Interval A = R.interval(), B = R.interval();
    EXPECT_TRUE(sameSet(iHull(IntervalSse::fromInterval(A),
                              IntervalSse::fromInterval(B))
                            .toInterval(),
                        iHull(A, B)));
  }
}
