//===- TBoolTest.cpp - Three-valued boolean tests ---------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/TBool.h"

#include <gtest/gtest.h>

using namespace igen;

TEST(TBool, KleeneAnd) {
  EXPECT_EQ(tboolAnd(TBool::True, TBool::True), TBool::True);
  EXPECT_EQ(tboolAnd(TBool::True, TBool::False), TBool::False);
  EXPECT_EQ(tboolAnd(TBool::False, TBool::Unknown), TBool::False);
  EXPECT_EQ(tboolAnd(TBool::Unknown, TBool::True), TBool::Unknown);
  EXPECT_EQ(tboolAnd(TBool::Unknown, TBool::Unknown), TBool::Unknown);
}

TEST(TBool, KleeneOr) {
  EXPECT_EQ(tboolOr(TBool::False, TBool::False), TBool::False);
  EXPECT_EQ(tboolOr(TBool::True, TBool::Unknown), TBool::True);
  EXPECT_EQ(tboolOr(TBool::Unknown, TBool::False), TBool::Unknown);
}

TEST(TBool, Not) {
  EXPECT_EQ(tboolNot(TBool::True), TBool::False);
  EXPECT_EQ(tboolNot(TBool::False), TBool::True);
  EXPECT_EQ(tboolNot(TBool::Unknown), TBool::Unknown);
}

TEST(TBool, CvtCertain) {
  EXPECT_TRUE(cvt2Bool(TBool::True));
  EXPECT_FALSE(cvt2Bool(TBool::False));
}

TEST(TBool, CvtUnknownInvokesHandlerAndCounts) {
  UnknownBranchHandler Old =
      setUnknownBranchHandler(countingUnknownBranchHandler);
  resetUnknownBranchCount();
  EXPECT_TRUE(cvt2Bool(TBool::Unknown, "test-site"));
  EXPECT_TRUE(cvt2Bool(TBool::Unknown, "test-site"));
  EXPECT_EQ(unknownBranchCount(), 2u);
  setUnknownBranchHandler(Old);
}
