//===- RoundingTest.cpp - Rounding-mode machinery tests --------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// These tests also act as a build-sanity tripwire: if the compiler folded
// floating-point operations at translation time (i.e. -frounding-math were
// dropped), the directed-rounding identities below would fail.
//
//===----------------------------------------------------------------------===//

#include "interval/Rounding.h"

#include <cfenv>
#include <cmath>
#include <immintrin.h>

#include <gtest/gtest.h>

using namespace igen;

TEST(Rounding, ScopeSetsAndRestores) {
  ASSERT_EQ(std::fegetround(), FE_TONEAREST);
  {
    RoundUpwardScope Up;
    EXPECT_TRUE(isRoundUpward());
    {
      RoundNearestScope Near;
      EXPECT_EQ(std::fegetround(), FE_TONEAREST);
    }
    EXPECT_TRUE(isRoundUpward());
  }
  EXPECT_EQ(std::fegetround(), FE_TONEAREST);
}

TEST(Rounding, ScalarAdditionRoundsUp) {
  RoundUpwardScope Up;
  double One = 1.0;
  double Tiny = 0x1p-60;
  EXPECT_GT(One + Tiny, 1.0) << "upward rounding not in effect (or the "
                                "compiler constant-folded the addition)";
  EXPECT_EQ((-One) + Tiny, -1.0 + 0x1p-53)
      << "RU((-1) + tiny) must be the next double above -1";
}

TEST(Rounding, ScalarMultiplicationRoundsUp) {
  RoundUpwardScope Up;
  double A = 1.0 + 0x1p-52;
  double P = A * A; // (1+2^-52)^2 = 1 + 2^-51 + 2^-104, rounds up.
  EXPECT_GT(P, 1.0 + 0x1p-51);
}

TEST(Rounding, NegationIdentityGivesDownward) {
  RoundUpwardScope Up;
  // RD(x + y) == -RU((-x) - y).
  double X = 0.1, Y = 0.2;
  double Down = -((-X) - Y);
  double UpSum = X + Y;
  EXPECT_LT(Down, UpSum);
  EXPECT_EQ(std::nextafter(Down, 1e300), UpSum)
      << "RU and RD of an inexact sum must be adjacent doubles";
}

TEST(Rounding, SseHonoursMxcsr) {
  RoundUpwardScope Up;
  __m128d One = _mm_set1_pd(1.0);
  __m128d Tiny = _mm_set1_pd(0x1p-60);
  __m128d Sum = _mm_add_pd(One, Tiny);
  EXPECT_GT(_mm_cvtsd_f64(Sum), 1.0)
      << "fesetround must set MXCSR on x86-64";
}

TEST(Rounding, AvxHonoursMxcsr) {
  RoundUpwardScope Up;
  __m256d One = _mm256_set1_pd(1.0);
  __m256d Tiny = _mm256_set1_pd(0x1p-60);
  __m256d Sum = _mm256_add_pd(One, Tiny);
  alignas(32) double Lanes[4];
  _mm256_store_pd(Lanes, Sum);
  for (double L : Lanes)
    EXPECT_GT(L, 1.0);
}

TEST(Rounding, SqrtHonoursRoundingMode) {
  // volatile: GCC may CSE identical FP expressions across fesetround().
  volatile double Two = 2.0;
  double Up, Down;
  {
    RoundUpwardScope S;
    Up = std::sqrt(Two);
  }
  {
    std::fesetround(FE_DOWNWARD);
    Down = std::sqrt(Two);
    std::fesetround(FE_TONEAREST);
    // Raw fesetround() bypasses the scopes' thread-local mode cache.
    invalidateRoundingCache();
  }
  EXPECT_GT(Up, Down);
  EXPECT_EQ(std::nextafter(Down, 2.0), Up);
}

/// noipa: calls are ordered with the fesetround() calls (and IPA cannot prove the call pure and CSE it), while inline
/// FP operations may be scheduled across them (GCC's -frounding-math does
/// not model fesetround as a barrier).
__attribute__((noipa)) static double divideHere(double A, double B) {
  return A / B;
}

TEST(Rounding, DivisionRoundsUp) {
  RoundUpwardScope S;
  double Q = divideHere(1.0, 3.0);
  EXPECT_GT(Q, 0.3333333333333333) << "1/3 must round above the RN value";
  double QN;
  {
    RoundNearestScope RN;
    QN = divideHere(1.0, 3.0);
  }
  EXPECT_EQ(std::nextafter(QN, 1.0), Q);
}

TEST(Rounding, CachedModeSkipsRedundantSwitchesSoundly) {
  // Nested same-mode scopes take the cached no-op path; the FPU must still
  // be in the right mode at every level, and restores must unwind exactly.
  RoundUpwardScope A;
  EXPECT_TRUE(isRoundUpward());
  {
    RoundUpwardScope B;
    EXPECT_TRUE(isRoundUpward());
    {
      RoundNearestScope C;
      EXPECT_EQ(std::fegetround(), FE_TONEAREST);
      {
        RoundNearestScope D;
        EXPECT_EQ(std::fegetround(), FE_TONEAREST);
      }
      EXPECT_EQ(std::fegetround(), FE_TONEAREST);
    }
    EXPECT_TRUE(isRoundUpward());
  }
  EXPECT_TRUE(isRoundUpward());
}

TEST(Rounding, InvalidateAfterForeignSwitch) {
  // A foreign fesetround() plus invalidateRoundingCache() must make the
  // next scope re-read the FPU and restore the foreign mode on exit.
  std::fesetround(FE_DOWNWARD);
  invalidateRoundingCache();
  {
    RoundUpwardScope Up;
    EXPECT_TRUE(isRoundUpward());
  }
  EXPECT_EQ(std::fegetround(), FE_DOWNWARD);
  std::fesetround(FE_TONEAREST);
  invalidateRoundingCache();
}

TEST(Rounding, FmaContractionDisabled) {
  // With -ffp-contract=off, a*b+c must round the product first. Choose
  // values where fused and unfused differ.
  RoundNearestScope RN;
  double A = 1.0 + 0x1p-27;
  volatile double B = 1.0 + 0x1p-27; // volatile blocks any folding
  double Unfused = A * B - (1.0 + 0x1p-26);
  double Fused = std::fma(A, B, -(1.0 + 0x1p-26));
  EXPECT_EQ(Fused, 0x1p-54);
  EXPECT_EQ(Unfused, 0.0)
      << "compiler contracted a*b-c into an FMA; TwoSum/TwoProd would break";
}
