//===- IntervalTest.cpp - Scalar f64 interval unit tests -------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/Interval.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace igen;
using igen::test::Rng;

namespace {

class IntervalTest : public ::testing::Test {
protected:
  RoundUpwardScope Up;
};

Interval mk(double Lo, double Hi) { return Interval::fromEndpoints(Lo, Hi); }

} // namespace

TEST_F(IntervalTest, ConstructionAndAccessors) {
  Interval I = mk(-1.5, 2.5);
  EXPECT_EQ(I.lo(), -1.5);
  EXPECT_EQ(I.hi(), 2.5);
  EXPECT_EQ(I.NegLo, 1.5);
  EXPECT_TRUE(I.contains(0.0));
  EXPECT_TRUE(I.contains(-1.5));
  EXPECT_TRUE(I.contains(2.5));
  EXPECT_FALSE(I.contains(2.5000001));
  EXPECT_FALSE(I.isPoint());
  EXPECT_TRUE(Interval::fromPoint(3.0).isPoint());
}

TEST_F(IntervalTest, AddIsOutwardRounded) {
  Interval A = mk(0.1, 0.1);
  Interval B = mk(0.2, 0.2);
  Interval S = iAdd(A, B);
  // 0.1 + 0.2 is inexact: the result must be a width-1-ulp enclosure.
  EXPECT_LT(S.lo(), S.hi());
  EXPECT_EQ(nextUp(S.lo()), S.hi());
  EXPECT_TRUE(test::containsQuad(
      S, static_cast<__float128>(0.1) + static_cast<__float128>(0.2)));
}

TEST_F(IntervalTest, SubNegAlgebra) {
  Interval A = mk(1.0, 2.0);
  Interval B = mk(0.5, 0.75);
  Interval D = iSub(A, B);
  EXPECT_EQ(D.lo(), 0.25);
  EXPECT_EQ(D.hi(), 1.5);
  Interval N = iNeg(A);
  EXPECT_EQ(N.lo(), -2.0);
  EXPECT_EQ(N.hi(), -1.0);
}

TEST_F(IntervalTest, MulSignCases) {
  // All nine sign combinations of the classical case analysis.
  struct Case {
    double ALo, AHi, BLo, BHi, RLo, RHi;
  } Cases[] = {
      {2, 3, 4, 5, 8, 15},        // + * +
      {-3, -2, 4, 5, -15, -8},    // - * +
      {2, 3, -5, -4, -15, -8},    // + * -
      {-3, -2, -5, -4, 8, 15},    // - * -
      {-2, 3, 4, 5, -10, 15},     // mixed * +
      {-2, 3, -5, -4, -15, 10},   // mixed * -
      {2, 3, -4, 5, -12, 15},     // + * mixed
      {-3, -2, -4, 5, -15, 12},   // - * mixed
      {-2, 3, -4, 5, -12, 15},    // mixed * mixed
  };
  for (const Case &C : Cases) {
    Interval R = iMul(mk(C.ALo, C.AHi), mk(C.BLo, C.BHi));
    EXPECT_EQ(R.lo(), C.RLo) << C.ALo << " " << C.BLo;
    EXPECT_EQ(R.hi(), C.RHi) << C.ALo << " " << C.BLo;
  }
}

TEST_F(IntervalTest, MulZeroTimesInfinity) {
  // [0,0] * [inf,inf]: the infinite endpoint still bounds a *real*, and
  // an exact zero times any real is zero.
  Interval R = iMul(mk(0.0, 0.0), Interval(
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::infinity()));
  EXPECT_TRUE(R.contains(0.0));
  EXPECT_FALSE(R.hasNaN());
  EXPECT_EQ(R.lo(), 0.0);
  EXPECT_EQ(R.hi(), 0.0);
}

TEST_F(IntervalTest, MulStraddleTimesEntire) {
  Interval R = iMul(mk(-1.0, 1.0), Interval::entire());
  EXPECT_EQ(R.lo(), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(R.hi(), std::numeric_limits<double>::infinity());
}

TEST_F(IntervalTest, MulNaNPropagates) {
  Interval R = iMul(Interval::nan(), mk(1.0, 2.0));
  EXPECT_TRUE(R.hasNaN());
}

TEST_F(IntervalTest, DivBasic) {
  Interval R = iDiv(mk(1.0, 2.0), mk(4.0, 8.0));
  EXPECT_EQ(R.lo(), 0.125);
  EXPECT_EQ(R.hi(), 0.5);
  R = iDiv(mk(-2.0, -1.0), mk(4.0, 8.0));
  EXPECT_EQ(R.lo(), -0.5);
  EXPECT_EQ(R.hi(), -0.125);
  R = iDiv(mk(1.0, 2.0), mk(-8.0, -4.0));
  EXPECT_EQ(R.lo(), -0.5);
  EXPECT_EQ(R.hi(), -0.125);
}

TEST_F(IntervalTest, DivRoundsOutward) {
  Interval R = iDiv(mk(1.0, 1.0), mk(3.0, 3.0));
  EXPECT_LT(R.lo(), R.hi());
  EXPECT_EQ(nextUp(R.lo()), R.hi());
  EXPECT_TRUE(test::containsQuad(R, static_cast<__float128>(1) / 3));
}

TEST_F(IntervalTest, DivByZeroContainingGivesHalfLines) {
  double Inf = std::numeric_limits<double>::infinity();
  // [1,2] / [0,4] = [1/4, +inf).
  Interval R = iDiv(mk(1.0, 2.0), mk(0.0, 4.0));
  EXPECT_EQ(R.lo(), 0.25);
  EXPECT_EQ(R.hi(), Inf);
  // [1,2] / [-4,0] = (-inf, -1/4].
  R = iDiv(mk(1.0, 2.0), mk(-4.0, 0.0));
  EXPECT_EQ(R.lo(), -Inf);
  EXPECT_EQ(R.hi(), -0.25);
  // [-2,-1] / [0,4] = (-inf, -1/4].
  R = iDiv(mk(-2.0, -1.0), mk(0.0, 4.0));
  EXPECT_EQ(R.lo(), -Inf);
  EXPECT_EQ(R.hi(), -0.25);
  // [1,2] / [-4,4]: zero interior, both signs -> entire.
  R = iDiv(mk(1.0, 2.0), mk(-4.0, 4.0));
  EXPECT_EQ(R.lo(), -Inf);
  EXPECT_EQ(R.hi(), Inf);
}

TEST_F(IntervalTest, DivZeroOverZeroIsInvalid) {
  EXPECT_TRUE(iDiv(mk(-1.0, 1.0), mk(-1.0, 1.0)).hasNaN());
  EXPECT_TRUE(iDiv(mk(0.0, 0.0), mk(0.0, 0.0)).hasNaN());
  EXPECT_TRUE(iDiv(mk(1.0, 2.0), mk(0.0, 0.0)).hasNaN());
}

TEST_F(IntervalTest, SqrtCases) {
  Interval R = iSqrt(mk(4.0, 9.0));
  EXPECT_EQ(R.lo(), 2.0);
  EXPECT_EQ(R.hi(), 3.0);
  // Paper example: sqrt([-1, 1]) == [NaN, 1].
  R = iSqrt(mk(-1.0, 1.0));
  EXPECT_TRUE(std::isnan(R.NegLo));
  EXPECT_EQ(R.Hi, 1.0);
  EXPECT_TRUE(iSqrt(mk(-2.0, -1.0)).hasNaN());
}

TEST_F(IntervalTest, SqrtIsTight) {
  Interval R = iSqrt(mk(2.0, 2.0));
  EXPECT_EQ(nextUp(R.lo()), R.hi());
  // Quad-accurate sqrt(2) via one Newton step from the double value.
  __float128 S0 = std::sqrt(2.0);
  __float128 S = S0 - (S0 * S0 - 2) / (2 * S0);
  EXPECT_TRUE(test::containsQuad(R, S));
}

TEST_F(IntervalTest, AbsFloorCeil) {
  EXPECT_EQ(iAbs(mk(-3.0, -1.0)).lo(), 1.0);
  EXPECT_EQ(iAbs(mk(-3.0, 2.0)).lo(), 0.0);
  EXPECT_EQ(iAbs(mk(-3.0, 2.0)).hi(), 3.0);
  EXPECT_EQ(iAbs(mk(1.0, 2.0)).lo(), 1.0);
  Interval F = iFloor(mk(-1.5, 2.5));
  EXPECT_EQ(F.lo(), -2.0);
  EXPECT_EQ(F.hi(), 2.0);
  Interval C = iCeil(mk(-1.5, 2.5));
  EXPECT_EQ(C.lo(), -1.0);
  EXPECT_EQ(C.hi(), 3.0);
}

TEST_F(IntervalTest, Comparisons) {
  EXPECT_EQ(iCmpLT(mk(0.0, 1.0), mk(2.0, 3.0)), TBool::True);
  EXPECT_EQ(iCmpLT(mk(2.0, 3.0), mk(0.0, 1.0)), TBool::False);
  EXPECT_EQ(iCmpLT(mk(0.0, 2.0), mk(1.0, 3.0)), TBool::Unknown);
  EXPECT_EQ(iCmpLE(mk(0.0, 1.0), mk(1.0, 3.0)), TBool::True);
  EXPECT_EQ(iCmpGT(mk(2.0, 3.0), mk(0.0, 1.0)), TBool::True);
  EXPECT_EQ(iCmpEQ(mk(1.0, 1.0), mk(1.0, 1.0)), TBool::True);
  EXPECT_EQ(iCmpEQ(mk(1.0, 1.0), mk(2.0, 2.0)), TBool::False);
  EXPECT_EQ(iCmpEQ(mk(0.0, 2.0), mk(1.0, 3.0)), TBool::Unknown);
  EXPECT_EQ(iCmpNE(mk(1.0, 1.0), mk(2.0, 2.0)), TBool::True);
  EXPECT_EQ(iCmpLT(Interval::nan(), mk(0.0, 1.0)), TBool::Unknown);
}

TEST_F(IntervalTest, HullAndSetTol) {
  Interval H = iHull(mk(0.0, 1.0), mk(3.0, 4.0));
  EXPECT_EQ(H.lo(), 0.0);
  EXPECT_EQ(H.hi(), 4.0);
  Interval T = iSetTol(5.0, 0.25);
  EXPECT_EQ(T.lo(), 4.75);
  EXPECT_EQ(T.hi(), 5.25);
}

TEST_F(IntervalTest, ContainmentMonotonicityRandom) {
  Rng R(42);
  for (int I = 0; I < 2000; ++I) {
    Interval A = R.moderateInterval();
    Interval B = R.moderateInterval();
    // Widen A and B; results must contain the original results.
    Interval AW = Interval(addUlps(A.NegLo, 3), addUlps(A.Hi, 3));
    Interval BW = Interval(addUlps(B.NegLo, 3), addUlps(B.Hi, 3));
    EXPECT_TRUE(iAdd(AW, BW).containsInterval(iAdd(A, B)));
    EXPECT_TRUE(iSub(AW, BW).containsInterval(iSub(A, B)));
    EXPECT_TRUE(iMul(AW, BW).containsInterval(iMul(A, B)));
    Interval Q = iDiv(A, B), QW = iDiv(AW, BW);
    EXPECT_TRUE(QW.containsInterval(Q) || QW.hasNaN());
  }
}

TEST_F(IntervalTest, PointOpsContainQuadResult) {
  Rng R(7);
  for (int I = 0; I < 5000; ++I) {
    double X = R.moderateDouble(), Y = R.moderateDouble();
    __float128 QX = X, QY = Y;
    Interval IX = Interval::fromPoint(X), IY = Interval::fromPoint(Y);
    EXPECT_TRUE(test::containsQuad(iAdd(IX, IY), QX + QY));
    EXPECT_TRUE(test::containsQuad(iSub(IX, IY), QX - QY));
    EXPECT_TRUE(test::containsQuad(iMul(IX, IY), QX * QY));
    if (Y != 0.0) {
      EXPECT_TRUE(test::containsQuad(iDiv(IX, IY), QX / QY));
    }
  }
}
