//===- AccuracyTest.cpp - Accuracy metric tests -----------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/Accuracy.h"

#include <gtest/gtest.h>

using namespace igen;

TEST(Accuracy, PointIntervalsAreFullPrecision) {
  EXPECT_EQ(accuracyBits(Interval::fromPoint(1.5)), 53.0);
  EXPECT_EQ(accuracyBits(DdInterval::fromPoint(1.5)), 106.0);
}

TEST(Accuracy, OneUlpIntervalLosesOneBit) {
  Interval I = Interval::fromEndpoints(1.0, nextUp(1.0));
  double Bits = accuracyBits(I);
  EXPECT_NEAR(Bits, 52.0, 0.01);
}

TEST(Accuracy, WideIntervalsDegrade) {
  Interval I = Interval::fromEndpoints(1.0, 2.0);
  // [1, 2] contains 2^52 + 1 doubles: ~1 bit left.
  EXPECT_NEAR(accuracyBits(I), 1.0, 0.1);
  // [1, 1+2^-26] contains 2^26+1 doubles: loss 26, 27 bits left.
  Interval J = Interval::fromEndpoints(1.0, 1.0 + 0x1p-26);
  EXPECT_NEAR(accuracyBits(J), 27.0, 0.1);
}

TEST(Accuracy, SpecialsAreZero) {
  EXPECT_EQ(accuracyBits(Interval::nan()), 0.0);
  EXPECT_EQ(accuracyBits(Interval::entire()), 0.0);
  EXPECT_EQ(accuracyBits(DdInterval::nan()), 0.0);
  EXPECT_EQ(accuracyBits(DdInterval::entire()), 0.0);
}

TEST(Accuracy, DdRelativeWidth) {
  // Width 2^-100 around 1.0: ~105 bits correct.
  DdInterval I = DdInterval::fromEndpoints(Dd(1.0, 0.0), Dd(1.0, 0x1p-100));
  double Bits = accuracyBits(I);
  EXPECT_GT(Bits, 97.0);
  EXPECT_LT(Bits, 106.0);
  // Width 2^-53 around 1.0: ~2^52 dd values inside, ~54 bits left.
  DdInterval J = DdInterval::fromEndpoints(Dd(1.0, 0.0), Dd(1.0, 0x1p-53));
  EXPECT_NEAR(accuracyBits(J), 54.0, 1.5);
}

TEST(Accuracy, MonotoneInWidth) {
  RoundUpwardScope Up;
  // Shrinking the interval must never lose bits.
  double Prev = 0.0;
  for (int W = 0; W < 50; ++W) {
    Interval I = Interval::fromEndpoints(1.0, 1.0 + std::ldexp(1.0, -W));
    double Bits = accuracyBits(I);
    EXPECT_GE(Bits, Prev);
    Prev = Bits;
  }
}
