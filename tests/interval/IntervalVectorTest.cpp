//===- IntervalVectorTest.cpp - AVX interval-vector tests ------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/IntervalVector.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace igen;
using igen::test::Rng;

namespace {

class VecTest : public ::testing::Test {
protected:
  RoundUpwardScope Up;
  Rng R{41};

  bool sameSet(const Interval &A, const Interval &B) {
    if (A.hasNaN() || B.hasNaN())
      return A.hasNaN() == B.hasNaN();
    return A.NegLo == B.NegLo && A.Hi == B.Hi;
  }
};

} // namespace

TEST_F(VecTest, X2LanesIndependent) {
  for (int I = 0; I < 10000; ++I) {
    Interval A0 = R.moderateInterval(), A1 = R.moderateInterval();
    Interval B0 = R.moderateInterval(), B1 = R.moderateInterval();
    IntervalX2 A = IntervalX2::fromIntervals(A0, A1);
    IntervalX2 B = IntervalX2::fromIntervals(B0, B1);
    IntervalX2 S = iAdd(A, B);
    EXPECT_TRUE(sameSet(S.interval(0), iAdd(A0, B0)));
    EXPECT_TRUE(sameSet(S.interval(1), iAdd(A1, B1)));
    IntervalX2 M = iMul(A, B);
    EXPECT_TRUE(sameSet(M.interval(0), iMul(A0, B0)));
    EXPECT_TRUE(sameSet(M.interval(1), iMul(A1, B1)));
    IntervalX2 D = iDiv(A, B);
    EXPECT_TRUE(sameSet(D.interval(0), iDiv(A0, B0)));
    EXPECT_TRUE(sameSet(D.interval(1), iDiv(A1, B1)));
    IntervalX2 Sub = iSub(A, B);
    EXPECT_TRUE(sameSet(Sub.interval(0), iSub(A0, B0)));
    EXPECT_TRUE(sameSet(Sub.interval(1), iSub(A1, B1)));
  }
}

TEST_F(VecTest, X2DivOneLaneZeroContaining) {
  IntervalX2 A = IntervalX2::fromIntervals(
      Interval::fromEndpoints(1, 2), Interval::fromEndpoints(1, 2));
  IntervalX2 B = IntervalX2::fromIntervals(
      Interval::fromEndpoints(-1, 1), Interval::fromEndpoints(4, 8));
  IntervalX2 Q = iDiv(A, B);
  EXPECT_EQ(Q.interval(0).hi(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(Q.interval(1).lo(), 0.125);
  EXPECT_EQ(Q.interval(1).hi(), 0.5);
}

TEST_F(VecTest, HalvesRoundTrip) {
  Interval A0 = Interval::fromEndpoints(1, 2);
  Interval A1 = Interval::fromEndpoints(3, 4);
  IntervalX2 A = IntervalX2::fromIntervals(A0, A1);
  EXPECT_TRUE(sameSet(A.half(0).toInterval(), A0));
  EXPECT_TRUE(sameSet(A.half(1).toInterval(), A1));
  IntervalX2 B = IntervalX2::fromHalves(A.half(0), A.half(1));
  EXPECT_TRUE(sameSet(B.interval(0), A0));
  EXPECT_TRUE(sameSet(B.interval(1), A1));
}

TEST_F(VecTest, PackElementwise) {
  M256di2 A = M256di2::broadcast(Interval::fromEndpoints(1, 2));
  M256di2 B = M256di2::broadcast(Interval::fromEndpoints(10, 20));
  M256di2 S = iAdd(A, B);
  for (int I = 0; I < M256di2::numIntervals(); ++I) {
    EXPECT_EQ(S.interval(I).lo(), 11.0);
    EXPECT_EQ(S.interval(I).hi(), 22.0);
  }
  M256di4 C = M256di4::broadcast(Interval::fromEndpoints(-1, 1));
  M256di4 P = iMul(C, C);
  for (int I = 0; I < M256di4::numIntervals(); ++I) {
    EXPECT_EQ(P.interval(I).lo(), -1.0);
    EXPECT_EQ(P.interval(I).hi(), 1.0);
  }
}

TEST_F(VecTest, SetInterval) {
  M256di2 A = M256di2::broadcast(Interval::fromPoint(0.0));
  A.setInterval(2, Interval::fromEndpoints(5, 6));
  EXPECT_EQ(A.interval(2).lo(), 5.0);
  EXPECT_EQ(A.interval(2).hi(), 6.0);
  EXPECT_EQ(A.interval(3).lo(), 0.0);
  EXPECT_EQ(A.interval(0).hi(), 0.0);
}

TEST_F(VecTest, SqrtElementwise) {
  M256di2 A = M256di2::broadcast(Interval::fromEndpoints(4, 9));
  M256di2 S = iSqrt(A);
  for (int I = 0; I < 4; ++I) {
    EXPECT_EQ(S.interval(I).lo(), 2.0);
    EXPECT_EQ(S.interval(I).hi(), 3.0);
  }
}
