//===- Interval32Test.cpp - Single-precision interval tests -----------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/Interval32.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace igen;
using igen::test::Rng;

namespace {

class I32Test : public ::testing::Test {
protected:
  RoundUpwardScope Up;
  Rng R{81};
};

} // namespace

TEST_F(I32Test, Construction) {
  Interval32 I = Interval32::fromEndpoints(-1.5f, 2.5f);
  EXPECT_EQ(I.lo(), -1.5f);
  EXPECT_EQ(I.hi(), 2.5f);
  EXPECT_TRUE(I.contains(0.0f));
  EXPECT_FALSE(I.contains(3.0f));
}

TEST_F(I32Test, AddRoundsOutward) {
  Interval32 A = Interval32::fromPoint(0.1f);
  Interval32 B = Interval32::fromPoint(0.2f);
  Interval32 S = iAdd(A, B);
  float Exact = 0.1f;
  (void)Exact;
  // 0.1f + 0.2f is inexact in float: enclosure of width 1 float-ulp.
  EXPECT_LT(S.lo(), S.hi());
  double Lo = S.lo(), Hi = S.hi();
  double Ref = static_cast<double>(0.1f) + static_cast<double>(0.2f);
  EXPECT_LE(Lo, Ref);
  EXPECT_GE(Hi, Ref);
}

TEST_F(I32Test, MulViaDoubleIsSoundAndTight) {
  for (int I = 0; I < 5000; ++I) {
    float A = static_cast<float>(R.uniform(-100.0, 100.0));
    float B = static_cast<float>(R.uniform(-100.0, 100.0));
    Interval32 P = iMul(Interval32::fromPoint(A), Interval32::fromPoint(B));
    double Exact = static_cast<double>(A) * static_cast<double>(B);
    EXPECT_LE(static_cast<double>(P.lo()), Exact);
    EXPECT_GE(static_cast<double>(P.hi()), Exact);
  }
}

TEST_F(I32Test, DivAndSqrt) {
  Interval32 Q = iDiv(Interval32::fromPoint(1.0f),
                      Interval32::fromPoint(3.0f));
  EXPECT_LT(Q.lo(), Q.hi());
  EXPECT_LE(static_cast<double>(Q.lo()), 1.0 / 3.0);
  EXPECT_GE(static_cast<double>(Q.hi()), 1.0 / 3.0);
  Interval32 S = iSqrt(Interval32::fromEndpoints(4.0f, 9.0f));
  EXPECT_EQ(S.lo(), 2.0f);
  EXPECT_EQ(S.hi(), 3.0f);
}

TEST_F(I32Test, WidenNarrowRoundTrip) {
  Interval32 I = Interval32::fromEndpoints(-1.25f, 7.75f);
  Interval W = I.widen();
  EXPECT_EQ(W.lo(), -1.25);
  EXPECT_EQ(W.hi(), 7.75);
  Interval32 N = Interval32::fromInterval(W);
  EXPECT_EQ(N.lo(), I.lo());
  EXPECT_EQ(N.hi(), I.hi());
}

TEST_F(I32Test, NarrowingRoundsOutward) {
  // A double interval not representable in float must widen outward.
  Interval W = Interval::fromEndpoints(0.1, 0.1);
  Interval32 N = Interval32::fromInterval(W);
  EXPECT_LE(static_cast<double>(N.lo()), 0.1);
  EXPECT_GE(static_cast<double>(N.hi()), 0.1);
  EXPECT_LT(N.lo(), N.hi());
}

TEST_F(I32Test, Comparisons) {
  EXPECT_EQ(iCmpLT(Interval32::fromEndpoints(0, 1),
                   Interval32::fromEndpoints(2, 3)),
            TBool::True);
  EXPECT_EQ(iCmpGT(Interval32::fromEndpoints(0, 3),
                   Interval32::fromEndpoints(2, 4)),
            TBool::Unknown);
}
