//===- UlpTest.cpp - Ulp utility tests -------------------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/Ulp.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace igen;

TEST(Ulp, NextUpBasics) {
  EXPECT_EQ(nextUp(1.0), 1.0 + 0x1p-52);
  EXPECT_EQ(nextUp(0.0), std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(nextUp(-std::numeric_limits<double>::denorm_min()), -0.0);
  EXPECT_EQ(nextUp(std::numeric_limits<double>::infinity()),
            std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(nextUp(std::nan(""))));
  EXPECT_EQ(nextUp(std::numeric_limits<double>::max()),
            std::numeric_limits<double>::infinity());
}

TEST(Ulp, NextDownBasics) {
  EXPECT_EQ(nextDown(1.0), 1.0 - 0x1p-53);
  EXPECT_EQ(nextDown(0.0), -std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(nextDown(-std::numeric_limits<double>::max()),
            -std::numeric_limits<double>::infinity());
}

TEST(Ulp, NextUpDownAgreeWithNextafter) {
  double Values[] = {0.0,  -0.0,   1.0,    -1.0,  0.1,
                     -0.1, 1e308,  -1e308, 1e-310};
  for (double V : Values) {
    EXPECT_EQ(nextUp(V), std::nextafter(V, HUGE_VAL)) << V;
    EXPECT_EQ(nextDown(V), std::nextafter(V, -HUGE_VAL)) << V;
  }
}

TEST(Ulp, AddUlpsWalksAndSaturates) {
  EXPECT_EQ(addUlps(1.0, 2), nextUp(nextUp(1.0)));
  EXPECT_EQ(addUlps(1.0, -2), nextDown(nextDown(1.0)));
  // Crossing zero.
  double D = std::numeric_limits<double>::denorm_min();
  EXPECT_EQ(addUlps(D, -2), -D);
  // Saturation.
  EXPECT_EQ(addUlps(std::numeric_limits<double>::max(), 100),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(addUlps(-std::numeric_limits<double>::max(), -100),
            -std::numeric_limits<double>::infinity());
}

TEST(Ulp, UlpDistance) {
  EXPECT_EQ(ulpDistance(1.0, 1.0), 0u);
  EXPECT_EQ(ulpDistance(1.0, nextUp(1.0)), 1u);
  EXPECT_EQ(ulpDistance(-nextUp(0.0), nextUp(0.0)), 2u);
  EXPECT_EQ(ulpDistance(nextDown(1.0), nextUp(1.0)), 2u);
}

TEST(Ulp, UlpOf) {
  EXPECT_EQ(ulpOf(1.0), 0x1p-52);
  EXPECT_EQ(ulpOf(-1.0), 0x1p-52);
  EXPECT_EQ(ulpOf(2.0), 0x1p-51);
  EXPECT_EQ(ulpOf(0.0), std::numeric_limits<double>::denorm_min());
  EXPECT_TRUE(std::isnan(ulpOf(std::numeric_limits<double>::infinity())));
}

TEST(Ulp, OrderedRoundTrip) {
  double Values[] = {0.0, -0.0, 1.5, -2.25, 1e-300, -1e300};
  for (double V : Values)
    EXPECT_EQ(fromOrdered(toOrdered(V)), V);
  // Ordering property.
  EXPECT_LT(toOrdered(-1.0), toOrdered(-0.5));
  EXPECT_LT(toOrdered(-0.5), toOrdered(0.0));
  EXPECT_LT(toOrdered(0.0), toOrdered(0.5));
}
