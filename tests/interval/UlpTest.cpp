//===- UlpTest.cpp - Ulp utility tests -------------------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/Ulp.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace igen;

TEST(Ulp, NextUpBasics) {
  EXPECT_EQ(nextUp(1.0), 1.0 + 0x1p-52);
  EXPECT_EQ(nextUp(0.0), std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(nextUp(-std::numeric_limits<double>::denorm_min()), -0.0);
  EXPECT_EQ(nextUp(std::numeric_limits<double>::infinity()),
            std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(nextUp(std::nan(""))));
  EXPECT_EQ(nextUp(std::numeric_limits<double>::max()),
            std::numeric_limits<double>::infinity());
}

TEST(Ulp, NextDownBasics) {
  EXPECT_EQ(nextDown(1.0), 1.0 - 0x1p-53);
  EXPECT_EQ(nextDown(0.0), -std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(nextDown(-std::numeric_limits<double>::max()),
            -std::numeric_limits<double>::infinity());
}

TEST(Ulp, NextUpDownAgreeWithNextafter) {
  double Values[] = {0.0,  -0.0,   1.0,    -1.0,  0.1,
                     -0.1, 1e308,  -1e308, 1e-310};
  for (double V : Values) {
    EXPECT_EQ(nextUp(V), std::nextafter(V, HUGE_VAL)) << V;
    EXPECT_EQ(nextDown(V), std::nextafter(V, -HUGE_VAL)) << V;
  }
}

TEST(Ulp, AddUlpsWalksAndSaturates) {
  EXPECT_EQ(addUlps(1.0, 2), nextUp(nextUp(1.0)));
  EXPECT_EQ(addUlps(1.0, -2), nextDown(nextDown(1.0)));
  // Crossing zero.
  double D = std::numeric_limits<double>::denorm_min();
  EXPECT_EQ(addUlps(D, -2), -D);
  // Saturation.
  EXPECT_EQ(addUlps(std::numeric_limits<double>::max(), 100),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(addUlps(-std::numeric_limits<double>::max(), -100),
            -std::numeric_limits<double>::infinity());
}

TEST(Ulp, AddUlpsBinadeBoundaries) {
  // Crossing a power of two changes the ulp size; the ordered-integer walk
  // must land on the adjacent values on both sides of the boundary.
  EXPECT_EQ(addUlps(2.0, -1), 2.0 - 0x1p-52);
  EXPECT_EQ(addUlps(2.0 - 0x1p-52, 1), 2.0);
  EXPECT_EQ(addUlps(2.0 - 0x1p-52, 2), 2.0 + 0x1p-51);
  EXPECT_EQ(addUlps(1.0, -2), 1.0 - 2 * 0x1p-53);
  // Smallest normal <-> largest subnormal.
  double MinNormal = std::numeric_limits<double>::min();
  double MaxSubnormal = MinNormal - std::numeric_limits<double>::denorm_min();
  EXPECT_EQ(addUlps(MinNormal, -1), MaxSubnormal);
  EXPECT_EQ(addUlps(MaxSubnormal, 1), MinNormal);
}

TEST(Ulp, AddUlpsSubnormals) {
  double D = std::numeric_limits<double>::denorm_min();
  EXPECT_EQ(addUlps(0.0, 1), D);
  EXPECT_EQ(addUlps(0.0, -1), -D);
  EXPECT_EQ(addUlps(3 * D, -5), -2 * D);
  EXPECT_EQ(addUlps(-3 * D, 5), 2 * D);
}

TEST(Ulp, AddUlpsAtInfinities) {
  double Inf = std::numeric_limits<double>::infinity();
  double Max = std::numeric_limits<double>::max();
  // Outward (and zero) stays saturated.
  EXPECT_EQ(addUlps(Inf, 0), Inf);
  EXPECT_EQ(addUlps(Inf, 10), Inf);
  EXPECT_EQ(addUlps(-Inf, -10), -Inf);
  // Inward must step onto the finite neighbours: this is what keeps
  // libm-widened lower bounds sound when round-to-nearest overflows to
  // +inf (exp(710) truly is ~2.2e308, not +inf).
  EXPECT_EQ(addUlps(Inf, -1), Max);
  EXPECT_EQ(addUlps(Inf, -3), nextDown(nextDown(Max)));
  EXPECT_EQ(addUlps(-Inf, 1), -Max);
  EXPECT_EQ(addUlps(-Inf, 3), -nextDown(nextDown(Max)));
}

TEST(Ulp, AddUlpsExtremeCountsStayDefined) {
  // toOrdered(X) + N can exceed the int64 range (previously UB); those
  // walks must saturate at the matching infinity.
  int64_t Huge = std::numeric_limits<int64_t>::max();
  double Inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(addUlps(1.0, Huge), Inf);       // overflows int64
  EXPECT_EQ(addUlps(-1.0, -Huge), -Inf);    // underflows int64
  EXPECT_EQ(addUlps(Inf, Huge), Inf);
  EXPECT_EQ(addUlps(-Inf, -Huge), -Inf);
  // In-range but past an infinity still saturates.
  EXPECT_EQ(addUlps(1e300, Huge / 2), Inf);
  // A maximal walk that stays inside the ordered range is just a walk:
  // int64 max steps down from 1.0 lands on a finite negative double.
  double Far = addUlps(1.0, -Huge);
  EXPECT_TRUE(std::isfinite(Far));
  EXPECT_LT(Far, 0.0);
}

TEST(Ulp, UlpDistance) {
  EXPECT_EQ(ulpDistance(1.0, 1.0), 0u);
  EXPECT_EQ(ulpDistance(1.0, nextUp(1.0)), 1u);
  EXPECT_EQ(ulpDistance(-nextUp(0.0), nextUp(0.0)), 2u);
  EXPECT_EQ(ulpDistance(nextDown(1.0), nextUp(1.0)), 2u);
}

TEST(Ulp, UlpOf) {
  EXPECT_EQ(ulpOf(1.0), 0x1p-52);
  EXPECT_EQ(ulpOf(-1.0), 0x1p-52);
  EXPECT_EQ(ulpOf(2.0), 0x1p-51);
  EXPECT_EQ(ulpOf(0.0), std::numeric_limits<double>::denorm_min());
  EXPECT_TRUE(std::isnan(ulpOf(std::numeric_limits<double>::infinity())));
}

TEST(Ulp, OrderedRoundTrip) {
  double Values[] = {0.0, -0.0, 1.5, -2.25, 1e-300, -1e300};
  for (double V : Values)
    EXPECT_EQ(fromOrdered(toOrdered(V)), V);
  // Ordering property.
  EXPECT_LT(toOrdered(-1.0), toOrdered(-0.5));
  EXPECT_LT(toOrdered(-0.5), toOrdered(0.0));
  EXPECT_LT(toOrdered(0.0), toOrdered(0.5));
}
