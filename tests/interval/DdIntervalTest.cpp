//===- DdIntervalTest.cpp - Scalar double-double interval tests ------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/DdInterval.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace igen;
using igen::test::Rng;
using igen::test::containsQuad;
using igen::test::toQuad;

namespace {

class DdiTest : public ::testing::Test {
protected:
  RoundUpwardScope Up;
  Rng R{21};

  /// A random dd interval [c - d, c + u] with tiny dd-scale slack.
  DdInterval randInterval() {
    Dd C = R.dd();
    Dd Lo = C, Hi = C;
    Lo.L = addUlps(Lo.L, -R.intIn(0, 8));
    Hi.L = addUlps(Hi.L, R.intIn(0, 8));
    if (ddLess(Hi, Lo))
      std::swap(Lo, Hi);
    return DdInterval::fromEndpoints(Lo, Hi);
  }
};

} // namespace

TEST_F(DdiTest, ConstructionAndContains) {
  DdInterval I = DdInterval::fromPoint(1.5);
  EXPECT_TRUE(I.contains(1.5));
  EXPECT_FALSE(I.contains(nextUp(1.5)));
  EXPECT_FALSE(I.contains(nextDown(1.5)));
  DdInterval W = DdInterval::fromEndpoints(Dd(1.0), Dd(2.0));
  EXPECT_TRUE(W.contains(1.9999999999));
  EXPECT_FALSE(W.contains(2.0000000001));
}

TEST_F(DdiTest, AddContainsExact) {
  for (int I = 0; I < 10000; ++I) {
    DdInterval A = randInterval(), B = randInterval();
    DdInterval S = ddiAdd(A, B);
    EXPECT_TRUE(test::containsExact(
        S, test::exactDdSum(ddNeg(A.NegLo), ddNeg(B.NegLo))));
    EXPECT_TRUE(test::containsExact(S, test::exactDdSum(A.Hi, B.Hi)));
  }
}

TEST_F(DdiTest, MulContainsExactProducts) {
  for (int I = 0; I < 10000; ++I) {
    DdInterval A = randInterval(), B = randInterval();
    DdInterval P = ddiMul(A, B);
    // Products of all endpoint combinations must be inside.
    __float128 Cands[4] = {
        -toQuad(A.NegLo) * -toQuad(B.NegLo),
        -toQuad(A.NegLo) * toQuad(B.Hi),
        toQuad(A.Hi) * -toQuad(B.NegLo),
        toQuad(A.Hi) * toQuad(B.Hi),
    };
    for (__float128 C : Cands)
      EXPECT_TRUE(containsQuad(P, C));
  }
}

TEST_F(DdiTest, MulSignCases) {
  auto Mk = [](double Lo, double Hi) {
    return DdInterval::fromEndpoints(Dd(Lo), Dd(Hi));
  };
  DdInterval R1 = ddiMul(Mk(2, 3), Mk(4, 5));
  EXPECT_EQ(R1.lo().H, 8.0);
  EXPECT_EQ(R1.hi().H, 15.0);
  DdInterval R2 = ddiMul(Mk(-3, -2), Mk(4, 5));
  EXPECT_EQ(R2.lo().H, -15.0);
  EXPECT_EQ(R2.hi().H, -8.0);
  DdInterval R3 = ddiMul(Mk(-2, 3), Mk(-4, 5));
  EXPECT_EQ(R3.lo().H, -12.0);
  EXPECT_EQ(R3.hi().H, 15.0);
}

TEST_F(DdiTest, DivContainsExactQuotients) {
  for (int I = 0; I < 10000; ++I) {
    DdInterval A = randInterval(), B = randInterval();
    // Skip divisors containing zero (degenerate analysis tested below).
    if (ddNeg(B.NegLo).sign() <= 0 && B.Hi.sign() >= 0)
      continue;
    DdInterval Q = ddiDiv(A, B);
    __float128 Cands[4] = {
        -toQuad(A.NegLo) / -toQuad(B.NegLo),
        -toQuad(A.NegLo) / toQuad(B.Hi),
        toQuad(A.Hi) / -toQuad(B.NegLo),
        toQuad(A.Hi) / toQuad(B.Hi),
    };
    for (__float128 C : Cands)
      EXPECT_TRUE(containsQuad(Q, C));
  }
}

TEST_F(DdiTest, DivByZeroContaining) {
  auto Mk = [](double Lo, double Hi) {
    return DdInterval::fromEndpoints(Dd(Lo), Dd(Hi));
  };
  DdInterval Q = ddiDiv(Mk(1, 2), Mk(-1, 1));
  Interval H = Q.outerHull();
  EXPECT_EQ(H.lo(), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(H.hi(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(ddiDiv(Mk(-1, 1), Mk(-1, 1)).hasNaN());
}

TEST_F(DdiTest, DivNegativeDivisorMirrors) {
  auto Mk = [](double Lo, double Hi) {
    return DdInterval::fromEndpoints(Dd(Lo), Dd(Hi));
  };
  DdInterval Q = ddiDiv(Mk(1, 2), Mk(-4, -2));
  EXPECT_TRUE(Q.contains(-0.5));
  EXPECT_TRUE(Q.contains(-0.25));
  EXPECT_FALSE(Q.contains(-1.01));
  EXPECT_FALSE(Q.contains(-0.24));
}

TEST_F(DdiTest, SubAndNeg) {
  for (int I = 0; I < 5000; ++I) {
    DdInterval A = randInterval(), B = randInterval();
    DdInterval D = ddiSub(A, B);
    // hi(A) - lo(B) == A.Hi + B.NegLo, exactly representable as expansion.
    EXPECT_TRUE(test::containsExact(D, test::exactDdSum(A.Hi, B.NegLo)));
    DdInterval N = ddiNeg(A);
    EXPECT_TRUE(
        test::containsExact(N, test::exactDdSum(ddNeg(A.Hi), Dd(0.0))));
  }
}

TEST_F(DdiTest, Comparisons) {
  auto Mk = [](double Lo, double Hi) {
    return DdInterval::fromEndpoints(Dd(Lo), Dd(Hi));
  };
  EXPECT_EQ(ddiCmpLT(Mk(0, 1), Mk(2, 3)), TBool::True);
  EXPECT_EQ(ddiCmpLT(Mk(2, 3), Mk(0, 1)), TBool::False);
  EXPECT_EQ(ddiCmpLT(Mk(0, 2), Mk(1, 3)), TBool::Unknown);
  EXPECT_EQ(ddiCmpGT(Mk(2, 3), Mk(0, 1)), TBool::True);
  // Distinguishes differences below double precision.
  DdInterval A = DdInterval::fromPoint(Dd(1.0, 0.0));
  DdInterval B = DdInterval::fromPoint(Dd(1.0, 1e-25));
  EXPECT_EQ(ddiCmpLT(A, B), TBool::True);
}

TEST_F(DdiTest, NanPropagation) {
  DdInterval N = DdInterval::nan();
  DdInterval A = DdInterval::fromPoint(1.0);
  EXPECT_TRUE(ddiAdd(N, A).hasNaN());
  EXPECT_TRUE(ddiMul(N, A).hasNaN());
  EXPECT_TRUE(ddiDiv(N, A).hasNaN());
  EXPECT_EQ(ddiCmpLT(N, A), TBool::Unknown);
}

TEST_F(DdiTest, OuterHull) {
  DdInterval X = DdInterval::fromEndpoints(Dd(1.0, 1e-20), Dd(2.0, -1e-20));
  Interval H = X.outerHull();
  EXPECT_LE(H.lo(), 1.0 + 1e-20);
  EXPECT_GE(H.hi(), 2.0 - 1e-20);
  EXPECT_LE(ulpDistance(H.lo(), 1.0), 1u);
}
