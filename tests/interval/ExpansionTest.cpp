//===- ExpansionTest.cpp - Exact expansion arithmetic tests -----------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/Expansion.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace igen;
using igen::test::Rng;
using igen::test::toQuad;

TEST(Expansion, SumsExactly) {
  RoundNearestScope RN;
  Rng R(11);
  for (int I = 0; I < 2000; ++I) {
    Expansion E;
    __float128 Ref = 0;
    for (int J = 0; J < 8; ++J) {
      double X = R.moderateDouble();
      E.add(X);
      Ref += X;
    }
    // Neither the quad sum nor estimate() is correctly rounded, but they
    // must agree to within an ulp.
    EXPECT_LE(ulpDistance(std::min(E.estimate(), (double)Ref),
                          std::max(E.estimate(), (double)Ref)),
              1u);
    // The expansion's sign is exact; quad's is reliable well above its
    // 113-bit noise floor.
    if ((double)Ref > 1e-200) {
      EXPECT_EQ(E.sign(), 1);
    } else if ((double)Ref < -1e-200) {
      EXPECT_EQ(E.sign(), -1);
    }
  }
}

TEST(Expansion, CancellationToZero) {
  RoundNearestScope RN;
  Expansion E;
  E.add(0.1);
  E.add(1e300);
  E.add(-0.1);
  E.add(-1e300);
  EXPECT_TRUE(E.isZero());
  EXPECT_EQ(E.sign(), 0);
}

TEST(Expansion, TinyResidualSign) {
  RoundNearestScope RN;
  // 2^100 + 2^-100 - 2^100 == 2^-100: catastrophic cancellation is exact.
  Expansion E;
  E.add(0x1p100);
  E.add(0x1p-100);
  E.add(-0x1p100);
  EXPECT_EQ(E.sign(), 1);
  EXPECT_EQ(E.estimate(), 0x1p-100);
}

TEST(Expansion, ProductsExact) {
  RoundNearestScope RN;
  Rng R(12);
  for (int I = 0; I < 2000; ++I) {
    double A = R.moderateDouble(), B = R.moderateDouble();
    Expansion E;
    E.addProduct(A, B);
    E.addProduct(-A, B);
    EXPECT_TRUE(E.isZero());
  }
}

TEST(Expansion, ResidualSignMatchesQuad) {
  Rng R(13);
  for (int I = 0; I < 5000; ++I) {
    Dd Q, Y, X;
    {
      RoundUpwardScope Up; // R.dd() normalizes under some mode; any works
      Q = R.dd();
      Y = R.dd();
      X = R.dd();
    }
    int S = ddResidualSign(Q, Y, X);
    __float128 Ref = toQuad(Q) * toQuad(Y) - toQuad(X);
    // Quad has 113 bits; q*y needs up to 212 bits, so quad only gives a
    // reliable sign when |Ref| is not absurdly cancelled. Skip the
    // ambiguous band.
    __float128 Mag = fabs((double)(toQuad(Q) * toQuad(Y)));
    if (fabs((double)Ref) < (double)(Mag * (__float128)0x1p-105))
      continue;
    int RefSign = Ref > 0 ? 1 : (Ref < 0 ? -1 : 0);
    EXPECT_EQ(S, RefSign);
  }
}

TEST(Expansion, CertifiedDivisionIsUpperBoundAndTight) {
  RoundUpwardScope Up;
  Rng R(14);
  for (int I = 0; I < 3000; ++I) {
    Dd X = R.dd(), Y = R.dd();
    if (Y.sign() == 0)
      continue;
    Dd Q = ddDivUpCertified(X, Y);
    __float128 Exact = toQuad(X) / toQuad(Y);
    EXPECT_GE(toQuad(Q), Exact);
    __float128 Err = toQuad(Q) - Exact;
    __float128 Scale = fabs((double)Exact) + 1e-300;
    EXPECT_LE((double)(Err / Scale), 0x1p-94);
  }
}
