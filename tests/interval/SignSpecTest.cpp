//===- SignSpecTest.cpp - Sign-specialized op and FMA property tests --------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests for the sign-specialized multiply/divide variants and
/// the fused FMA added for the mid-end optimizer. Invariants:
///
///  * On inputs satisfying the variant's sign precondition, the variant
///    is sound (contains sampled exact products) and never wider than
///    the generic operation.
///  * On NaN inputs the variants reproduce the generic NaN result (the
///    runtime NaN-check fallback, which keeps soundness independent of
///    the compiler's static reasoning).
///  * iFma{,PP,PN,NN,PU,NU} are sound for sampled exact x*y + c values
///    and are subsets of the unfused iAdd(iMul*(X, Y), C).
///
//===----------------------------------------------------------------------===//

#include "interval/Interval.h"
#include "interval/IntervalSimd.h"
#include "interval/IntervalVector.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace igen;
using igen::test::containsQuad;
using igen::test::Rng;

namespace {

class SignSpecTest : public ::testing::Test {
protected:
  RoundUpwardScope Up;
  Rng R{0x51675};
};

Interval nonNegInterval(Rng &R) {
  double A = std::fabs(R.moderateDouble());
  double B = std::fabs(R.moderateDouble());
  if (A > B)
    std::swap(A, B);
  return Interval::fromEndpoints(A, B);
}

Interval posInterval(Rng &R) {
  Interval I = nonNegInterval(R);
  if (I.lo() <= 0.0)
    I = Interval::fromEndpoints(0x1p-80, std::max(I.hi(), 0x1p-80));
  return I;
}

Interval negate(const Interval &I) { return iNeg(I); }

Interval anyModerate(Rng &R) { return R.moderateInterval(); }

/// Sampled exact products of the endpoint grid plus interior points must
/// land inside \p Got.
void expectSoundMul(const Interval &Got, const Interval &X,
                    const Interval &Y) {
  const double Xs[] = {X.lo(), X.hi(), (X.lo() + X.hi()) / 2};
  const double Ys[] = {Y.lo(), Y.hi(), (Y.lo() + Y.hi()) / 2};
  for (double U : Xs)
    for (double V : Ys)
      EXPECT_TRUE(containsQuad(Got, static_cast<__float128>(U) * V))
          << U << " * " << V;
}

} // namespace

TEST_F(SignSpecTest, MulVariantsSoundAndNoWiderThanGeneric) {
  for (int I = 0; I < 20000; ++I) {
    Interval P1 = nonNegInterval(R), P2 = nonNegInterval(R);
    Interval N1 = negate(nonNegInterval(R)), N2 = negate(nonNegInterval(R));
    Interval U = anyModerate(R);

    struct Case {
      Interval Got, X, Y;
    } Cases[] = {
        {iMulPP(P1, P2), P1, P2}, {iMulPN(P1, N1), P1, N1},
        {iMulNN(N1, N2), N1, N2}, {iMulPU(P1, U), P1, U},
        {iMulNU(N1, U), N1, U},
    };
    for (const Case &C : Cases) {
      expectSoundMul(C.Got, C.X, C.Y);
      Interval Generic = iMul(C.X, C.Y);
      EXPECT_TRUE(Generic.containsInterval(C.Got))
          << "[" << C.X.lo() << "," << C.X.hi() << "] * [" << C.Y.lo()
          << "," << C.Y.hi() << "]";
    }
  }
}

TEST_F(SignSpecTest, DivVariantsSoundAndNoWiderThanGeneric) {
  for (int I = 0; I < 20000; ++I) {
    Interval X = anyModerate(R);
    Interval DP = posInterval(R);
    Interval DN = negate(posInterval(R));

    Interval GotP = iDivP(X, DP);
    Interval GotN = iDivN(X, DN);
    const double Xs[] = {X.lo(), X.hi(), (X.lo() + X.hi()) / 2};
    for (double U : Xs) {
      EXPECT_TRUE(
          containsQuad(GotP, static_cast<__float128>(U) / DP.lo()));
      EXPECT_TRUE(
          containsQuad(GotP, static_cast<__float128>(U) / DP.hi()));
      EXPECT_TRUE(
          containsQuad(GotN, static_cast<__float128>(U) / DN.lo()));
      EXPECT_TRUE(
          containsQuad(GotN, static_cast<__float128>(U) / DN.hi()));
    }
    EXPECT_TRUE(iDiv(X, DP).containsInterval(GotP));
    EXPECT_TRUE(iDiv(X, DN).containsInterval(GotN));
  }
}

TEST_F(SignSpecTest, VariantsFallBackOnNaN) {
  // A NaN operand passes every debug precondition and must trip the
  // runtime check, reproducing the fully-NaN generic result.
  Interval Nan = Interval::nan();
  Interval P = posInterval(R);
  EXPECT_TRUE(iMulPP(Nan, P).hasNaN());
  EXPECT_TRUE(iMulPN(P, Nan).hasNaN());
  EXPECT_TRUE(iMulNN(Nan, Nan).hasNaN());
  EXPECT_TRUE(iMulPU(P, Nan).hasNaN());
  EXPECT_TRUE(iMulNU(Nan, P).hasNaN());
  EXPECT_TRUE(iDivP(Nan, P).hasNaN());
  EXPECT_TRUE(iDivN(Nan, negate(P)).hasNaN());
  EXPECT_TRUE(iFma(Nan, P, P).hasNaN());
  EXPECT_TRUE(iFmaPP(P, Nan, P).hasNaN());
  EXPECT_TRUE(iFmaPU(P, P, Nan).hasNaN());
}

TEST_F(SignSpecTest, FmaSoundAndNoWiderThanUnfused) {
  for (int I = 0; I < 20000; ++I) {
    Interval P1 = nonNegInterval(R), P2 = nonNegInterval(R);
    Interval N1 = negate(nonNegInterval(R)), N2 = negate(nonNegInterval(R));
    Interval U = anyModerate(R), C = anyModerate(R);

    struct Case {
      Interval Got, X, Y;
    } Cases[] = {
        {iFma(U, anyModerate(R), C), U, Interval()}, // filled below
        {iFmaPP(P1, P2, C), P1, P2},
        {iFmaPN(P1, N1, C), P1, N1},
        {iFmaNN(N1, N2, C), N1, N2},
        {iFmaPU(P1, U, C), P1, U},
        {iFmaNU(N1, U, C), N1, U},
    };
    // Rebuild case 0 with both operands known so sampling works.
    Interval U2 = anyModerate(R);
    Cases[0] = {iFma(U, U2, C), U, U2};

    for (const Case &Kase : Cases) {
      // Sampled exact x*y + c (quad holds x*y exactly; adding c rounds
      // once at 113 bits -- far inside any double-width enclosure).
      const double Xs[] = {Kase.X.lo(), Kase.X.hi()};
      const double Ys[] = {Kase.Y.lo(), Kase.Y.hi()};
      const double Cs[] = {C.lo(), C.hi(), (C.lo() + C.hi()) / 2};
      for (double Xe : Xs)
        for (double Ye : Ys)
          for (double Ce : Cs)
            EXPECT_TRUE(containsQuad(
                Kase.Got, static_cast<__float128>(Xe) * Ye + Ce))
                << Xe << "*" << Ye << "+" << Ce;
      // Fused must not be wider than the unfused generic composition.
      Interval Unfused = iAdd(iMul(Kase.X, Kase.Y), C);
      EXPECT_TRUE(Unfused.containsInterval(Kase.Got));
    }
  }
}

TEST_F(SignSpecTest, SseVariantsMatchScalarBehavior) {
  for (int I = 0; I < 20000; ++I) {
    Interval P1 = nonNegInterval(R), P2 = nonNegInterval(R);
    Interval N1 = negate(nonNegInterval(R));
    Interval U = anyModerate(R), C = anyModerate(R);
    Interval DP = posInterval(R);

    auto S = [](const Interval &I) { return IntervalSse::fromInterval(I); };

    struct Case {
      Interval Sse, X, Y;
    } Cases[] = {
        {iMulPP(S(P1), S(P2)).toInterval(), P1, P2},
        {iMulPN(S(P1), S(N1)).toInterval(), P1, N1},
        {iMulNN(S(N1), S(N1)).toInterval(), N1, N1},
        {iMulPU(S(P1), S(U)).toInterval(), P1, U},
        {iMulNU(S(N1), S(U)).toInterval(), N1, U},
    };
    for (const Case &Kase : Cases) {
      expectSoundMul(Kase.Sse, Kase.X, Kase.Y);
      EXPECT_TRUE(iMul(Kase.X, Kase.Y).containsInterval(Kase.Sse));
    }

    Interval DivSse = iDivP(S(U), S(DP)).toInterval();
    EXPECT_TRUE(iDiv(U, DP).containsInterval(DivSse));
    EXPECT_TRUE(containsQuad(
        DivSse, static_cast<__float128>(U.lo()) / DP.hi()));

    Interval FmaSse = iFmaPU(S(P1), S(U), S(C)).toInterval();
    EXPECT_TRUE(iAdd(iMul(P1, U), C).containsInterval(FmaSse));
    EXPECT_TRUE(containsQuad(
        FmaSse, static_cast<__float128>(P1.hi()) * U.lo() + C.lo()));
  }
}

TEST_F(SignSpecTest, VectorFmaSoundPerLane) {
  for (int I = 0; I < 10000; ++I) {
    Interval X0 = anyModerate(R), X1 = anyModerate(R);
    Interval Y0 = anyModerate(R), Y1 = anyModerate(R);
    Interval C0 = anyModerate(R), C1 = anyModerate(R);
    IntervalX2 Got = iFma(IntervalX2::fromIntervals(X0, X1),
                          IntervalX2::fromIntervals(Y0, Y1),
                          IntervalX2::fromIntervals(C0, C1));
    const Interval Xs[] = {X0, X1}, Ys[] = {Y0, Y1}, Cs[] = {C0, C1};
    for (int L = 0; L < 2; ++L) {
      Interval Lane = Got.interval(L);
      EXPECT_TRUE(containsQuad(Lane, static_cast<__float128>(Xs[L].lo()) *
                                             Ys[L].lo() +
                                         Cs[L].lo()));
      EXPECT_TRUE(containsQuad(Lane, static_cast<__float128>(Xs[L].hi()) *
                                             Ys[L].hi() +
                                         Cs[L].hi()));
      EXPECT_TRUE(
          iAdd(iMul(Xs[L], Ys[L]), Cs[L]).containsInterval(Lane));
    }
  }
}
