//===- PolyKernelTest.cpp - Certified polynomial kernel soundness ----------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Property-based soundness sweeps for the polynomial exp/log/sin/cos
// kernels: containment of a long-double reference is *required*, tightness
// relative to the libm-widened oracle is *reported*. Sweeps cover every
// binade of each fast domain plus adversarial points (section boundaries,
// reduction-constant neighbourhoods, domain edges).
//
// Sample counts scale with IGEN_SWEEP_SAMPLES (the CI soundness-sweep job
// cranks this up); failures append machine-readable lines to the file
// named by IGEN_SWEEP_DUMP so CI can upload them as an artifact.
//
//===----------------------------------------------------------------------===//

#include "interval/Elementary.h"
#include "interval/Interval.h"
#include "interval/PolyKernels.h"
#include "interval/Rounding.h"
#include "interval/Ulp.h"

#include "TestHelpers.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <gtest/gtest.h>

using namespace igen;
using igen::test::Rng;

namespace {

/// Per-test sample multiplier: IGEN_SWEEP_SAMPLES overrides the default
/// per-binade / per-list count.
int sweepSamples(int Base) {
  if (const char *S = std::getenv("IGEN_SWEEP_SAMPLES")) {
    long V = std::strtol(S, nullptr, 10);
    if (V > 0 && V < 1000000)
      return static_cast<int>(V);
  }
  return Base;
}

/// Appends one failing input to the IGEN_SWEEP_DUMP file (if set).
void dumpFailure(const char *Fn, double Lo, double Hi, const Interval &Got) {
  const char *Path = std::getenv("IGEN_SWEEP_DUMP");
  if (!Path)
    return;
  if (std::FILE *F = std::fopen(Path, "a")) {
    std::fprintf(F, "{\"fn\":\"%s\",\"lo\":\"%a\",\"hi\":\"%a\",\"got\":[\"%a\",\"%a\"]}\n",
                 Fn, Lo, Hi, -Got.NegLo, Got.Hi);
    std::fclose(F);
  }
}

template <typename Fn> long double refLd(Fn F, double X) {
  RoundNearestScope RN;
  return F(static_cast<long double>(X));
}

/// Tightness accumulator: mean and max of width(fast)/width(libm).
struct Tightness {
  double Sum = 0.0, Max = 0.0;
  long N = 0;
  void add(const Interval &Fast, const Interval &Libm) {
    RoundNearestScope RN;
    double WF = Fast.Hi - (-Fast.NegLo);
    double WL = Libm.Hi - (-Libm.NegLo);
    if (!(WL > 0.0) || !std::isfinite(WF))
      return;
    double Ratio = WF / WL;
    Sum += Ratio;
    Max = std::max(Max, Ratio);
    ++N;
  }
  void report(const char *Name) {
    if (!N)
      return;
    std::printf("[tightness] %s: width(poly)/width(libm) mean=%.2f max=%.2f "
                "over %ld samples\n",
                Name, Sum / N, Max, N);
    ::testing::Test::RecordProperty(std::string(Name) + "_mean_width_ratio",
                                    std::to_string(Sum / N));
  }
};

class PolyKernelTest : public ::testing::Test {
protected:
  RoundUpwardScope Up;
  Rng R{20260805};
};

/// Containment of the long-double reference in the fast kernel's point
/// interval; also feeds the tightness accumulator against the oracle.
template <typename PolyFn, typename LibmFn, typename RefFn>
void checkPoint(const char *Name, PolyFn P, LibmFn L, RefFn Ref, double X,
                Tightness &T) {
  Interval I = P(Interval::fromPoint(X));
  Interval O = L(Interval::fromPoint(X));
  if (I.hasNaN() || O.hasNaN())
    return; // fallback/domain semantics are compared in a separate test
  long double Rf = refLd(Ref, X);
  bool Ok = static_cast<long double>(I.lo()) <= Rf &&
            Rf <= static_cast<long double>(I.hi());
  EXPECT_TRUE(Ok) << Name << " unsound at x=" << X << " (" << std::hexfloat
                  << X << std::defaultfloat << ")";
  if (!Ok)
    dumpFailure(Name, X, X, I);
  T.add(I, O);
}

} // namespace

//===----------------------------------------------------------------------===//
// Per-binade sweeps
//===----------------------------------------------------------------------===//

TEST_F(PolyKernelTest, ExpPerBinadeSweep) {
  Tightness T;
  int N = sweepSamples(40);
  for (int E = -60; E <= 9; ++E)
    for (int I = 0; I < N; ++I) {
      double X = std::ldexp(R.uniform(1.0, 2.0), E);
      if (std::fabs(X) > poly::ExpFastLimit)
        continue;
      checkPoint("exp", iExpFast, iExp,
                 [](long double V) { return expl(V); }, X, T);
      checkPoint("exp", iExpFast, iExp,
                 [](long double V) { return expl(V); }, -X, T);
    }
  T.report("exp");
}

TEST_F(PolyKernelTest, LogPerBinadeSweep) {
  Tightness T;
  int N = sweepSamples(4);
  for (int E = -1022; E <= 1023; ++E)
    for (int I = 0; I < N; ++I) {
      double X = std::ldexp(R.uniform(1.0, 2.0), E);
      if (!std::isfinite(X))
        continue;
      checkPoint("log", iLogFast, iLog,
                 [](long double V) { return logl(V); }, X, T);
    }
  T.report("log");
}

TEST_F(PolyKernelTest, SinCosPerBinadeSweep) {
  Tightness TS, TC;
  int N = sweepSamples(40);
  for (int E = -60; E <= 19; ++E)
    for (int I = 0; I < N; ++I) {
      double X = std::ldexp(R.uniform(1.0, 2.0), E);
      for (double V : {X, -X}) {
        checkPoint("sin", iSinFast, iSin,
                   [](long double W) { return sinl(W); }, V, TS);
        checkPoint("cos", iCosFast, iCos,
                   [](long double W) { return cosl(W); }, V, TC);
      }
    }
  TS.report("sin");
  TC.report("cos");
}

//===----------------------------------------------------------------------===//
// Adversarial points
//===----------------------------------------------------------------------===//

TEST_F(PolyKernelTest, ExpAdversarialPoints) {
  Tightness T;
  auto Check = [&](double X) {
    checkPoint("exp", iExpFast, iExp, [](long double V) { return expl(V); },
               X, T);
  };
  // Reduction-constant neighbourhoods: x near k*ln2 (r near 0) and near
  // (k + 1/2)*ln2 (|r| maximal, rounding of k can go either way).
  const double Ln2 = 0.6931471805599453;
  for (int K = -990; K <= 990; K += 7) {
    RoundNearestScope RN;
    double XK = K * Ln2;
    double XH = (K + 0.5) * Ln2;
    RoundUpwardScope Up2;
    for (int D = -4; D <= 4; ++D) {
      Check(addUlps(XK, D));
      Check(addUlps(XH, D));
    }
  }
  // Domain edges and zero neighbourhood.
  for (double X : {690.0, -690.0, 689.999999, -689.999999, 0.0, -0.0,
                   0x1p-1074, -0x1p-1074, 0x1p-1022, -0x1p-1022, 1e-300,
                   -1e-300, 0x1p-53, -0x1p-53})
    Check(X);
}

TEST_F(PolyKernelTest, LogAdversarialPoints) {
  Tightness T;
  auto Check = [&](double X) {
    checkPoint("log", iLogFast, iLog, [](long double V) { return logl(V); },
               X, T);
  };
  // Cancellation region around 1 and the sqrt(2)/sqrt(1/2) normalization
  // thresholds in several binades.
  for (int D = -40; D <= 40; ++D)
    Check(addUlps(1.0, D));
  for (int E : {-900, -10, -1, 0, 1, 10, 900})
    for (int D = -4; D <= 4; ++D) {
      Check(addUlps(std::ldexp(poly::Sqrt2, E), D));
      Check(addUlps(std::ldexp(1.0, E), D));
    }
  // Domain edges.
  for (double X :
       {std::numeric_limits<double>::min(),
        nextUp(std::numeric_limits<double>::min()),
        std::numeric_limits<double>::max(),
        nextDown(std::numeric_limits<double>::max())})
    Check(X);
  T.report("log_adversarial");
}

TEST_F(PolyKernelTest, SinCosAdversarialPoints) {
  Tightness T;
  auto Check = [&](double X) {
    checkPoint("sin", iSinFast, iSin, [](long double V) { return sinl(V); },
               X, T);
    checkPoint("cos", iCosFast, iCos, [](long double V) { return cosl(V); },
               X, T);
  };
  // Section boundaries k*pi/2: peak/trough/zero neighbourhoods where the
  // reduced argument cancels to ~2^-33 and the section index is ambiguous.
  const long double PiO2 = 1.57079632679489661923L;
  for (long K = -4000; K <= 4000; K += 13) {
    double XK;
    {
      RoundNearestScope RN;
      XK = static_cast<double>(K * PiO2);
    }
    for (int D = -4; D <= 4; ++D)
      Check(addUlps(XK, D));
  }
  // Large-argument boundaries near the fast-domain limit.
  for (long K = 667543; K >= 667500; K -= 11) {
    double XK;
    {
      RoundNearestScope RN;
      XK = static_cast<double>(K * PiO2);
    }
    for (int D = -2; D <= 2; ++D) {
      Check(addUlps(XK, D));
      Check(addUlps(-XK, D));
    }
  }
  for (double X : {0.0, -0.0, 0x1p20, -0x1p20, 0x1p-1074, 0x1p-30})
    Check(X);
}

//===----------------------------------------------------------------------===//
// Interval inputs: interior-point containment + extremum injection
//===----------------------------------------------------------------------===//

TEST_F(PolyKernelTest, IntervalSweepContainsInteriorPoints) {
  int N = sweepSamples(200) * 10;
  for (int I = 0; I < N; ++I) {
    // Width from a few ulps up to several periods.
    double C = std::ldexp(R.uniform(-2.0, 2.0), R.intIn(-20, 18));
    double W = std::ldexp(R.uniform(0.0, 2.0), R.intIn(-40, 4));
    Interval X = Interval::fromEndpoints(C - W, C + W);
    if (!std::isfinite(X.lo()) || !std::isfinite(X.Hi) || !(X.lo() < X.Hi))
      continue;
    Interval S = iSinFast(X), Co = iCosFast(X);
    Interval E = iExpFast(X);
    for (int P = 0; P < 8; ++P) {
      double V = R.uniform(X.lo(), X.Hi);
      long double RfS = refLd([](long double U) { return sinl(U); }, V);
      long double RfC = refLd([](long double U) { return cosl(U); }, V);
      EXPECT_TRUE(static_cast<long double>(S.lo()) <= RfS &&
                  RfS <= static_cast<long double>(S.Hi))
          << "sin interval unsound at " << V << " in [" << X.lo() << ","
          << X.Hi << "]";
      EXPECT_TRUE(static_cast<long double>(Co.lo()) <= RfC &&
                  RfC <= static_cast<long double>(Co.Hi))
          << "cos interval unsound at " << V;
      if (std::fabs(X.lo()) <= poly::ExpFastLimit &&
          std::fabs(X.Hi) <= poly::ExpFastLimit) {
        long double RfE = refLd([](long double U) { return expl(U); }, V);
        EXPECT_TRUE(static_cast<long double>(E.lo()) <= RfE &&
                    RfE <= static_cast<long double>(E.Hi))
            << "exp interval unsound at " << V;
      }
    }
  }
}

TEST_F(PolyKernelTest, WidePeriodSpanGivesUnitInterval) {
  Interval S = iSinFast(Interval::fromEndpoints(0.0, 100.0));
  EXPECT_EQ(S.lo(), -1.0);
  EXPECT_EQ(S.Hi, 1.0);
  Interval C = iCosFast(Interval::fromEndpoints(-7.0, 50.0));
  EXPECT_EQ(C.lo(), -1.0);
  EXPECT_EQ(C.Hi, 1.0);
}

TEST_F(PolyKernelTest, ExtremumInjection) {
  const double PiO2 = 1.5707963267948966;
  // [0.1, pi/2 + 0.1] contains the sin peak but no trough.
  Interval S = iSinFast(Interval::fromEndpoints(0.1, PiO2 + 0.1));
  EXPECT_EQ(S.Hi, 1.0);
  long double RfLo = refLd([](long double U) { return sinl(U); }, 0.1);
  EXPECT_LE(static_cast<long double>(S.lo()), RfLo);
  EXPECT_GT(S.lo(), 0.0);
  // [pi - 0.1, pi + 0.1] contains the cos trough but no peak.
  Interval C = iCosFast(
      Interval::fromEndpoints(2 * PiO2 - 0.1, 2 * PiO2 + 0.1));
  EXPECT_EQ(C.lo(), -1.0);
  EXPECT_LT(C.Hi, 0.0);
}

//===----------------------------------------------------------------------===//
// Fallback and special-value semantics match the libm path
//===----------------------------------------------------------------------===//

TEST_F(PolyKernelTest, FallbackOutsideFastDomain) {
  double Inf = std::numeric_limits<double>::infinity();
  // exp beyond +-690, at infinities, and with NaN: identical to iExp.
  for (Interval X :
       {Interval::fromEndpoints(700.0, 710.0),
        Interval::fromEndpoints(-800.0, -700.0),
        Interval::fromEndpoints(-Inf, 0.0), Interval::fromEndpoints(0.0, Inf),
        Interval::nan()}) {
    Interval A = iExpFast(X), B = iExp(X);
    EXPECT_EQ(std::bit_cast<int64_t>(A.NegLo), std::bit_cast<int64_t>(B.NegLo));
    EXPECT_EQ(std::bit_cast<int64_t>(A.Hi), std::bit_cast<int64_t>(B.Hi));
  }
  // log with nonpositive/subnormal lower endpoints or infinite upper.
  for (Interval X :
       {Interval::fromEndpoints(-1.0, 2.0), Interval::fromEndpoints(0.0, 2.0),
        Interval::fromEndpoints(0x1p-1060, 1.0),
        Interval::fromEndpoints(1.0, Inf), Interval::fromEndpoints(-2.0, -1.0),
        Interval::nan()}) {
    Interval A = iLogFast(X), B = iLog(X);
    EXPECT_EQ(std::bit_cast<int64_t>(A.NegLo), std::bit_cast<int64_t>(B.NegLo));
    EXPECT_EQ(std::bit_cast<int64_t>(A.Hi), std::bit_cast<int64_t>(B.Hi));
  }
  // sin/cos beyond 2^20 defer to the libm path (which itself covers up to
  // the 2^45 section cutoff, then [-1, 1]).
  for (Interval X :
       {Interval::fromEndpoints(0x1.1p20, 0x1.2p20),
        Interval::fromEndpoints(0x1p44, 0x1p44 + 10.0),
        Interval::fromEndpoints(0x1p50, 0x1p50 + 1.0), Interval::nan()}) {
    Interval A = iSinFast(X), B = iSin(X);
    EXPECT_EQ(std::bit_cast<int64_t>(A.NegLo), std::bit_cast<int64_t>(B.NegLo));
    EXPECT_EQ(std::bit_cast<int64_t>(A.Hi), std::bit_cast<int64_t>(B.Hi));
    Interval Ac = iCosFast(X), Bc = iCos(X);
    EXPECT_EQ(std::bit_cast<int64_t>(Ac.NegLo),
              std::bit_cast<int64_t>(Bc.NegLo));
    EXPECT_EQ(std::bit_cast<int64_t>(Ac.Hi), std::bit_cast<int64_t>(Bc.Hi));
  }
}

TEST_F(PolyKernelTest, SectionRangeUpMatchesTruth) {
  int N = sweepSamples(2000) * 5;
  for (int I = 0; I < N; ++I) {
    double X = std::ldexp(R.uniform(-2.0, 2.0), R.intIn(-5, 19));
    if (std::fabs(X) > poly::SinCosFastLimit)
      continue;
    long long KMin, KMax;
    poly::detail::sectionRangeUp(X, KMin, KMax);
    EXPECT_LE(KMax - KMin, 1) << X;
    long long KTrue;
    {
      RoundNearestScope RN;
      KTrue = static_cast<long long>(
          floorl(static_cast<long double>(X) / 1.57079632679489661923L));
    }
    EXPECT_LE(KMin, KTrue) << X;
    EXPECT_GE(KMax, KTrue) << X;
  }
}
