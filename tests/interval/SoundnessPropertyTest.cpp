//===- SoundnessPropertyTest.cpp - Randomized soundness properties ----------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
//
// Property-based soundness tests in the spirit of the paper's library
// validation against MPFI (Section IV-A): random endpoint combinations
// including NaN, infinities, zeros and denormals are pushed through every
// operation, and real points sampled from the input intervals must land
// inside the result intervals.
//
//===----------------------------------------------------------------------===//

#include "interval/DdInterval.h"
#include "interval/DdSimd.h"
#include "interval/Elementary.h"
#include "interval/Interval.h"
#include "interval/IntervalSimd.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace igen;
using igen::test::Rng;

namespace {

enum class Op { Add, Sub, Mul, Div, Sqrt, Abs, Exp, Log, Sin, Cos };

const char *opName(Op O) {
  switch (O) {
  case Op::Add:
    return "add";
  case Op::Sub:
    return "sub";
  case Op::Mul:
    return "mul";
  case Op::Div:
    return "div";
  case Op::Sqrt:
    return "sqrt";
  case Op::Abs:
    return "abs";
  case Op::Exp:
    return "exp";
  case Op::Log:
    return "log";
  case Op::Sin:
    return "sin";
  case Op::Cos:
    return "cos";
  }
  return "?";
}

Interval apply(Op O, const Interval &A, const Interval &B) {
  switch (O) {
  case Op::Add:
    return iAdd(A, B);
  case Op::Sub:
    return iSub(A, B);
  case Op::Mul:
    return iMul(A, B);
  case Op::Div:
    return iDiv(A, B);
  case Op::Sqrt:
    return iSqrt(A);
  case Op::Abs:
    return iAbs(A);
  case Op::Exp:
    return iExp(A);
  case Op::Log:
    return iLog(A);
  case Op::Sin:
    return iSin(A);
  case Op::Cos:
    return iCos(A);
  }
  return Interval::nan();
}

/// Reference in long double (80-bit: strictly more precise than double).
long double applyPoint(Op O, long double A, long double B) {
  switch (O) {
  case Op::Add:
    return A + B;
  case Op::Sub:
    return A - B;
  case Op::Mul:
    return A * B;
  case Op::Div:
    return A / B;
  case Op::Sqrt:
    return sqrtl(A);
  case Op::Abs:
    return fabsl(A);
  case Op::Exp:
    return expl(A);
  case Op::Log:
    return logl(A);
  case Op::Sin:
    return sinl(A);
  case Op::Cos:
    return cosl(A);
  }
  return 0;
}

bool isBinary(Op O) {
  return O == Op::Add || O == Op::Sub || O == Op::Mul || O == Op::Div;
}

bool containsLd(const Interval &I, long double V) {
  if (I.hasNaN())
    return true;
  if (std::isnan(static_cast<double>(V)))
    return false; // NaN result requires a NaN interval, handled above.
  return -static_cast<long double>(I.NegLo) <= V &&
         V <= static_cast<long double>(I.Hi);
}

class SoundnessTest : public ::testing::TestWithParam<Op> {
protected:
  RoundUpwardScope Up;
};

} // namespace

TEST_P(SoundnessTest, RandomIntervalsContainSampledResults) {
  Op O = GetParam();
  Rng R(1000 + static_cast<int>(O));
  for (int Trial = 0; Trial < 4000; ++Trial) {
    Interval A = R.moderateInterval(256);
    Interval B = R.moderateInterval(256);
    Interval Res = apply(O, A, B);
    for (int S = 0; S < 8; ++S) {
      long double PA =
          A.lo() + (static_cast<long double>(A.hi()) - A.lo()) * S / 7.0L;
      long double PB =
          B.lo() + (static_cast<long double>(B.hi()) - B.lo()) * S / 7.0L;
      long double Ref = applyPoint(O, PA, isBinary(O) ? PB : 0.0L);
      if (std::isnan(static_cast<double>(Ref)))
        continue; // domain violation: interval layer reports NaN/partial
      if (O == Op::Div && B.contains(0.0))
        continue; // half-line semantics tested separately
      // libm reference itself has error; skip razor-thin margins for the
      // transcendental ops by requiring containment with 1-ulp slack.
      Interval Slack = Res;
      if (static_cast<int>(O) >= static_cast<int>(Op::Exp)) {
        Slack.NegLo = nextUp(Slack.NegLo);
        Slack.Hi = nextUp(Slack.Hi);
      }
      EXPECT_TRUE(containsLd(Slack, Ref))
          << opName(O) << " [" << A.lo() << "," << A.hi() << "] ["
          << B.lo() << "," << B.hi() << "] sample " << (double)Ref;
    }
  }
}

TEST_P(SoundnessTest, SpecialValueGridIsSound) {
  Op O = GetParam();
  int N;
  const double *Vals = igen::test::specialValues(N);
  for (int I = 0; I < N; ++I) {
    for (int J = 0; J < N; ++J) {
      double L1 = Vals[I], H1 = Vals[J];
      if (std::isnan(L1) || std::isnan(H1) || L1 > H1)
        continue;
      for (int K = 0; K < N; ++K) {
        for (int M = 0; M < N; ++M) {
          double L2 = Vals[K], H2 = Vals[M];
          if (std::isnan(L2) || std::isnan(H2) || L2 > H2)
            continue;
          Interval A = Interval::fromEndpoints(L1, H1);
          Interval B = Interval::fromEndpoints(L2, H2);
          Interval Res = apply(O, A, B);
          // Sample finite points inside A and B.
          double SA = A.contains(1.0) ? 1.0
                      : (std::isfinite(L1) ? L1
                                           : (std::isfinite(H1) ? H1 : 0.0));
          double SB = B.contains(1.0) ? 1.0
                      : (std::isfinite(L2) ? L2
                                           : (std::isfinite(H2) ? H2 : 0.0));
          if (!A.contains(SA) || !B.contains(SB))
            continue;
          // A zero divisor is not a real division: the interval layer
          // divides by the nonzero part of B (IEEE-1788 semantics).
          if (O == Op::Div && SB == 0.0)
            continue;
          long double Ref =
              applyPoint(O, SA, isBinary(O) ? SB : 0.0L);
          if (std::isnan(static_cast<double>(Ref)))
            continue;
          Interval Slack = Res;
          if (static_cast<int>(O) >= static_cast<int>(Op::Exp)) {
            Slack.NegLo = nextUp(Slack.NegLo);
            Slack.Hi = nextUp(Slack.Hi);
          }
          EXPECT_TRUE(containsLd(Slack, Ref))
              << opName(O) << " [" << L1 << "," << H1 << "] op [" << L2
              << "," << H2 << "]";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, SoundnessTest,
                         ::testing::Values(Op::Add, Op::Sub, Op::Mul,
                                           Op::Div, Op::Sqrt, Op::Abs,
                                           Op::Exp, Op::Log, Op::Sin,
                                           Op::Cos),
                         [](const ::testing::TestParamInfo<Op> &Info) {
                           return opName(Info.param);
                         });

namespace {

class SseSoundnessTest : public ::testing::TestWithParam<Op> {
protected:
  RoundUpwardScope Up;
};

} // namespace

TEST_P(SseSoundnessTest, SseAgreesOrWidens) {
  Op O = GetParam();
  if (!isBinary(O))
    GTEST_SKIP() << "binary ops only";
  Rng R(2000 + static_cast<int>(O));
  for (int Trial = 0; Trial < 4000; ++Trial) {
    Interval A = R.interval(64);
    Interval B = R.interval(64);
    Interval Ref = apply(O, A, B);
    IntervalSse SA = IntervalSse::fromInterval(A);
    IntervalSse SB = IntervalSse::fromInterval(B);
    Interval Got;
    switch (O) {
    case Op::Add:
      Got = iAdd(SA, SB).toInterval();
      break;
    case Op::Sub:
      Got = iSub(SA, SB).toInterval();
      break;
    case Op::Mul:
      Got = iMul(SA, SB).toInterval();
      break;
    default:
      Got = iDiv(SA, SB).toInterval();
      break;
    }
    EXPECT_TRUE(Got.containsInterval(Ref) ||
                (Got.hasNaN() == Ref.hasNaN() && Ref.hasNaN()))
        << opName(O);
  }
}

INSTANTIATE_TEST_SUITE_P(SseOps, SseSoundnessTest,
                         ::testing::Values(Op::Add, Op::Sub, Op::Mul,
                                           Op::Div),
                         [](const ::testing::TestParamInfo<Op> &Info) {
                           return opName(Info.param);
                         });

//===----------------------------------------------------------------------===//
// Double-double special-value grid
//===----------------------------------------------------------------------===//

namespace {

class DdGridTest : public ::testing::Test {
protected:
  RoundUpwardScope Up;
};

} // namespace

TEST_F(DdGridTest, SpecialEndpointsSoundThroughDdOps) {
  int N;
  const double *Vals = igen::test::specialValues(N);
  for (int I = 0; I < N; ++I) {
    for (int J = 0; J < N; ++J) {
      double L1 = Vals[I], H1 = Vals[J];
      if (std::isnan(L1) || std::isnan(H1) || L1 > H1)
        continue;
      DdInterval A = DdInterval::fromEndpoints(Dd(L1), Dd(H1));
      for (int K = 0; K < N; ++K) {
        for (int M = 0; M < N; ++M) {
          double L2 = Vals[K], H2 = Vals[M];
          if (std::isnan(L2) || std::isnan(H2) || L2 > H2)
            continue;
          DdInterval B = DdInterval::fromEndpoints(Dd(L2), Dd(H2));
          // Sample finite points of each input.
          double SA = A.contains(1.0) ? 1.0
                      : (std::isfinite(L1) ? L1
                                           : (std::isfinite(H1) ? H1 : 0.0));
          double SB = B.contains(1.0) ? 1.0
                      : (std::isfinite(L2) ? L2
                                           : (std::isfinite(H2) ? H2 : 0.0));
          if (!A.contains(SA) || !B.contains(SB))
            continue;
          long double PA = SA, PB = SB;
          auto ContainsLd = [](const DdInterval &R, long double V) {
            if (R.hasNaN())
              return true;
            long double Lo = -(static_cast<long double>(R.NegLo.H) +
                               static_cast<long double>(R.NegLo.L));
            long double Hi = static_cast<long double>(R.Hi.H) +
                             static_cast<long double>(R.Hi.L);
            return Lo <= V && V <= Hi;
          };
          EXPECT_TRUE(ContainsLd(ddiAdd(A, B), PA + PB))
              << L1 << " " << H1 << " + " << L2 << " " << H2;
          EXPECT_TRUE(ContainsLd(ddiSub(A, B), PA - PB))
              << L1 << " " << H1 << " - " << L2 << " " << H2;
          long double Prod = PA * PB;
          if (!std::isnan(static_cast<double>(Prod))) {
            EXPECT_TRUE(ContainsLd(ddiMul(A, B), Prod))
                << L1 << " " << H1 << " * " << L2 << " " << H2;
          }
          if (SB != 0.0) {
            long double Quot = PA / PB;
            if (!std::isnan(static_cast<double>(Quot))) {
              EXPECT_TRUE(ContainsLd(ddiDiv(A, B), Quot))
                  << L1 << " " << H1 << " / " << L2 << " " << H2;
            }
          }
        }
      }
    }
  }
}

TEST_F(DdGridTest, AvxMirrorsScalarOnSpecials) {
  int N;
  const double *Vals = igen::test::specialValues(N);
  for (int I = 0; I < N; ++I) {
    for (int J = 0; J < N; ++J) {
      double L1 = Vals[I], H1 = Vals[J];
      if (std::isnan(L1) || std::isnan(H1) || L1 > H1)
        continue;
      DdInterval A = DdInterval::fromEndpoints(Dd(L1), Dd(H1));
      DdInterval B = DdInterval::fromEndpoints(Dd(-2.0), Dd(3.0));
      DdIntervalAvx VA = DdIntervalAvx::fromScalar(A);
      DdIntervalAvx VB = DdIntervalAvx::fromScalar(B);
      DdInterval RefM = ddiMul(A, B);
      DdInterval GotM = ddiMul(VA, VB).toScalar();
      // The AVX path may only equal or widen (it falls back to the hull
      // for specials).
      if (!RefM.hasNaN() && !GotM.hasNaN()) {
        EXPECT_TRUE(!ddLess(GotM.NegLo, RefM.NegLo) ||
                    GotM.NegLo.H == RefM.NegLo.H)
            << L1 << " " << H1;
        EXPECT_TRUE(!ddLess(GotM.Hi, RefM.Hi) || GotM.Hi.H == RefM.Hi.H)
            << L1 << " " << H1;
      }
    }
  }
}
