//===- TestHelpers.h - Shared helpers for interval tests --------*- C++ -*-===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Random input generation and the quad-precision soundness oracle shared
/// by the interval test suites. __float128 has 113 bits of precision --
/// enough to serve as "exact" reference for single operations on doubles
/// and for bounding double-double results.
///
//===----------------------------------------------------------------------===//

#ifndef IGEN_TESTS_INTERVAL_TESTHELPERS_H
#define IGEN_TESTS_INTERVAL_TESTHELPERS_H

#include "interval/DdInterval.h"
#include "interval/Expansion.h"
#include "interval/Interval.h"
#include "interval/Ulp.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>

namespace igen::test {

/// Deterministic RNG for reproducible tests.
class Rng {
public:
  explicit Rng(uint64_t Seed) : Gen(Seed) {}

  uint64_t bits() { return Gen(); }

  /// Uniform in [Lo, Hi).
  double uniform(double Lo, double Hi) {
    return std::uniform_real_distribution<double>(Lo, Hi)(Gen);
  }

  int intIn(int Lo, int Hi) {
    return std::uniform_int_distribution<int>(Lo, Hi)(Gen);
  }

  /// A finite double spread over many binades (log-uniform magnitude,
  /// random sign), occasionally denormal or exactly zero.
  double finiteDouble() {
    int Kind = intIn(0, 19);
    if (Kind == 0)
      return 0.0;
    if (Kind == 1) // denormal
      return std::ldexp(uniform(-1.0, 1.0), -1060);
    int Exp = intIn(-300, 300);
    return std::ldexp(uniform(-1.0, 1.0), Exp);
  }

  /// A double in a moderate range (no overflow in products).
  double moderateDouble() {
    int Exp = intIn(-30, 30);
    return std::ldexp(uniform(-1.0, 1.0), Exp);
  }

  /// Any double including specials.
  double anyDouble() {
    int Kind = intIn(0, 9);
    if (Kind == 0)
      return std::numeric_limits<double>::infinity();
    if (Kind == 1)
      return -std::numeric_limits<double>::infinity();
    if (Kind == 2)
      return std::numeric_limits<double>::quiet_NaN();
    return finiteDouble();
  }

  /// A valid interval around a random finite center, width up to
  /// \p MaxUlps ulps.
  Interval interval(int64_t MaxUlps = 64) {
    double C = finiteDouble();
    int64_t Down = intIn(0, static_cast<int>(MaxUlps));
    int64_t Up = intIn(0, static_cast<int>(MaxUlps));
    return Interval::fromEndpoints(addUlps(C, -Down), addUlps(C, Up));
  }

  /// A moderate-range interval (products/quotients stay finite).
  Interval moderateInterval(int64_t MaxUlps = 64) {
    double C = moderateDouble();
    int64_t Down = intIn(0, static_cast<int>(MaxUlps));
    int64_t Up = intIn(0, static_cast<int>(MaxUlps));
    return Interval::fromEndpoints(addUlps(C, -Down), addUlps(C, Up));
  }

  /// A random normalized double-double value of moderate magnitude.
  Dd dd() {
    double H = moderateDouble();
    double L = H * std::ldexp(uniform(-1.0, 1.0), -53);
    // Normalize: H must absorb L's leading part.
    double S = H + L;
    return Dd(S, L - (S - H));
  }

private:
  std::mt19937_64 Gen;
};

/// Quad-precision value of a double-double.
inline __float128 toQuad(const Dd &X) {
  return static_cast<__float128>(X.H) + static_cast<__float128>(X.L);
}

/// True if the interval contains the quad value \p Q (NaN endpoints
/// contain everything; NaN Q is contained only by NaN intervals).
inline bool containsQuad(const Interval &I, __float128 Q) {
  if (I.hasNaN())
    return true;
  return -static_cast<__float128>(I.NegLo) <= Q &&
         Q <= static_cast<__float128>(I.Hi);
}

inline bool containsQuad(const DdInterval &I, __float128 Q) {
  if (I.hasNaN())
    return true;
  __float128 Lo = -toQuad(I.NegLo);
  __float128 Hi = toQuad(I.Hi);
  return Lo <= Q && Q <= Hi;
}

//===----------------------------------------------------------------------===//
// Exact (expansion-based) oracles
//
// __float128 has 113 bits; the exact sum of two double-doubles can need
// ~118 and an exact dd product ~212, so quad comparisons near the boundary
// are unreliable. These helpers evaluate signs exactly.
//===----------------------------------------------------------------------===//

/// Builds the expansion of (A + B) for double-doubles (exact).
inline Expansion exactDdSum(const Dd &A, const Dd &B) {
  RoundNearestScope RN;
  Expansion E;
  E.add(A.H);
  E.add(A.L);
  E.add(B.H);
  E.add(B.L);
  return E;
}

/// Builds the expansion of (A * B) for double-doubles (exact).
inline Expansion exactDdProduct(const Dd &A, const Dd &B) {
  RoundNearestScope RN;
  Expansion E;
  E.addProduct(A.H, B.H);
  E.addProduct(A.H, B.L);
  E.addProduct(A.L, B.H);
  E.addProduct(A.L, B.L);
  return E;
}

/// True if the double-double Z >= the exact value V (sign-exact).
inline bool ddGeExact(const Dd &Z, const Expansion &V) {
  RoundNearestScope RN;
  Expansion D = V;
  // D = V - Z; Z >= V  <=>  D <= 0.
  D.add(-Z.H);
  D.add(-Z.L);
  return D.sign() <= 0;
}

/// True if the double-double Z <= the exact value V.
inline bool ddLeExact(const Dd &Z, const Expansion &V) {
  RoundNearestScope RN;
  Expansion D = V;
  D.add(-Z.H);
  D.add(-Z.L);
  return D.sign() >= 0;
}

/// True if the dd interval \p I contains the exact value \p V.
inline bool containsExact(const DdInterval &I, const Expansion &V) {
  if (I.hasNaN())
    return true;
  // lo <= V <= hi, with lo == -NegLo.
  return ddLeExact(ddNeg(I.NegLo), V) && ddGeExact(I.Hi, V);
}

/// A set of "interesting" doubles for exhaustive special-value sweeps.
inline const double *specialValues(int &Count) {
  static const double Values[] = {
      0.0,
      -0.0,
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      1.0,
      -1.0,
      1.5,
      -2.5,
      1e300,
      -1e300,
      std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::max(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
  };
  Count = sizeof(Values) / sizeof(Values[0]);
  return Values;
}

} // namespace igen::test

#endif // IGEN_TESTS_INTERVAL_TESTHELPERS_H
