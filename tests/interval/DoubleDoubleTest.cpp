//===- DoubleDoubleTest.cpp - Directed double-double tests ------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/DoubleDouble.h"

#include "TestHelpers.h"

#include "interval/Expansion.h"

#include <gtest/gtest.h>

using namespace igen;
using igen::test::Rng;
using igen::test::toQuad;

TEST(TwoSum, ErrorFreeInRoundToNearest) {
  Rng R(1);
  RoundNearestScope RN;
  for (int I = 0; I < 10000; ++I) {
    double A = R.finiteDouble(), B = R.finiteDouble();
    double S, E;
    twoSum(A, B, S, E);
    __float128 Exact = (__float128)A + B;
    EXPECT_EQ((__float128)S + E, Exact) << A << " + " << B;
  }
}

TEST(TwoSum, UpperBoundUnderUpwardRounding) {
  Rng R(2);
  RoundUpwardScope Up;
  for (int I = 0; I < 20000; ++I) {
    double A = R.finiteDouble(), B = R.finiteDouble();
    double S, E;
    twoSum(A, B, S, E);
    EXPECT_TRUE(test::ddGeExact(Dd(S, E),
                                test::exactDdSum(Dd(A), Dd(B))))
        << A << " + " << B;
  }
}

TEST(FastTwoSum, UpperBoundUnderUpwardRounding) {
  Rng R(3);
  RoundUpwardScope Up;
  for (int I = 0; I < 20000; ++I) {
    double A = R.finiteDouble(), B = R.finiteDouble();
    if (std::fabs(A) < std::fabs(B))
      std::swap(A, B);
    double S, E;
    fastTwoSum(A, B, S, E);
    EXPECT_TRUE(test::ddGeExact(Dd(S, E),
                                test::exactDdSum(Dd(A), Dd(B))))
        << A << " + " << B;
  }
}

TEST(TwoProd, ExactResidueAnyMode) {
  Rng R(4);
  RoundUpwardScope Up;
  for (int I = 0; I < 20000; ++I) {
    double A = R.moderateDouble(), B = R.moderateDouble();
    double P, E;
    twoProd(A, B, P, E);
    // Exact equality check via expansions (quad cannot hold P + E).
    RoundNearestScope RN;
    Expansion Diff;
    Diff.addProduct(A, B);
    Diff.add(-P);
    Diff.add(-E);
    EXPECT_TRUE(Diff.isZero()) << A << " * " << B;
  }
}

namespace {

class DdUpTest : public ::testing::Test {
protected:
  RoundUpwardScope Up;
  Rng R{5};
};

} // namespace

TEST_F(DdUpTest, AddIsUpperBound) {
  for (int I = 0; I < 20000; ++I) {
    Dd X = R.dd(), Y = R.dd();
    Dd Z = ddAddUp(X, Y);
    // Sign-exact oracle: quad would round the reference itself.
    EXPECT_TRUE(test::ddGeExact(Z, test::exactDdSum(X, Y)));
  }
}

TEST_F(DdUpTest, AddIsTight) {
  // The upper bound must not be sloppy: within a few units of the
  // 106-bit place.
  for (int I = 0; I < 5000; ++I) {
    Dd X = R.dd(), Y = R.dd();
    Dd Z = ddAddUp(X, Y);
    __float128 Exact = toQuad(X) + toQuad(Y);
    __float128 Err = toQuad(Z) - Exact;
    __float128 Scale = fabs((double)Exact) + 1e-300;
    EXPECT_LE((double)(Err / Scale), 0x1p-100);
  }
}

TEST_F(DdUpTest, SubIsUpperBound) {
  for (int I = 0; I < 10000; ++I) {
    Dd X = R.dd(), Y = R.dd();
    Dd Z = ddSubUp(X, Y);
    EXPECT_TRUE(test::ddGeExact(Z, test::exactDdSum(X, ddNeg(Y))));
  }
}

TEST_F(DdUpTest, MulIsUpperBound) {
  for (int I = 0; I < 20000; ++I) {
    Dd X = R.dd(), Y = R.dd();
    Dd Z = ddMulUp(X, Y);
    EXPECT_TRUE(test::ddGeExact(Z, test::exactDdProduct(X, Y)));
  }
}

TEST_F(DdUpTest, MulIsTight) {
  for (int I = 0; I < 5000; ++I) {
    Dd X = R.dd(), Y = R.dd();
    Dd Z = ddMulUp(X, Y);
    __float128 Exact = toQuad(X) * toQuad(Y);
    __float128 Err = toQuad(Z) - Exact;
    __float128 Scale = fabs((double)Exact) + 1e-300;
    EXPECT_LE((double)(Err / Scale), 0x1p-98);
  }
}

TEST_F(DdUpTest, DivIsUpperBound) {
  for (int I = 0; I < 20000; ++I) {
    Dd X = R.dd(), Y = R.dd();
    if (Y.sign() == 0)
      continue;
    Dd Z = ddDivUp(X, Y);
    // Z >= X/Y  <=>  sign(Z*Y - X) agrees with the sign of Y.
    int RS = ddResidualSign(Z, Y, X);
    EXPECT_TRUE(Y.sign() > 0 ? RS >= 0 : RS <= 0)
        << X.H << "+" << X.L << " / " << Y.H << "+" << Y.L;
  }
}

TEST_F(DdUpTest, DivIsReasonablyTight) {
  for (int I = 0; I < 5000; ++I) {
    Dd X = R.dd(), Y = R.dd();
    if (Y.sign() == 0)
      continue;
    Dd Z = ddDivUp(X, Y);
    __float128 Exact = toQuad(X) / toQuad(Y);
    __float128 Err = toQuad(Z) - Exact;
    __float128 Scale = fabs((double)Exact) + 1e-300;
    // Dominated by the deliberate 2^-96 widening margin.
    EXPECT_LE((double)(Err / Scale), 0x1p-94);
  }
}

TEST_F(DdUpTest, LowerBoundViaNegation) {
  // RD(x + y) == -RU((-x) + (-y)): negation turns the upper bounds into
  // lower bounds, which is all the interval layer relies on.
  for (int I = 0; I < 10000; ++I) {
    Dd X = R.dd(), Y = R.dd();
    Dd Z = ddNeg(ddAddUp(ddNeg(X), ddNeg(Y)));
    EXPECT_TRUE(test::ddLeExact(Z, test::exactDdSum(X, Y)));
  }
}

TEST(DdMisc, SignAndCompare) {
  EXPECT_EQ(Dd(1.0, 0.0).sign(), 1);
  EXPECT_EQ(Dd(-1.0, 0.0).sign(), -1);
  EXPECT_EQ(Dd(0.0, 0.0).sign(), 0);
  EXPECT_EQ(Dd(0.0, -1e-300).sign(), -1);
  EXPECT_TRUE(ddLess(Dd(1.0, -1e-20), Dd(1.0, 0.0)));
  EXPECT_FALSE(ddLess(Dd(1.0, 0.0), Dd(1.0, 0.0)));
  EXPECT_TRUE(ddLess(Dd(1.0, 0.0), Dd(2.0, 0.0)));
  EXPECT_EQ(ddMax(Dd(1.0, 1e-20), Dd(1.0, 0.0)).L, 1e-20);
}

TEST(DdMisc, CountingOpsMatchesPaperForAdd) {
  RoundUpwardScope Up;
  CountingOps::reset();
  Dd X(1.0, 1e-17), Y(2.0, -1e-17);
  (void)ddAddUp<CountingOps>(X, Y);
  // Fig. 6: 2 TwoSum (6 flops each) + 2 FastTwoSum (3 each) + 2 adds = 20
  // per endpoint, 40 per interval addition (Table III).
  EXPECT_EQ(CountingOps::flops(), 20u);
}

TEST(DdMisc, ToDoubleUp) {
  RoundUpwardScope Up;
  Dd X(1.0, 1e-20);
  EXPECT_EQ(ddToDoubleUp(X), nextUp(1.0));
  // Nearest: rounds the exact sum H + L once in round-to-nearest.
  EXPECT_EQ(ddToDoubleNearest(X), 1.0);
  EXPECT_EQ(ddToDoubleNearest(Dd(1.0, 0x1p-53)), 1.0); // tie-to-even
  EXPECT_EQ(ddToDoubleNearest(Dd(1.0, 0x1.8p-52)), 1.0 + 2 * 0x1p-52);
  // A directed-rounding-produced pair whose H word is not the nearest:
  // value 1 - 2^-60 has nearest double 1, but H may sit above it.
  EXPECT_EQ(ddToDoubleNearest(Dd(nextUp(1.0), -0x1p-52 - 0x1p-60)),
            1.0);
}

TEST_F(DdUpTest, SqrtDirectedBounds) {
  for (int I = 0; I < 20000; ++I) {
    Dd X = R.dd();
    if (X.sign() <= 0)
      continue;
    Dd Up = ddSqrtUp(X);
    Dd Down = ddSqrtDown(X);
    // Up^2 >= X >= Down^2, verified sign-exactly via expansions.
    {
      igen::RoundNearestScope RN;
      Expansion EU;
      EU.addProduct(Up.H, Up.H);
      EU.addProduct(Up.H, Up.L);
      EU.addProduct(Up.L, Up.H);
      EU.addProduct(Up.L, Up.L);
      EU.add(-X.H);
      EU.add(-X.L);
      EXPECT_GE(EU.sign(), 0) << X.H;
      Expansion ED;
      ED.addProduct(Down.H, Down.H);
      ED.addProduct(Down.H, Down.L);
      ED.addProduct(Down.L, Down.H);
      ED.addProduct(Down.L, Down.L);
      ED.add(-X.H);
      ED.add(-X.L);
      EXPECT_LE(ED.sign(), 0) << X.H;
    }
    // Tightness: the two bounds agree to ~2^-94 relative.
    double Width = (Up.H - Down.H) + (Up.L - Down.L);
    EXPECT_LE(Width, std::fabs(Up.H) * 0x1p-90 + 1e-300);
  }
}

TEST(DdSqrt, EdgeCases) {
  RoundUpwardScope Up;
  EXPECT_EQ(ddSqrtUp(Dd(0.0)).H, 0.0);
  EXPECT_EQ(ddSqrtDown(Dd(0.0)).H, 0.0);
  EXPECT_TRUE(ddSqrtUp(Dd(-1.0)).hasNaN());
  Dd Four = ddSqrtUp(Dd(4.0));
  EXPECT_GE(Four.H + Four.L, 2.0);
  EXPECT_LE(Four.H, 2.0 + 1e-15);
  Dd FourD = ddSqrtDown(Dd(4.0));
  EXPECT_LE(FourD.H + FourD.L, 2.0);
}

TEST_F(DdUpTest, DivExtremeScalesStillBounded) {
  // Quotients deep in the subnormal range and near overflow: the widened
  // candidate must remain an upper bound (exact residual-sign check).
  for (int I = 0; I < 5000; ++I) {
    Dd X = R.dd(), Y = R.dd();
    if (Y.sign() == 0 || X.sign() == 0)
      continue;
    int EX = 40 * (I % 27) - 520; // scale X across ~+-2^520
    X.H = std::ldexp(X.H, EX);
    X.L = std::ldexp(X.L, EX);
    Dd Z = ddDivUp(X, Y);
    if (Z.hasNaN() || Z.isInf())
      continue; // saturated: trivially an upper bound
    int RS = ddResidualSign(Z, Y, X);
    EXPECT_TRUE(Y.sign() > 0 ? RS >= 0 : RS <= 0)
        << X.H << " / " << Y.H;
  }
}
