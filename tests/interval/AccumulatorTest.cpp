//===- AccumulatorTest.cpp - Reduction accumulator tests --------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/Accumulator.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace igen;
using igen::test::Rng;
using igen::test::containsQuad;

namespace {

class AccTest : public ::testing::Test {
protected:
  RoundUpwardScope Up;
  Rng R{71};
};

} // namespace

TEST_F(AccTest, F64AccumulatorContainsExactSum) {
  for (int Trial = 0; Trial < 50; ++Trial) {
    SumAccumulatorF64 Acc;
    __float128 Exact = 0;
    int N = R.intIn(1, 2000);
    for (int I = 0; I < N; ++I) {
      double X = R.moderateDouble();
      Interval T = Interval::fromPoint(X);
      if (I == 0)
        Acc.init(T);
      else
        Acc.accumulate(T);
      Exact += X;
    }
    Interval S = Acc.reduce();
    EXPECT_TRUE(containsQuad(S, Exact));
    // Double-double accumulation: the final interval is a handful of ulps.
    if (std::fabs((double)Exact) > 1e-10) {
      EXPECT_LE(ulpDistance(S.lo(), S.hi()), 4u);
    }
  }
}

TEST_F(AccTest, F64AccumulatorBeatsNaiveOnCancellation) {
  // Sum n large alternating terms plus a tiny one: naive interval
  // summation loses the tiny term, the dd accumulator keeps it.
  SumAccumulatorF64 Acc;
  Acc.init(Interval::fromPoint(1e16));
  Acc.accumulate(Interval::fromPoint(1.0));
  Acc.accumulate(Interval::fromPoint(-1e16));
  Interval S = Acc.reduce();
  EXPECT_TRUE(S.contains(1.0));
  EXPECT_LE(ulpDistance(S.lo(), S.hi()), 2u);
}

TEST_F(AccTest, F64AccumulatorIntervalWidths) {
  // Accumulating genuine intervals must track both endpoint sums.
  SumAccumulatorF64 Acc;
  Acc.init(Interval::fromEndpoints(0.0, 1.0));
  for (int I = 0; I < 10; ++I)
    Acc.accumulate(Interval::fromEndpoints(-1.0, 1.0));
  Interval S = Acc.reduce();
  EXPECT_EQ(S.lo(), -10.0);
  EXPECT_EQ(S.hi(), 11.0);
}

TEST_F(AccTest, ExactAccumulatorIsExact) {
  for (int Trial = 0; Trial < 30; ++Trial) {
    ExactAccumulator Acc;
    Expansion Exact;
    int N = R.intIn(1, 3000);
    {
      // Build the exact reference alongside; Expansion requires RN.
      for (int I = 0; I < N; ++I) {
        double X = R.moderateDouble();
        Acc.add(X);
        RoundNearestScope RN;
        Exact.add(X);
      }
    }
    Dd S = Acc.reduceUp();
    // reduceUp is an upper bound of the exact sum...
    EXPECT_TRUE(igen::test::ddGeExact(S, Exact));
    // ...and within ~2^-95 relative of it.
    double Est = Exact.estimate();
    double Err = (S.H - Est) + S.L;
    double Scale = std::fabs(Est) + 1e-280;
    EXPECT_LE(Err / Scale, 0x1p-95);
  }
}

TEST_F(AccTest, ExactAccumulatorCancellation) {
  ExactAccumulator Acc;
  Acc.add(1e300);
  Acc.add(0x1p-1000);
  Acc.add(-1e300);
  Dd S = Acc.reduceUp();
  EXPECT_EQ(S.H, 0x1p-1000);
  EXPECT_EQ(S.L, 0.0);
}

TEST_F(AccTest, ExactAccumulatorCarryChain) {
  // Repeatedly adding the same value forces carry propagation through the
  // exponent-indexed slots.
  ExactAccumulator Acc;
  for (int I = 0; I < 1024; ++I)
    Acc.add(1.0);
  Dd S = Acc.reduceUp();
  EXPECT_EQ(S.H, 1024.0);
  EXPECT_EQ(S.L, 0.0);
}

TEST_F(AccTest, ExactAccumulatorDenormals) {
  ExactAccumulator Acc;
  double D = std::numeric_limits<double>::denorm_min();
  for (int I = 0; I < 100; ++I)
    Acc.add(D);
  Dd S = Acc.reduceUp();
  EXPECT_EQ(S.H, 100 * D); // exact: fixed-point denormal arithmetic
}

TEST_F(AccTest, ExactAccumulatorSpecials) {
  ExactAccumulator Acc;
  Acc.add(1.0);
  Acc.add(std::numeric_limits<double>::infinity());
  EXPECT_TRUE(Acc.hasSpecial());
  Dd S = Acc.reduceUp();
  EXPECT_TRUE(S.isInf());
  // inf + -inf -> NaN.
  ExactAccumulator Acc2;
  Acc2.add(std::numeric_limits<double>::infinity());
  Acc2.add(-std::numeric_limits<double>::infinity());
  EXPECT_TRUE(Acc2.reduceUp().hasNaN());
}

TEST_F(AccTest, DdAccumulatorContainsExactSum) {
  for (int Trial = 0; Trial < 20; ++Trial) {
    SumAccumulatorDd Acc;
    Expansion Exact;
    int N = R.intIn(1, 500);
    for (int I = 0; I < N; ++I) {
      Dd X = R.dd();
      DdInterval T = DdInterval::fromPoint(X);
      if (I == 0)
        Acc.init(T);
      else
        Acc.accumulate(T);
      RoundNearestScope RN;
      Exact.add(X.H);
      Exact.add(X.L);
    }
    DdInterval S = Acc.reduce();
    EXPECT_TRUE(igen::test::containsExact(S, Exact));
  }
}

TEST_F(AccTest, DdAccumulatorKeepsEndpointsSeparate) {
  SumAccumulatorDd Acc;
  Acc.init(DdInterval::fromEndpoints(Dd(0.0), Dd(1.0)));
  for (int I = 0; I < 5; ++I)
    Acc.accumulate(DdInterval::fromEndpoints(Dd(-2.0), Dd(3.0)));
  DdInterval S = Acc.reduce();
  EXPECT_EQ(S.lo().H, -10.0);
  EXPECT_EQ(S.hi().H, 16.0);
}
