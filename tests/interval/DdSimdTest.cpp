//===- DdSimdTest.cpp - AVX double-double interval tests --------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/DdSimd.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace igen;
using igen::test::Rng;
using igen::test::containsQuad;
using igen::test::toQuad;

namespace {

class DdAvxTest : public ::testing::Test {
protected:
  RoundUpwardScope Up;
  Rng R{51};

  DdInterval randInterval() {
    Dd C = R.dd();
    Dd Lo = C, Hi = C;
    Lo.L = addUlps(Lo.L, -R.intIn(0, 8));
    Hi.L = addUlps(Hi.L, R.intIn(0, 8));
    if (ddLess(Hi, Lo))
      std::swap(Lo, Hi);
    return DdInterval::fromEndpoints(Lo, Hi);
  }

  static bool sameDd(const Dd &A, const Dd &B) {
    return A.H == B.H && A.L == B.L;
  }
  static bool sameInterval(const DdInterval &A, const DdInterval &B) {
    return sameDd(A.NegLo, B.NegLo) && sameDd(A.Hi, B.Hi);
  }
};

} // namespace

TEST_F(DdAvxTest, RoundTripLayout) {
  DdInterval I = DdInterval::fromEndpoints(Dd(1.0, 1e-17), Dd(2.0, -2e-17));
  DdIntervalAvx V = DdIntervalAvx::fromScalar(I);
  EXPECT_TRUE(sameInterval(V.toScalar(), I));
}

TEST_F(DdAvxTest, AddMatchesScalarBitwise) {
  // The vectorized DD_Add performs the identical operation sequence to the
  // scalar Fig. 6 algorithm, so results must agree bit for bit.
  for (int I = 0; I < 10000; ++I) {
    DdInterval A = randInterval(), B = randInterval();
    DdInterval Ref = ddiAdd(A, B);
    DdInterval Got =
        ddiAdd(DdIntervalAvx::fromScalar(A), DdIntervalAvx::fromScalar(B))
            .toScalar();
    EXPECT_TRUE(sameInterval(Got, Ref));
  }
}

TEST_F(DdAvxTest, AddSoundAgainstQuad) {
  for (int I = 0; I < 10000; ++I) {
    DdInterval A = randInterval(), B = randInterval();
    DdInterval S =
        ddiAdd(DdIntervalAvx::fromScalar(A), DdIntervalAvx::fromScalar(B))
            .toScalar();
    EXPECT_TRUE(containsQuad(S, toQuad(A.Hi) + toQuad(B.Hi)));
    EXPECT_TRUE(
        containsQuad(S, -toQuad(A.NegLo) + -toQuad(B.NegLo)));
  }
}

TEST_F(DdAvxTest, MulSoundAgainstQuad) {
  for (int I = 0; I < 10000; ++I) {
    DdInterval A = randInterval(), B = randInterval();
    DdInterval P =
        ddiMul(DdIntervalAvx::fromScalar(A), DdIntervalAvx::fromScalar(B))
            .toScalar();
    __float128 Cands[4] = {
        -toQuad(A.NegLo) * -toQuad(B.NegLo),
        -toQuad(A.NegLo) * toQuad(B.Hi),
        toQuad(A.Hi) * -toQuad(B.NegLo),
        toQuad(A.Hi) * toQuad(B.Hi),
    };
    for (__float128 C : Cands)
      EXPECT_TRUE(containsQuad(P, C));
  }
}

TEST_F(DdAvxTest, MulMatchesScalar) {
  // Same candidate scheme and same dd product algorithm: bitwise equal.
  for (int I = 0; I < 10000; ++I) {
    DdInterval A = randInterval(), B = randInterval();
    DdInterval Ref = ddiMul(A, B);
    DdInterval Got =
        ddiMul(DdIntervalAvx::fromScalar(A), DdIntervalAvx::fromScalar(B))
            .toScalar();
    EXPECT_TRUE(sameInterval(Got, Ref))
        << A.Hi.H << " " << B.Hi.H;
  }
}

TEST_F(DdAvxTest, MulTightness) {
  for (int I = 0; I < 3000; ++I) {
    DdInterval A = randInterval(), B = randInterval();
    DdInterval P =
        ddiMul(DdIntervalAvx::fromScalar(A), DdIntervalAvx::fromScalar(B))
            .toScalar();
    if (P.hasNaN())
      continue;
    // Relative width must stay near the input widths (no blow-up).
    double W = (P.Hi.H + P.NegLo.H) + (P.Hi.L + P.NegLo.L);
    double Mid = std::fabs(P.Hi.H) + 1e-300;
    EXPECT_LE(W / Mid, 1e-25);
  }
}

TEST_F(DdAvxTest, SpecialValuesFallBack) {
  DdInterval N = DdInterval::nan();
  DdIntervalAvx V = DdIntervalAvx::fromScalar(N);
  EXPECT_TRUE(V.hasSpecial());
  DdIntervalAvx A = DdIntervalAvx::fromPoint(1.0);
  EXPECT_FALSE(A.hasSpecial());
  EXPECT_TRUE(ddiMul(V, A).toScalar().hasNaN());
  DdIntervalAvx E = DdIntervalAvx::fromScalar(DdInterval::entire());
  EXPECT_TRUE(E.hasSpecial());
  DdInterval R = ddiMul(E, A).toScalar();
  EXPECT_TRUE(R.NegLo.isInf() && R.Hi.isInf());
}

TEST_F(DdAvxTest, DivMatchesScalarPath) {
  for (int I = 0; I < 5000; ++I) {
    DdInterval A = randInterval(), B = randInterval();
    if (ddNeg(B.NegLo).sign() <= 0 && B.Hi.sign() >= 0)
      continue;
    DdInterval Ref = ddiDiv(A, B);
    DdInterval Got =
        ddiDiv(DdIntervalAvx::fromScalar(A), DdIntervalAvx::fromScalar(B))
            .toScalar();
    EXPECT_TRUE(sameInterval(Got, Ref));
  }
}

TEST_F(DdAvxTest, NegAndSub) {
  DdInterval A = randInterval();
  DdIntervalAvx V = DdIntervalAvx::fromScalar(A);
  EXPECT_TRUE(sameInterval(ddiNeg(V).toScalar(), ddiNeg(A)));
  DdInterval B = randInterval();
  EXPECT_TRUE(sameInterval(
      ddiSub(V, DdIntervalAvx::fromScalar(B)).toScalar(), ddiSub(A, B)));
}
