//===- ElementaryTest.cpp - Interval elementary function tests --------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "interval/Elementary.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace igen;
using igen::test::Rng;

namespace {

class ElemTest : public ::testing::Test {
protected:
  RoundUpwardScope Up;
  Rng R{61};
};

/// Reference value computed in long double under round-to-nearest; with
/// ~64-bit precision it sits well inside any >=4-ulp-widened double
/// enclosure.
template <typename Fn> long double refLd(Fn F, double X) {
  RoundNearestScope RN;
  return F(static_cast<long double>(X));
}

} // namespace

TEST_F(ElemTest, ExpPointSoundAndTight) {
  for (int I = 0; I < 3000; ++I) {
    double X = R.uniform(-700.0, 700.0);
    Interval E = iExp(Interval::fromPoint(X));
    long double Ref = refLd([](long double V) { return expl(V); }, X);
    EXPECT_GE(static_cast<long double>(E.hi()), Ref);
    EXPECT_LE(static_cast<long double>(E.lo()), Ref);
    if (E.lo() > 0.0) {
      EXPECT_LE(ulpDistance(E.lo(), E.hi()), 2 * LibmUlpBound + 2u);
    }
  }
}

TEST_F(ElemTest, ExpEdgeCases) {
  Interval E = iExp(Interval::fromEndpoints(
      -std::numeric_limits<double>::infinity(), 0.0));
  EXPECT_EQ(E.lo(), 0.0);
  EXPECT_GE(E.hi(), 1.0);
  E = iExp(Interval::fromEndpoints(700.0, 1000.0));
  EXPECT_EQ(E.hi(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(iExp(Interval::nan()).hasNaN());
}

TEST_F(ElemTest, LogPointSound) {
  for (int I = 0; I < 3000; ++I) {
    double X = std::exp(R.uniform(-700.0, 700.0));
    if (X <= 0.0 || std::isinf(X))
      continue;
    Interval L = iLog(Interval::fromPoint(X));
    long double Ref = refLd([](long double V) { return logl(V); }, X);
    EXPECT_GE(static_cast<long double>(L.hi()), Ref);
    EXPECT_LE(static_cast<long double>(L.lo()), Ref);
  }
}

TEST_F(ElemTest, LogEdgeCases) {
  EXPECT_TRUE(iLog(Interval::fromEndpoints(-2.0, -1.0)).hasNaN());
  Interval L = iLog(Interval::fromEndpoints(-1.0, 4.0));
  EXPECT_TRUE(std::isnan(L.NegLo));
  EXPECT_GE(L.Hi, std::log(4.0));
  L = iLog(Interval::fromEndpoints(0.0, 1.0));
  EXPECT_EQ(L.lo(), -std::numeric_limits<double>::infinity());
  EXPECT_GE(L.hi(), 0.0);
}

TEST_F(ElemTest, SinPointSound) {
  for (int I = 0; I < 5000; ++I) {
    double X = R.uniform(-1e4, 1e4);
    Interval S = iSin(Interval::fromPoint(X));
    long double Ref = refLd([](long double V) { return sinl(V); }, X);
    EXPECT_GE(static_cast<long double>(S.hi()), Ref) << X;
    EXPECT_LE(static_cast<long double>(S.lo()), Ref) << X;
    EXPECT_LE(S.hi(), 1.0);
    EXPECT_GE(S.lo(), -1.0);
  }
}

TEST_F(ElemTest, CosPointSound) {
  for (int I = 0; I < 5000; ++I) {
    double X = R.uniform(-1e4, 1e4);
    Interval C = iCos(Interval::fromPoint(X));
    long double Ref = refLd([](long double V) { return cosl(V); }, X);
    EXPECT_GE(static_cast<long double>(C.hi()), Ref) << X;
    EXPECT_LE(static_cast<long double>(C.lo()), Ref) << X;
  }
}

TEST_F(ElemTest, SinPeaksInjected) {
  const double Pi = 3.141592653589793;
  // Interval spanning pi/2 must have hi == 1.
  Interval S = iSin(Interval::fromEndpoints(1.0, 2.0));
  EXPECT_EQ(S.hi(), 1.0);
  EXPECT_LT(S.lo(), std::sin(1.0));
  // Interval spanning 3*pi/2 must have lo == -1.
  S = iSin(Interval::fromEndpoints(4.0, 5.0));
  EXPECT_EQ(S.lo(), -1.0);
  // Far from any extremum: monotone section.
  S = iSin(Interval::fromEndpoints(0.1, 0.2));
  EXPECT_LT(S.hi(), 0.21);
  EXPECT_GT(S.lo(), 0.09);
  // A whole period: [-1, 1].
  S = iSin(Interval::fromEndpoints(0.0, 2.0 * Pi + 0.1));
  EXPECT_EQ(S.lo(), -1.0);
  EXPECT_EQ(S.hi(), 1.0);
}

TEST_F(ElemTest, CosPeaksInjected) {
  Interval C = iCos(Interval::fromEndpoints(-0.5, 0.5));
  EXPECT_EQ(C.hi(), 1.0);
  C = iCos(Interval::fromEndpoints(3.0, 3.3)); // spans pi
  EXPECT_EQ(C.lo(), -1.0);
}

TEST_F(ElemTest, SinIntervalSoundBySampling) {
  for (int I = 0; I < 500; ++I) {
    double Lo = R.uniform(-100.0, 100.0);
    double Hi = Lo + R.uniform(0.0, 10.0);
    Interval In = Interval::fromEndpoints(Lo, Hi);
    Interval S = iSin(In);
    for (int J = 0; J <= 16; ++J) {
      double X = Lo + (Hi - Lo) * J / 16.0;
      long double Ref = refLd([](long double V) { return sinl(V); }, X);
      EXPECT_GE(static_cast<long double>(S.hi()), Ref) << Lo << " " << Hi;
      EXPECT_LE(static_cast<long double>(S.lo()), Ref) << Lo << " " << Hi;
    }
  }
}

TEST_F(ElemTest, HugeArgumentsGiveUnit) {
  Interval S = iSin(Interval::fromPoint(1e200));
  EXPECT_EQ(S.lo(), -1.0);
  EXPECT_EQ(S.hi(), 1.0);
  S = iCos(Interval::entire());
  EXPECT_EQ(S.lo(), -1.0);
  EXPECT_EQ(S.hi(), 1.0);
}

TEST_F(ElemTest, TanPoleAndMonotone) {
  // Contains pi/2: entire line.
  Interval T = iTan(Interval::fromEndpoints(1.0, 2.0));
  EXPECT_EQ(T.lo(), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(T.hi(), std::numeric_limits<double>::infinity());
  // Pole-free: monotone.
  T = iTan(Interval::fromEndpoints(0.1, 0.2));
  long double RefLo = refLd([](long double V) { return tanl(V); }, 0.1);
  long double RefHi = refLd([](long double V) { return tanl(V); }, 0.2);
  EXPECT_LE(static_cast<long double>(T.lo()), RefLo);
  EXPECT_GE(static_cast<long double>(T.hi()), RefHi);
  EXPECT_LT(T.hi(), 0.21);
}

TEST_F(ElemTest, TanPointSound) {
  for (int I = 0; I < 3000; ++I) {
    double X = R.uniform(-1e3, 1e3);
    Interval T = iTan(Interval::fromPoint(X));
    long double Ref = refLd([](long double V) { return tanl(V); }, X);
    EXPECT_GE(static_cast<long double>(T.hi()), Ref) << X;
    EXPECT_LE(static_cast<long double>(T.lo()), Ref) << X;
  }
}

TEST_F(ElemTest, SectionRangeConservative) {
  // floor(x / (pi/2)) for a grid of values, compared against long double.
  for (int I = -1000; I <= 1000; ++I) {
    double X = I * 0.1;
    long long KMin, KMax;
    igen::detail::sectionRange(X, KMin, KMax);
    long double K = floorl(static_cast<long double>(X) /
                           (3.14159265358979323846L / 2.0L));
    EXPECT_LE(KMin, static_cast<long long>(K));
    EXPECT_GE(KMax, static_cast<long long>(K));
    EXPECT_LE(KMax - KMin, 1);
  }
}

TEST_F(ElemTest, SectionRangeNearBoundary) {
  // Exactly representable values extremely close to k*pi/2 must produce an
  // ambiguous (width-1) range or the correct section; never a wrong one.
  double NearPiHalf = 1.5707963267948966; // closest double to pi/2
  long long KMin, KMax;
  igen::detail::sectionRange(NearPiHalf, KMin, KMax);
  EXPECT_LE(KMin, 0);
  EXPECT_GE(KMax, 0);
}

TEST_F(ElemTest, AtanSoundAndClamped) {
  for (int I = 0; I < 3000; ++I) {
    double X = R.uniform(-1e6, 1e6);
    Interval A = iAtan(Interval::fromPoint(X));
    long double Ref = refLd([](long double V) { return atanl(V); }, X);
    EXPECT_GE(static_cast<long double>(A.hi()), Ref) << X;
    EXPECT_LE(static_cast<long double>(A.lo()), Ref) << X;
  }
  Interval Wide = iAtan(Interval::entire());
  EXPECT_LE(Wide.hi(), 1.5707963267948968);
  EXPECT_GE(Wide.lo(), -1.5707963267948968);
}

TEST_F(ElemTest, AsinAcosSoundInDomain) {
  for (int I = 0; I < 3000; ++I) {
    double X = R.uniform(-1.0, 1.0);
    Interval S = iAsin(Interval::fromPoint(X));
    Interval C = iAcos(Interval::fromPoint(X));
    long double RefS = refLd([](long double V) { return asinl(V); }, X);
    long double RefC = refLd([](long double V) { return acosl(V); }, X);
    EXPECT_GE(static_cast<long double>(S.hi()), RefS) << X;
    EXPECT_LE(static_cast<long double>(S.lo()), RefS) << X;
    EXPECT_GE(static_cast<long double>(C.hi()), RefC) << X;
    EXPECT_LE(static_cast<long double>(C.lo()), RefC) << X;
    EXPECT_GE(C.lo(), 0.0);
  }
}

TEST_F(ElemTest, AsinAcosDomainEdges) {
  // Entirely outside the domain: invalid.
  EXPECT_TRUE(iAsin(Interval::fromEndpoints(1.5, 2.0)).hasNaN());
  EXPECT_TRUE(iAcos(Interval::fromEndpoints(-3.0, -1.5)).hasNaN());
  // Straddling the domain edge: NaN on the invalid side, sound bound on
  // the valid one (like sqrt([-1, 1])).
  Interval S = iAsin(Interval::fromEndpoints(0.5, 2.0));
  EXPECT_TRUE(std::isnan(S.Hi));
  EXPECT_LE(S.lo(), 0.5235987755982989); // asin(0.5) = pi/6
  // Exactly the endpoints.
  Interval Full = iAsin(Interval::fromEndpoints(-1.0, 1.0));
  EXPECT_LE(Full.lo(), -1.5707963267948966);
  EXPECT_GE(Full.hi(), 1.5707963267948966);
  Interval AC = iAcos(Interval::fromEndpoints(-1.0, 1.0));
  EXPECT_LE(AC.lo(), 0.0);
  EXPECT_GE(AC.hi(), 3.1415926535897931);
}

TEST_F(ElemTest, TanSpansPoleAwayFromOrigin) {
  const double Inf = std::numeric_limits<double>::infinity();
  // 11*pi/2 ~ 17.28 lies inside [17, 18]: the enclosure is the line.
  Interval T = iTan(Interval::fromEndpoints(17.0, 18.0));
  EXPECT_EQ(T.lo(), -Inf);
  EXPECT_EQ(T.hi(), Inf);
  // Any interval wider than pi spans a pole no matter where it sits.
  T = iTan(Interval::fromEndpoints(100.0, 104.0));
  EXPECT_EQ(T.lo(), -Inf);
  EXPECT_EQ(T.hi(), Inf);
  // The closest double to pi/2 is still on the left of the pole; tan
  // there is ~1.6e16 and the enclosure must reach it (or be entire if
  // the section is ambiguous).
  double NearPiHalf = 1.5707963267948966;
  Interval P = iTan(Interval::fromPoint(NearPiHalf));
  long double Ref = refLd([](long double V) { return tanl(V); }, NearPiHalf);
  EXPECT_GE(static_cast<long double>(P.hi()), Ref);
  EXPECT_LE(static_cast<long double>(P.lo()), Ref);
}

TEST_F(ElemTest, AsinAcosJustOutsideUnitDomain) {
  // One ulp outside [-1, 1] is already fully invalid.
  double Above = std::nextafter(1.0, 2.0);
  double Below = std::nextafter(-1.0, -2.0);
  EXPECT_TRUE(iAsin(Interval::fromPoint(Above)).hasNaN());
  EXPECT_TRUE(iAsin(Interval::fromPoint(Below)).hasNaN());
  EXPECT_TRUE(iAcos(Interval::fromPoint(Above)).hasNaN());
  EXPECT_TRUE(iAcos(Interval::fromPoint(Below)).hasNaN());
  // Straddling the upper edge by one ulp: NaN on the invalid side, a
  // sound bound on the valid side (cf. AsinAcosDomainEdges).
  double JustIn = std::nextafter(1.0, 0.0);
  Interval S = iAsin(Interval::fromEndpoints(JustIn, Above));
  EXPECT_TRUE(S.hasNaN());
  if (!std::isnan(S.NegLo)) {
    long double Ref =
        refLd([](long double V) { return asinl(V); }, JustIn);
    EXPECT_LE(static_cast<long double>(S.lo()), Ref);
  }
  Interval C = iAcos(Interval::fromEndpoints(Below, std::nextafter(-1.0, 0.0)));
  EXPECT_TRUE(C.hasNaN());
  if (!std::isnan(C.Hi))
    EXPECT_GE(C.hi(), 3.1415926535897931); // acos(-1) rounds to pi
}

TEST_F(ElemTest, SinCosAtArgumentReductionCutoff) {
  // sectionRange is only consulted for |x| <= 2^45; straddle that
  // boundary from both sides. Everything must stay sound against the
  // long double reference and inside [-1, 1].
  const double Cut = 0x1p45;
  const double Probes[] = {Cut,
                           -Cut,
                           std::nextafter(Cut, 0.0),
                           std::nextafter(Cut, 1e300),
                           std::nextafter(-Cut, 0.0),
                           std::nextafter(-Cut, -1e300)};
  for (double X : Probes) {
    Interval S = iSin(Interval::fromPoint(X));
    Interval C = iCos(Interval::fromPoint(X));
    long double RefS = refLd([](long double V) { return sinl(V); }, X);
    long double RefC = refLd([](long double V) { return cosl(V); }, X);
    EXPECT_GE(static_cast<long double>(S.hi()), RefS) << X;
    EXPECT_LE(static_cast<long double>(S.lo()), RefS) << X;
    EXPECT_GE(static_cast<long double>(C.hi()), RefC) << X;
    EXPECT_LE(static_cast<long double>(C.lo()), RefC) << X;
    EXPECT_LE(S.hi(), 1.0);
    EXPECT_GE(S.lo(), -1.0);
    EXPECT_LE(C.hi(), 1.0);
    EXPECT_GE(C.lo(), -1.0);
  }
  // Above the cutoff the implementation gives up: exactly [-1, 1].
  Interval Wide = iSin(Interval::fromPoint(std::nextafter(Cut, 1e300)));
  EXPECT_EQ(Wide.lo(), -1.0);
  EXPECT_EQ(Wide.hi(), 1.0);
}

TEST_F(ElemTest, AtanMonotoneEndpoints) {
  Interval A = iAtan(Interval::fromEndpoints(-2.0, 3.0));
  long double RefLo = refLd([](long double V) { return atanl(V); }, -2.0);
  long double RefHi = refLd([](long double V) { return atanl(V); }, 3.0);
  EXPECT_LE(static_cast<long double>(A.lo()), RefLo);
  EXPECT_GE(static_cast<long double>(A.hi()), RefHi);
  EXPECT_TRUE(iAtan(Interval::nan()).hasNaN());
}
