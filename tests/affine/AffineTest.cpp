//===- AffineTest.cpp - Affine arithmetic tests --------------------------------===//
//
// Part of the IGen reproduction. BSD 3-Clause license.
//
//===----------------------------------------------------------------------===//

#include "affine/AffineForm.h"

#include "interval/Accuracy.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

using namespace igen;

namespace {

class AffineTest : public ::testing::Test {
protected:
  RoundUpwardScope Up;
  std::mt19937_64 Gen{7};
  double uniform(double Lo, double Hi) {
    return std::uniform_real_distribution<double>(Lo, Hi)(Gen);
  }
};

} // namespace

TEST_F(AffineTest, PointAndIntervalConstruction) {
  AffineForm P = AffineForm::fromPoint(1.5);
  EXPECT_EQ(P.center(), 1.5);
  EXPECT_EQ(P.radius(), 0.0);
  EXPECT_TRUE(P.toInterval().contains(1.5));

  AffineForm I = AffineForm::fromInterval(1.0, 3.0);
  Interval Conc = I.toInterval();
  EXPECT_LE(Conc.lo(), 1.0);
  EXPECT_GE(Conc.hi(), 3.0);
  EXPECT_EQ(I.numTerms(), 1u);
}

TEST_F(AffineTest, AddSubSound) {
  for (int Trial = 0; Trial < 2000; ++Trial) {
    double A = uniform(-10, 10), B = uniform(-10, 10);
    AffineForm X = AffineForm::fromPoint(A);
    AffineForm Y = AffineForm::fromPoint(B);
    EXPECT_TRUE((X + Y).toInterval().contains(
        static_cast<double>(A + B))); // exact here
    long double Ref = static_cast<long double>(A) - B;
    Interval D = (X - Y).toInterval();
    EXPECT_LE(static_cast<long double>(D.lo()), Ref);
    EXPECT_GE(static_cast<long double>(D.hi()), Ref);
  }
}

TEST_F(AffineTest, CancellationIsExactUnlikeIntervals) {
  // x - x == 0 in affine arithmetic (correlation tracked); with plain
  // intervals the width doubles instead.
  AffineForm X = AffineForm::fromInterval(1.0, 2.0);
  Interval D = (X - X).toInterval();
  EXPECT_LE(std::fabs(D.lo()), 1e-15);
  EXPECT_LE(std::fabs(D.hi()), 1e-15);

  Interval IX = Interval::fromEndpoints(1.0, 2.0);
  Interval ID = iSub(IX, IX);
  EXPECT_EQ(ID.lo(), -1.0);
  EXPECT_EQ(ID.hi(), 1.0);
}

TEST_F(AffineTest, MulSound) {
  for (int Trial = 0; Trial < 1000; ++Trial) {
    double A = uniform(-4, 4), B = uniform(-4, 4);
    double WA = uniform(0, 0.1), WB = uniform(0, 0.1);
    AffineForm X = AffineForm::fromInterval(A - WA, A + WA);
    AffineForm Y = AffineForm::fromInterval(B - WB, B + WB);
    AffineForm P = X * Y;
    // Sample the concrete set.
    for (int S = -1; S <= 1; ++S) {
      long double PX = A + S * WA, PY = B + S * WB;
      Interval Conc = P.toInterval();
      EXPECT_LE(static_cast<long double>(Conc.lo()), PX * PY);
      EXPECT_GE(static_cast<long double>(Conc.hi()), PX * PY);
    }
  }
}

TEST_F(AffineTest, ReciprocalSound) {
  for (int Trial = 0; Trial < 1000; ++Trial) {
    double A = uniform(0.5, 10.0);
    double W = uniform(0.0, 0.3);
    if (Trial % 2)
      A = -A; // negative intervals too
    AffineForm X = AffineForm::fromInterval(A - W, A + W);
    AffineForm R = X.reciprocal();
    for (double T : {A - W, A, A + W}) {
      long double Ref = 1.0L / T;
      Interval Conc = R.toInterval();
      EXPECT_LE(static_cast<long double>(Conc.lo()), Ref) << A << " " << W;
      EXPECT_GE(static_cast<long double>(Conc.hi()), Ref) << A << " " << W;
    }
  }
}

TEST_F(AffineTest, ReciprocalThroughZeroIsUnbounded) {
  AffineForm X = AffineForm::fromInterval(-1.0, 1.0);
  Interval R = X.reciprocal().toInterval();
  EXPECT_TRUE(std::isinf(R.hi()) || R.hasNaN());
}

TEST_F(AffineTest, DivisionSound) {
  for (int Trial = 0; Trial < 500; ++Trial) {
    double A = uniform(-5, 5), B = uniform(1.0, 6.0);
    AffineForm X = AffineForm::fromInterval(A - 0.01, A + 0.01);
    AffineForm Y = AffineForm::fromInterval(B - 0.01, B + 0.01);
    Interval Q = (X / Y).toInterval();
    long double Ref = static_cast<long double>(A) / B;
    EXPECT_LE(static_cast<long double>(Q.lo()), Ref);
    EXPECT_GE(static_cast<long double>(Q.hi()), Ref);
  }
}

TEST_F(AffineTest, HenonStaysBoundedWhereIntervalsBlowUp) {
  // The paper's headline qualitative result (Table VI): on the Henon map
  // the affine accuracy stays roughly constant while interval accuracy
  // collapses.
  const int Iters = 60;
  AffineForm AX = AffineForm::fromInterval(
      Interval::fromEndpoints(0.0, nextUp(0.0)));
  AffineForm AY = AX;
  Interval IX = Interval::fromEndpoints(0.0, nextUp(0.0));
  Interval IY = IX;
  AffineForm CA = AffineForm::fromPoint(1.05);
  AffineForm CB = AffineForm::fromPoint(0.3);
  Interval CAI = Interval::fromPoint(1.05);
  Interval CBI = Interval::fromPoint(0.3);
  AffineForm One = AffineForm::fromPoint(1.0);
  Interval OneI = Interval::fromPoint(1.0);
  for (int I = 0; I < Iters; ++I) {
    AffineForm XI = AX;
    AX = One - CA * XI * XI + AY;
    AY = CB * XI;
    Interval XII = IX;
    IX = iAdd(iSub(OneI, iMul(CAI, iMul(XII, XII))), IY);
    IY = iMul(CBI, XII);
  }
  double AffBits = accuracyBits(AX.toInterval());
  double IntBits = accuracyBits(IX);
  EXPECT_GT(AffBits, 35.0);
  EXPECT_GT(AffBits, IntBits + 10.0);
}

TEST_F(AffineTest, CondenseKeepsSoundness) {
  AffineForm X = AffineForm::fromInterval(0.9, 1.1);
  // Build up many noise symbols.
  for (int I = 0; I < 300; ++I)
    X = X + AffineForm::fromInterval(-1e-6, 1e-6);
  EXPECT_LE(X.numTerms(), AffineForm::AutoCondenseLimit);
  Interval Conc = X.toInterval();
  EXPECT_LE(Conc.lo(), 0.9);
  EXPECT_GE(Conc.hi(), 1.1);
  EXPECT_LE(Conc.lo() + 2e-3, Conc.hi()); // still reasonably tight
  EXPECT_GE(Conc.lo(), 0.89);
  EXPECT_LE(Conc.hi(), 1.11);
}

TEST_F(AffineTest, RandomExpressionSoundVsLongDouble) {
  for (int Trial = 0; Trial < 300; ++Trial) {
    double A = uniform(-2, 2), B = uniform(-2, 2), C = uniform(0.5, 2);
    AffineForm X = AffineForm::fromPoint(A);
    AffineForm Y = AffineForm::fromPoint(B);
    AffineForm Z = AffineForm::fromPoint(C);
    AffineForm R = (X * Y + Z) * (X - Y) + Z * Z;
    long double LR = (static_cast<long double>(A) * B + C) *
                         (static_cast<long double>(A) - B) +
                     static_cast<long double>(C) * C;
    Interval Conc = R.toInterval();
    EXPECT_LE(static_cast<long double>(Conc.lo()), LR);
    EXPECT_GE(static_cast<long double>(Conc.hi()), LR);
    EXPECT_GT(accuracyBits(Conc), 40.0);
  }
}
