/* AVX variant of gemm (j loop vectorized, n multiple of 4). */
#include <immintrin.h>

void vvdd_gemm(double *C, const double *A, const double *B, int n) {
  for (int i = 0; i < n; i++) {
    for (int k = 0; k < n; k++) {
      __m256d a = _mm256_set1_pd(A[i * n + k]);
      for (int j = 0; j < n; j += 4) {
        __m256d c = _mm256_loadu_pd(C + i * n + j);
        __m256d b = _mm256_loadu_pd(B + k * n + j);
        _mm256_storeu_pd(C + i * n + j,
                         _mm256_add_pd(c, _mm256_mul_pd(a, b)));
      }
    }
  }
}
