/* C += A*B, straightforward i-k-j matrix multiplication (ATLAS
   substitute); row-major n x n. */

void svdd_gemm(double *C, const double *A, const double *B, int n) {
  for (int i = 0; i < n; i++) {
    for (int k = 0; k < n; k++) {
      double a = A[i * n + k];
      for (int j = 0; j < n; j++) {
        C[i * n + j] = C[i * n + j] + a * B[k * n + j];
      }
    }
  }
}
