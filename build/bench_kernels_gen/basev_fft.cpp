/* AVX variant of the radix-2 FFT: stages with half >= 4 vectorize the
   butterfly loop (4 butterflies per iteration). */
#include <immintrin.h>

void basev_fft(double *re, double *im, const double *wre, const double *wim,
            int *rev, int n) {
  for (int i = 0; i < n; i++) {
    int j = rev[i];
    if (j > i) {
      double tr = re[i];
      re[i] = re[j];
      re[j] = tr;
      double ti = im[i];
      im[i] = im[j];
      im[j] = ti;
    }
  }
  int tbase = 0;
  for (int len = 2; len <= n; len = len * 2) {
    int half = len / 2;
    if (half >= 4) {
      for (int i = 0; i < n; i += len) {
        for (int j = 0; j < half; j += 4) {
          __m256d wr = _mm256_loadu_pd(wre + tbase + j);
          __m256d wi = _mm256_loadu_pd(wim + tbase + j);
          __m256d xr = _mm256_loadu_pd(re + i + j + half);
          __m256d xi = _mm256_loadu_pd(im + i + j + half);
          __m256d vr = _mm256_sub_pd(_mm256_mul_pd(xr, wr),
                                     _mm256_mul_pd(xi, wi));
          __m256d vi = _mm256_add_pd(_mm256_mul_pd(xr, wi),
                                     _mm256_mul_pd(xi, wr));
          __m256d ur = _mm256_loadu_pd(re + i + j);
          __m256d ui = _mm256_loadu_pd(im + i + j);
          _mm256_storeu_pd(re + i + j, _mm256_add_pd(ur, vr));
          _mm256_storeu_pd(im + i + j, _mm256_add_pd(ui, vi));
          _mm256_storeu_pd(re + i + j + half, _mm256_sub_pd(ur, vr));
          _mm256_storeu_pd(im + i + j + half, _mm256_sub_pd(ui, vi));
        }
      }
    } else {
      for (int i = 0; i < n; i += len) {
        for (int j = 0; j < half; j++) {
          double wr = wre[tbase + j];
          double wi = wim[tbase + j];
          double xr = re[i + j + half];
          double xi = im[i + j + half];
          double vr = xr * wr - xi * wi;
          double vi = xr * wi + xi * wr;
          double ur = re[i + j];
          double ui = im[i + j];
          re[i + j] = ur + vr;
          im[i + j] = ui + vi;
          re[i + j + half] = ur - vr;
          im[i + j + half] = ui - vi;
        }
      }
    }
    tbase = tbase + half;
  }
}
