#include <math.h>
/* AVX variant of Cholesky: the dot products vectorize with a horizontal
   reduction through the 128-bit halves. */
#include <immintrin.h>

void basev_potrf(double *A, int n) {
  for (int j = 0; j < n; j++) {
    __m256d accd = _mm256_setzero_pd();
    int k = 0;
    for (; k + 4 <= j; k += 4) {
      __m256d r = _mm256_loadu_pd(A + j * n + k);
      accd = _mm256_add_pd(accd, _mm256_mul_pd(r, r));
    }
    __m128d lo = _mm256_castpd256_pd128(accd);
    __m128d hi = _mm256_extractf128_pd(accd, 1);
    __m128d s2 = _mm_add_pd(lo, hi);
    __m128d sw = _mm_unpackhi_pd(s2, s2);
    double s = A[j * n + j] - _mm_cvtsd_f64(_mm_add_pd(s2, sw));
    for (; k < j; k++) {
      s = s - A[j * n + k] * A[j * n + k];
    }
    double d = sqrt(s);
    A[j * n + j] = d;
    for (int i = j + 1; i < n; i++) {
      __m256d acc = _mm256_setzero_pd();
      int k2 = 0;
      for (; k2 + 4 <= j; k2 += 4) {
        __m256d ri = _mm256_loadu_pd(A + i * n + k2);
        __m256d rj = _mm256_loadu_pd(A + j * n + k2);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(ri, rj));
      }
      __m128d lo2 = _mm256_castpd256_pd128(acc);
      __m128d hi2 = _mm256_extractf128_pd(acc, 1);
      __m128d t2 = _mm_add_pd(lo2, hi2);
      __m128d tw = _mm_unpackhi_pd(t2, t2);
      double t = A[i * n + j] - _mm_cvtsd_f64(_mm_add_pd(t2, tw));
      for (; k2 < j; k2++) {
        t = t - A[i * n + k2] * A[j * n + k2];
      }
      A[i * n + j] = t / d;
    }
  }
}
