/* y = A*x + y with A m x n (Fig. 7 / Fig. 10 reduction benchmark). */

void base_mvm(const double *A, const double *x, double *y, int m, int n) {
  #pragma igen reduce y
  for (int i = 0; i < m; i++) {
    for (int j = 0; j < n; j++) {
      y[i] = y[i] + A[i * n + j] * x[j];
    }
  }
}
