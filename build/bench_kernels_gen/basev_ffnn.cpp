#include <math.h>
/* AVX variant of the feedforward network (n multiple of 4). */
#include <immintrin.h>

void basev_ffnn(const double *W, const double *b, double *buf0, double *buf1,
             int n, int layers) {
  for (int l = 0; l < layers; l++) {
    for (int o = 0; o < n; o++) {
      __m256d acc = _mm256_setzero_pd();
      for (int i = 0; i < n; i += 4) {
        __m256d w = _mm256_loadu_pd(W + (l * n + o) * n + i);
        __m256d x = _mm256_loadu_pd(buf0 + i);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(w, x));
      }
      __m128d lo = _mm256_castpd256_pd128(acc);
      __m128d hi = _mm256_extractf128_pd(acc, 1);
      __m128d s2 = _mm_add_pd(lo, hi);
      __m128d sw = _mm_unpackhi_pd(s2, s2);
      double s = b[l * n + o] + _mm_cvtsd_f64(_mm_add_pd(s2, sw));
      buf1[o] = fmax(s, 0.0);
    }
    for (int o = 0; o < n; o++) {
      buf0[o] = buf1[o];
    }
  }
}
