#include <math.h>
/* Fully connected feedforward network with ReLU activations; all layers
   have n neurons, `layers` hidden layers (paper: 9). W is layer-major
   (layers x n x n), b layer-major (layers x n). buf0 holds the input
   activation on entry and the output activation on exit. */

void svdd_ffnn(const double *W, const double *b, double *buf0, double *buf1,
            int n, int layers) {
  for (int l = 0; l < layers; l++) {
    for (int o = 0; o < n; o++) {
      double s = b[l * n + o];
      for (int i = 0; i < n; i++) {
        s = s + W[(l * n + o) * n + i] * buf0[i];
      }
      buf1[o] = fmax(s, 0.0);
    }
    for (int o = 0; o < n; o++) {
      buf0[o] = buf1[o];
    }
  }
}
