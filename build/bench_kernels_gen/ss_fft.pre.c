/* Iterative radix-2 DIT FFT on split re/im arrays (Spiral substitute).
   Twiddles are precomputed per stage (wre/wim, contiguous per stage) and
   rev holds the bit-reversal permutation; n is a power of two. */

void ss_fft(double *re, double *im, const double *wre, const double *wim,
           int *rev, int n) {
  for (int i = 0; i < n; i++) {
    int j = rev[i];
    if (j > i) {
      double tr = re[i];
      re[i] = re[j];
      re[j] = tr;
      double ti = im[i];
      im[i] = im[j];
      im[j] = ti;
    }
  }
  int tbase = 0;
  for (int len = 2; len <= n; len = len * 2) {
    int half = len / 2;
    for (int i = 0; i < n; i += len) {
      for (int j = 0; j < half; j++) {
        double wr = wre[tbase + j];
        double wi = wim[tbase + j];
        double xr = re[i + j + half];
        double xi = im[i + j + half];
        double vr = xr * wr - xi * wi;
        double vi = xr * wi + xi * wr;
        double ur = re[i + j];
        double ui = im[i + j];
        re[i + j] = ur + vr;
        im[i + j] = ui + vi;
        re[i + j + half] = ur - vr;
        im[i + j + half] = ui - vi;
      }
    }
    tbase = tbase + half;
  }
}
