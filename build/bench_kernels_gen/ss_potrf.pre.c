#include <math.h>
/* In-place lower-triangular Cholesky factorization (SLinGen
   substitute); A is row-major n x n, symmetric positive definite. */

void ss_potrf(double *A, int n) {
  for (int j = 0; j < n; j++) {
    double s = A[j * n + j];
    for (int k = 0; k < j; k++) {
      s = s - A[j * n + k] * A[j * n + k];
    }
    double d = sqrt(s);
    A[j * n + j] = d;
    for (int i = j + 1; i < n; i++) {
      double t = A[i * n + j];
      for (int k = 0; k < j; k++) {
        t = t - A[i * n + k] * A[j * n + k];
      }
      A[i * n + j] = t / d;
    }
  }
}
