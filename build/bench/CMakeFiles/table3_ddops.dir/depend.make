# Empty dependencies file for table3_ddops.
# This may be replaced when dependencies are built.
