file(REMOVE_RECURSE
  "CMakeFiles/table3_ddops.dir/table3_ddops.cpp.o"
  "CMakeFiles/table3_ddops.dir/table3_ddops.cpp.o.d"
  "table3_ddops"
  "table3_ddops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_ddops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
