file(REMOVE_RECURSE
  "CMakeFiles/table5_slowdown.dir/table5_slowdown.cpp.o"
  "CMakeFiles/table5_slowdown.dir/table5_slowdown.cpp.o.d"
  "table5_slowdown"
  "table5_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
