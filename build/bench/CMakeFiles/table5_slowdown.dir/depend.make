# Empty dependencies file for table5_slowdown.
# This may be replaced when dependencies are built.
