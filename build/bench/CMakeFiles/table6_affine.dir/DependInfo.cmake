
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table6_affine.cpp" "bench/CMakeFiles/table6_affine.dir/table6_affine.cpp.o" "gcc" "bench/CMakeFiles/table6_affine.dir/table6_affine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/igen_bench_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/igen_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/affine/CMakeFiles/igen_affine.dir/DependInfo.cmake"
  "/root/repo/build/src/interval/CMakeFiles/igen_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/simdspec/CMakeFiles/igen_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/igen_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
