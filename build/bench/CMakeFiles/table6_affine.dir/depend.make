# Empty dependencies file for table6_affine.
# This may be replaced when dependencies are built.
