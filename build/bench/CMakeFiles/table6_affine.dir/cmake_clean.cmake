file(REMOVE_RECURSE
  "CMakeFiles/table6_affine.dir/table6_affine.cpp.o"
  "CMakeFiles/table6_affine.dir/table6_affine.cpp.o.d"
  "table6_affine"
  "table6_affine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_affine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
