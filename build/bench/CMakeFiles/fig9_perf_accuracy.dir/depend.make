# Empty dependencies file for fig9_perf_accuracy.
# This may be replaced when dependencies are built.
