file(REMOVE_RECURSE
  "CMakeFiles/fig9_perf_accuracy.dir/fig9_perf_accuracy.cpp.o"
  "CMakeFiles/fig9_perf_accuracy.dir/fig9_perf_accuracy.cpp.o.d"
  "fig9_perf_accuracy"
  "fig9_perf_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_perf_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
