# Empty dependencies file for microops_bench.
# This may be replaced when dependencies are built.
