file(REMOVE_RECURSE
  "CMakeFiles/microops_bench.dir/microops_bench.cpp.o"
  "CMakeFiles/microops_bench.dir/microops_bench.cpp.o.d"
  "microops_bench"
  "microops_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microops_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
