file(REMOVE_RECURSE
  "CMakeFiles/fig10_reduction.dir/fig10_reduction.cpp.o"
  "CMakeFiles/fig10_reduction.dir/fig10_reduction.cpp.o.d"
  "fig10_reduction"
  "fig10_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
