bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/base_mvm.cpp.o: \
 /root/repo/build/bench_kernels_gen/base_mvm.cpp \
 /usr/include/stdc-predef.h
