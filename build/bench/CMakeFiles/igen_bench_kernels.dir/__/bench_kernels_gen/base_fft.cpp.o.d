bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/base_fft.cpp.o: \
 /root/repo/build/bench_kernels_gen/base_fft.cpp \
 /usr/include/stdc-predef.h
