bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/base_gemm.cpp.o: \
 /root/repo/build/bench_kernels_gen/base_gemm.cpp \
 /usr/include/stdc-predef.h
