bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/base_henon.cpp.o: \
 /root/repo/build/bench_kernels_gen/base_henon.cpp \
 /usr/include/stdc-predef.h
