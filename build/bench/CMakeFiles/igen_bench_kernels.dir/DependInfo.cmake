
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/build/bench_kernels_gen/base_ffnn.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/base_ffnn.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/base_ffnn.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/base_fft.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/base_fft.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/base_fft.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/base_gemm.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/base_gemm.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/base_gemm.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/base_henon.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/base_henon.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/base_henon.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/base_mvm.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/base_mvm.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/base_mvm.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/base_potrf.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/base_potrf.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/base_potrf.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/basev_ffnn.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/basev_ffnn.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/basev_ffnn.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/basev_fft.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/basev_fft.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/basev_fft.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/basev_gemm.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/basev_gemm.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/basev_gemm.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/basev_potrf.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/basev_potrf.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/basev_potrf.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/ss_ffnn.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/ss_ffnn.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/ss_ffnn.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/ss_fft.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/ss_fft.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/ss_fft.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/ss_gemm.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/ss_gemm.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/ss_gemm.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/ss_henon.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/ss_henon.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/ss_henon.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/ss_potrf.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/ss_potrf.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/ss_potrf.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/sv_ffnn.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/sv_ffnn.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/sv_ffnn.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/sv_fft.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/sv_fft.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/sv_fft.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/sv_gemm.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/sv_gemm.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/sv_gemm.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/sv_henon.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/sv_henon.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/sv_henon.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/sv_mvm.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/sv_mvm.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/sv_mvm.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/sv_potrf.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/sv_potrf.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/sv_potrf.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/svdd_ffnn.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/svdd_ffnn.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/svdd_ffnn.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/svdd_fft.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/svdd_fft.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/svdd_fft.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/svdd_gemm.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/svdd_gemm.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/svdd_gemm.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/svdd_henon.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/svdd_henon.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/svdd_henon.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/svdd_mvm.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/svdd_mvm.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/svdd_mvm.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/svdd_potrf.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/svdd_potrf.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/svdd_potrf.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/svddred_mvm.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/svddred_mvm.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/svddred_mvm.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/svred_mvm.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/svred_mvm.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/svred_mvm.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/vv_ffnn.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/vv_ffnn.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/vv_ffnn.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/vv_fft.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/vv_fft.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/vv_fft.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/vv_gemm.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/vv_gemm.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/vv_gemm.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/vv_potrf.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/vv_potrf.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/vv_potrf.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/vvdd_ffnn.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/vvdd_ffnn.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/vvdd_ffnn.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/vvdd_fft.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/vvdd_fft.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/vvdd_fft.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/vvdd_gemm.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/vvdd_gemm.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/vvdd_gemm.cpp.o.d"
  "/root/repo/build/bench_kernels_gen/vvdd_potrf.cpp" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/vvdd_potrf.cpp.o" "gcc" "bench/CMakeFiles/igen_bench_kernels.dir/__/bench_kernels_gen/vvdd_potrf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interval/CMakeFiles/igen_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/simdspec/CMakeFiles/igen_simd.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/igen_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
