# Empty dependencies file for igen_bench_kernels.
# This may be replaced when dependencies are built.
