file(REMOVE_RECURSE
  "../lib/libigen_bench_kernels.a"
)
