file(REMOVE_RECURSE
  "CMakeFiles/fig8_perf.dir/fig8_perf.cpp.o"
  "CMakeFiles/fig8_perf.dir/fig8_perf.cpp.o.d"
  "fig8_perf"
  "fig8_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
