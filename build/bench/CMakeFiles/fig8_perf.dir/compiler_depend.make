# Empty compiler generated dependencies file for fig8_perf.
# This may be replaced when dependencies are built.
