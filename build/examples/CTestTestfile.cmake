# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_pipeline "/root/repo/build/examples/sensor_pipeline")
set_tests_properties(example_sensor_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_certified_newton "/root/repo/build/examples/certified_newton")
set_tests_properties(example_certified_newton PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_affine_vs_interval "/root/repo/build/examples/affine_vs_interval")
set_tests_properties(example_affine_vs_interval PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
