file(REMOVE_RECURSE
  "CMakeFiles/certified_newton.dir/certified_newton.cpp.o"
  "CMakeFiles/certified_newton.dir/certified_newton.cpp.o.d"
  "certified_newton"
  "certified_newton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certified_newton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
