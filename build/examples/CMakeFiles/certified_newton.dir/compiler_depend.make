# Empty compiler generated dependencies file for certified_newton.
# This may be replaced when dependencies are built.
