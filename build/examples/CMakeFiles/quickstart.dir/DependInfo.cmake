
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interval/CMakeFiles/igen_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/affine/CMakeFiles/igen_affine.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/igen_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/igen_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/igen_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/igen_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
