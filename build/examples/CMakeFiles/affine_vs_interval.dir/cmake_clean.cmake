file(REMOVE_RECURSE
  "CMakeFiles/affine_vs_interval.dir/affine_vs_interval.cpp.o"
  "CMakeFiles/affine_vs_interval.dir/affine_vs_interval.cpp.o.d"
  "affine_vs_interval"
  "affine_vs_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affine_vs_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
