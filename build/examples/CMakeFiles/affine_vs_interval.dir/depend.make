# Empty dependencies file for affine_vs_interval.
# This may be replaced when dependencies are built.
