# CMake generated Testfile for 
# Source directory: /root/repo/tests/interval
# Build directory: /root/repo/build/tests/interval
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/interval/interval_core_test[1]_include.cmake")
include("/root/repo/build/tests/interval/interval_dd_test[1]_include.cmake")
include("/root/repo/build/tests/interval/interval_simd_test[1]_include.cmake")
include("/root/repo/build/tests/interval/interval_misc_test[1]_include.cmake")
include("/root/repo/build/tests/interval/interval_property_test[1]_include.cmake")
