file(REMOVE_RECURSE
  "CMakeFiles/interval_core_test.dir/IntervalTest.cpp.o"
  "CMakeFiles/interval_core_test.dir/IntervalTest.cpp.o.d"
  "CMakeFiles/interval_core_test.dir/RoundingTest.cpp.o"
  "CMakeFiles/interval_core_test.dir/RoundingTest.cpp.o.d"
  "CMakeFiles/interval_core_test.dir/TBoolTest.cpp.o"
  "CMakeFiles/interval_core_test.dir/TBoolTest.cpp.o.d"
  "CMakeFiles/interval_core_test.dir/UlpTest.cpp.o"
  "CMakeFiles/interval_core_test.dir/UlpTest.cpp.o.d"
  "interval_core_test"
  "interval_core_test.pdb"
  "interval_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
