file(REMOVE_RECURSE
  "CMakeFiles/interval_simd_test.dir/DdSimdTest.cpp.o"
  "CMakeFiles/interval_simd_test.dir/DdSimdTest.cpp.o.d"
  "CMakeFiles/interval_simd_test.dir/IntervalSimdTest.cpp.o"
  "CMakeFiles/interval_simd_test.dir/IntervalSimdTest.cpp.o.d"
  "CMakeFiles/interval_simd_test.dir/IntervalVectorTest.cpp.o"
  "CMakeFiles/interval_simd_test.dir/IntervalVectorTest.cpp.o.d"
  "interval_simd_test"
  "interval_simd_test.pdb"
  "interval_simd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_simd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
