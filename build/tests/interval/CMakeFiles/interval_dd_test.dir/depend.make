# Empty dependencies file for interval_dd_test.
# This may be replaced when dependencies are built.
