file(REMOVE_RECURSE
  "CMakeFiles/interval_dd_test.dir/DdIntervalTest.cpp.o"
  "CMakeFiles/interval_dd_test.dir/DdIntervalTest.cpp.o.d"
  "CMakeFiles/interval_dd_test.dir/DoubleDoubleTest.cpp.o"
  "CMakeFiles/interval_dd_test.dir/DoubleDoubleTest.cpp.o.d"
  "CMakeFiles/interval_dd_test.dir/ExpansionTest.cpp.o"
  "CMakeFiles/interval_dd_test.dir/ExpansionTest.cpp.o.d"
  "interval_dd_test"
  "interval_dd_test.pdb"
  "interval_dd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_dd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
