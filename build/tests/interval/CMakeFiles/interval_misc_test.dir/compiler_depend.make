# Empty compiler generated dependencies file for interval_misc_test.
# This may be replaced when dependencies are built.
