file(REMOVE_RECURSE
  "CMakeFiles/interval_misc_test.dir/AccumulatorTest.cpp.o"
  "CMakeFiles/interval_misc_test.dir/AccumulatorTest.cpp.o.d"
  "CMakeFiles/interval_misc_test.dir/AccuracyTest.cpp.o"
  "CMakeFiles/interval_misc_test.dir/AccuracyTest.cpp.o.d"
  "CMakeFiles/interval_misc_test.dir/DecimalFpTest.cpp.o"
  "CMakeFiles/interval_misc_test.dir/DecimalFpTest.cpp.o.d"
  "CMakeFiles/interval_misc_test.dir/ElementaryTest.cpp.o"
  "CMakeFiles/interval_misc_test.dir/ElementaryTest.cpp.o.d"
  "CMakeFiles/interval_misc_test.dir/Interval32Test.cpp.o"
  "CMakeFiles/interval_misc_test.dir/Interval32Test.cpp.o.d"
  "CMakeFiles/interval_misc_test.dir/IntervalIOTest.cpp.o"
  "CMakeFiles/interval_misc_test.dir/IntervalIOTest.cpp.o.d"
  "interval_misc_test"
  "interval_misc_test.pdb"
  "interval_misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
