
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/interval/AccumulatorTest.cpp" "tests/interval/CMakeFiles/interval_misc_test.dir/AccumulatorTest.cpp.o" "gcc" "tests/interval/CMakeFiles/interval_misc_test.dir/AccumulatorTest.cpp.o.d"
  "/root/repo/tests/interval/AccuracyTest.cpp" "tests/interval/CMakeFiles/interval_misc_test.dir/AccuracyTest.cpp.o" "gcc" "tests/interval/CMakeFiles/interval_misc_test.dir/AccuracyTest.cpp.o.d"
  "/root/repo/tests/interval/DecimalFpTest.cpp" "tests/interval/CMakeFiles/interval_misc_test.dir/DecimalFpTest.cpp.o" "gcc" "tests/interval/CMakeFiles/interval_misc_test.dir/DecimalFpTest.cpp.o.d"
  "/root/repo/tests/interval/ElementaryTest.cpp" "tests/interval/CMakeFiles/interval_misc_test.dir/ElementaryTest.cpp.o" "gcc" "tests/interval/CMakeFiles/interval_misc_test.dir/ElementaryTest.cpp.o.d"
  "/root/repo/tests/interval/Interval32Test.cpp" "tests/interval/CMakeFiles/interval_misc_test.dir/Interval32Test.cpp.o" "gcc" "tests/interval/CMakeFiles/interval_misc_test.dir/Interval32Test.cpp.o.d"
  "/root/repo/tests/interval/IntervalIOTest.cpp" "tests/interval/CMakeFiles/interval_misc_test.dir/IntervalIOTest.cpp.o" "gcc" "tests/interval/CMakeFiles/interval_misc_test.dir/IntervalIOTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interval/CMakeFiles/igen_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/igen_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
