# Empty compiler generated dependencies file for igen_exec_ss_test.
# This may be replaced when dependencies are built.
