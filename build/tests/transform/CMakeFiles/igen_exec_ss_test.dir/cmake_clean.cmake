file(REMOVE_RECURSE
  "CMakeFiles/igen_exec_ss_test.dir/ExecDoubleTest.cpp.o"
  "CMakeFiles/igen_exec_ss_test.dir/ExecDoubleTest.cpp.o.d"
  "CMakeFiles/igen_exec_ss_test.dir/gen/join_ss.cpp.o"
  "CMakeFiles/igen_exec_ss_test.dir/gen/join_ss.cpp.o.d"
  "CMakeFiles/igen_exec_ss_test.dir/gen/k_ss.cpp.o"
  "CMakeFiles/igen_exec_ss_test.dir/gen/k_ss.cpp.o.d"
  "CMakeFiles/igen_exec_ss_test.dir/gen/trig_ss.cpp.o"
  "CMakeFiles/igen_exec_ss_test.dir/gen/trig_ss.cpp.o.d"
  "gen/join_ss.cpp"
  "gen/k_ss.cpp"
  "gen/trig_ss.cpp"
  "igen_exec_ss_test"
  "igen_exec_ss_test.pdb"
  "igen_exec_ss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igen_exec_ss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
