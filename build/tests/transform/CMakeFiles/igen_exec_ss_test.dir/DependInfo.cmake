
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transform/ExecDoubleTest.cpp" "tests/transform/CMakeFiles/igen_exec_ss_test.dir/ExecDoubleTest.cpp.o" "gcc" "tests/transform/CMakeFiles/igen_exec_ss_test.dir/ExecDoubleTest.cpp.o.d"
  "/root/repo/build/tests/transform/gen/join_ss.cpp" "tests/transform/CMakeFiles/igen_exec_ss_test.dir/gen/join_ss.cpp.o" "gcc" "tests/transform/CMakeFiles/igen_exec_ss_test.dir/gen/join_ss.cpp.o.d"
  "/root/repo/build/tests/transform/gen/k_ss.cpp" "tests/transform/CMakeFiles/igen_exec_ss_test.dir/gen/k_ss.cpp.o" "gcc" "tests/transform/CMakeFiles/igen_exec_ss_test.dir/gen/k_ss.cpp.o.d"
  "/root/repo/build/tests/transform/gen/trig_ss.cpp" "tests/transform/CMakeFiles/igen_exec_ss_test.dir/gen/trig_ss.cpp.o" "gcc" "tests/transform/CMakeFiles/igen_exec_ss_test.dir/gen/trig_ss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interval/CMakeFiles/igen_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/igen_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
