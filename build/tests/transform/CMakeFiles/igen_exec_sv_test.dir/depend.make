# Empty dependencies file for igen_exec_sv_test.
# This may be replaced when dependencies are built.
