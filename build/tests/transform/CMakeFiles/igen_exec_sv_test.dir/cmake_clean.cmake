file(REMOVE_RECURSE
  "CMakeFiles/igen_exec_sv_test.dir/ExecDoubleTest.cpp.o"
  "CMakeFiles/igen_exec_sv_test.dir/ExecDoubleTest.cpp.o.d"
  "CMakeFiles/igen_exec_sv_test.dir/gen/join_sv.cpp.o"
  "CMakeFiles/igen_exec_sv_test.dir/gen/join_sv.cpp.o.d"
  "CMakeFiles/igen_exec_sv_test.dir/gen/k_sv.cpp.o"
  "CMakeFiles/igen_exec_sv_test.dir/gen/k_sv.cpp.o.d"
  "CMakeFiles/igen_exec_sv_test.dir/gen/trig_sv.cpp.o"
  "CMakeFiles/igen_exec_sv_test.dir/gen/trig_sv.cpp.o.d"
  "gen/join_sv.cpp"
  "gen/k_sv.cpp"
  "gen/trig_sv.cpp"
  "igen_exec_sv_test"
  "igen_exec_sv_test.pdb"
  "igen_exec_sv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igen_exec_sv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
