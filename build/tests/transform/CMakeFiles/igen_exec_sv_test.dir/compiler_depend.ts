# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for igen_exec_sv_test.
