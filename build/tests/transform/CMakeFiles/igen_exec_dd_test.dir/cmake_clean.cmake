file(REMOVE_RECURSE
  "CMakeFiles/igen_exec_dd_test.dir/ExecDdTest.cpp.o"
  "CMakeFiles/igen_exec_dd_test.dir/ExecDdTest.cpp.o.d"
  "CMakeFiles/igen_exec_dd_test.dir/gen/k_dd.cpp.o"
  "CMakeFiles/igen_exec_dd_test.dir/gen/k_dd.cpp.o.d"
  "gen/k_dd.cpp"
  "igen_exec_dd_test"
  "igen_exec_dd_test.pdb"
  "igen_exec_dd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igen_exec_dd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
