# Empty dependencies file for igen_exec_dd_test.
# This may be replaced when dependencies are built.
