# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for igen_exec_dd_ss_test.
