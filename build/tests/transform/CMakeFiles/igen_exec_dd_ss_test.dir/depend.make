# Empty dependencies file for igen_exec_dd_ss_test.
# This may be replaced when dependencies are built.
