# CMake generated Testfile for 
# Source directory: /root/repo/tests/transform
# Build directory: /root/repo/build/tests/transform
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/transform/transform_test[1]_include.cmake")
include("/root/repo/build/tests/transform/igen_exec_sv_test[1]_include.cmake")
include("/root/repo/build/tests/transform/igen_exec_ss_test[1]_include.cmake")
include("/root/repo/build/tests/transform/igen_exec_dd_test[1]_include.cmake")
include("/root/repo/build/tests/transform/igen_exec_dd_ss_test[1]_include.cmake")
add_test(driver_cli_translate "/root/repo/build/src/driver/igen" "/root/repo/tests/transform/Inputs/kernels.c" "-o" "/root/repo/build/tests/transform/cli_smoke_out.cpp" "--reductions")
set_tests_properties(driver_cli_translate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/transform/CMakeLists.txt;56;add_test;/root/repo/tests/transform/CMakeLists.txt;0;")
add_test(driver_cli_dd "/root/repo/build/src/driver/igen" "/root/repo/tests/transform/Inputs/kernels.c" "-o" "/root/repo/build/tests/transform/cli_smoke_dd.cpp" "--precision=dd" "--target=ss")
set_tests_properties(driver_cli_dd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/transform/CMakeLists.txt;59;add_test;/root/repo/tests/transform/CMakeLists.txt;0;")
add_test(driver_cli_dump_ast "/root/repo/build/src/driver/igen" "--dump-ast" "/root/repo/tests/transform/Inputs/trig.c" "-o" "/dev/null")
set_tests_properties(driver_cli_dump_ast PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/transform/CMakeLists.txt;63;add_test;/root/repo/tests/transform/CMakeLists.txt;0;")
add_test(driver_cli_rejects_bad_flag "/root/repo/build/src/driver/igen" "--no-such-flag" "/root/repo/tests/transform/Inputs/trig.c")
set_tests_properties(driver_cli_rejects_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/transform/CMakeLists.txt;66;add_test;/root/repo/tests/transform/CMakeLists.txt;0;")
