# Empty dependencies file for simd_exec_test.
# This may be replaced when dependencies are built.
