file(REMOVE_RECURSE
  "CMakeFiles/simd_exec_test.dir/SimdExecTest.cpp.o"
  "CMakeFiles/simd_exec_test.dir/SimdExecTest.cpp.o.d"
  "simd_exec_test"
  "simd_exec_test.pdb"
  "simd_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simd_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
