
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simdspec/PseudoLangTest.cpp" "tests/simdspec/CMakeFiles/simdspec_test.dir/PseudoLangTest.cpp.o" "gcc" "tests/simdspec/CMakeFiles/simdspec_test.dir/PseudoLangTest.cpp.o.d"
  "/root/repo/tests/simdspec/SimdGenTest.cpp" "tests/simdspec/CMakeFiles/simdspec_test.dir/SimdGenTest.cpp.o" "gcc" "tests/simdspec/CMakeFiles/simdspec_test.dir/SimdGenTest.cpp.o.d"
  "/root/repo/tests/simdspec/XmlParserTest.cpp" "tests/simdspec/CMakeFiles/simdspec_test.dir/XmlParserTest.cpp.o" "gcc" "tests/simdspec/CMakeFiles/simdspec_test.dir/XmlParserTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simdspec/CMakeFiles/igen_simdspec.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/igen_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
