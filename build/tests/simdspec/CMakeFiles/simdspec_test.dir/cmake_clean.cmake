file(REMOVE_RECURSE
  "CMakeFiles/simdspec_test.dir/PseudoLangTest.cpp.o"
  "CMakeFiles/simdspec_test.dir/PseudoLangTest.cpp.o.d"
  "CMakeFiles/simdspec_test.dir/SimdGenTest.cpp.o"
  "CMakeFiles/simdspec_test.dir/SimdGenTest.cpp.o.d"
  "CMakeFiles/simdspec_test.dir/XmlParserTest.cpp.o"
  "CMakeFiles/simdspec_test.dir/XmlParserTest.cpp.o.d"
  "simdspec_test"
  "simdspec_test.pdb"
  "simdspec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdspec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
