# Empty compiler generated dependencies file for simdspec_test.
# This may be replaced when dependencies are built.
