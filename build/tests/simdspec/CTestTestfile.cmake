# CMake generated Testfile for 
# Source directory: /root/repo/tests/simdspec
# Build directory: /root/repo/build/tests/simdspec
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/simdspec/simdspec_test[1]_include.cmake")
include("/root/repo/build/tests/simdspec/simd_exec_test[1]_include.cmake")
