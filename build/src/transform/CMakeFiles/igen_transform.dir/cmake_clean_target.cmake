file(REMOVE_RECURSE
  "libigen_transform.a"
)
