# Empty compiler generated dependencies file for igen_transform.
# This may be replaced when dependencies are built.
