file(REMOVE_RECURSE
  "CMakeFiles/igen_transform.dir/IntervalTransform.cpp.o"
  "CMakeFiles/igen_transform.dir/IntervalTransform.cpp.o.d"
  "CMakeFiles/igen_transform.dir/Pipeline.cpp.o"
  "CMakeFiles/igen_transform.dir/Pipeline.cpp.o.d"
  "libigen_transform.a"
  "libigen_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igen_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
