# Empty dependencies file for igen_baselines.
# This may be replaced when dependencies are built.
