file(REMOVE_RECURSE
  "CMakeFiles/igen_baselines.dir/BaselineIntervals.cpp.o"
  "CMakeFiles/igen_baselines.dir/BaselineIntervals.cpp.o.d"
  "libigen_baselines.a"
  "libigen_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igen_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
