file(REMOVE_RECURSE
  "libigen_baselines.a"
)
