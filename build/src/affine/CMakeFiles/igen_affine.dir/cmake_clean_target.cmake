file(REMOVE_RECURSE
  "libigen_affine.a"
)
