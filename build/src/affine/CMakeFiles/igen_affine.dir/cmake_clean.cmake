file(REMOVE_RECURSE
  "CMakeFiles/igen_affine.dir/AffineForm.cpp.o"
  "CMakeFiles/igen_affine.dir/AffineForm.cpp.o.d"
  "libigen_affine.a"
  "libigen_affine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igen_affine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
