# Empty compiler generated dependencies file for igen_affine.
# This may be replaced when dependencies are built.
