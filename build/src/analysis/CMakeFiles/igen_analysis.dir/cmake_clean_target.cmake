file(REMOVE_RECURSE
  "libigen_analysis.a"
)
