file(REMOVE_RECURSE
  "CMakeFiles/igen_analysis.dir/ReductionAnalysis.cpp.o"
  "CMakeFiles/igen_analysis.dir/ReductionAnalysis.cpp.o.d"
  "libigen_analysis.a"
  "libigen_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igen_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
