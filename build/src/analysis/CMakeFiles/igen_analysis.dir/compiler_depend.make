# Empty compiler generated dependencies file for igen_analysis.
# This may be replaced when dependencies are built.
