# Empty dependencies file for igen_simdspec.
# This may be replaced when dependencies are built.
