
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simdspec/PseudoLang.cpp" "src/simdspec/CMakeFiles/igen_simdspec.dir/PseudoLang.cpp.o" "gcc" "src/simdspec/CMakeFiles/igen_simdspec.dir/PseudoLang.cpp.o.d"
  "/root/repo/src/simdspec/SimdGen.cpp" "src/simdspec/CMakeFiles/igen_simdspec.dir/SimdGen.cpp.o" "gcc" "src/simdspec/CMakeFiles/igen_simdspec.dir/SimdGen.cpp.o.d"
  "/root/repo/src/simdspec/XmlParser.cpp" "src/simdspec/CMakeFiles/igen_simdspec.dir/XmlParser.cpp.o" "gcc" "src/simdspec/CMakeFiles/igen_simdspec.dir/XmlParser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/igen_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
