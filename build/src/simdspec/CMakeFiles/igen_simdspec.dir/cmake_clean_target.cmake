file(REMOVE_RECURSE
  "libigen_simdspec.a"
)
