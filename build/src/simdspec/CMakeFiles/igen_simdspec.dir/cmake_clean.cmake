file(REMOVE_RECURSE
  "CMakeFiles/igen_simdspec.dir/PseudoLang.cpp.o"
  "CMakeFiles/igen_simdspec.dir/PseudoLang.cpp.o.d"
  "CMakeFiles/igen_simdspec.dir/SimdGen.cpp.o"
  "CMakeFiles/igen_simdspec.dir/SimdGen.cpp.o.d"
  "CMakeFiles/igen_simdspec.dir/XmlParser.cpp.o"
  "CMakeFiles/igen_simdspec.dir/XmlParser.cpp.o.d"
  "libigen_simdspec.a"
  "libigen_simdspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igen_simdspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
