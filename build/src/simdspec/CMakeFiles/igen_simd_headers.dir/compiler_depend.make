# Empty custom commands generated dependencies file for igen_simd_headers.
# This may be replaced when dependencies are built.
