file(REMOVE_RECURSE
  "../../igen_simd_gen/igen_simd.h"
  "../../igen_simd_gen/igen_simd_c.h"
  "CMakeFiles/igen_simd_headers"
)

# Per-language clean rules from dependency scanning.
foreach(lang )
  include(CMakeFiles/igen_simd_headers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
