file(REMOVE_RECURSE
  "CMakeFiles/igen-simdgen.dir/igen-simdgen-main.cpp.o"
  "CMakeFiles/igen-simdgen.dir/igen-simdgen-main.cpp.o.d"
  "igen-simdgen"
  "igen-simdgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igen-simdgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
