# Empty compiler generated dependencies file for igen-simdgen.
# This may be replaced when dependencies are built.
