
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/build/igen_simd_gen/igen_simd_scalar64.cpp" "src/simdspec/CMakeFiles/igen_simd.dir/__/__/igen_simd_gen/igen_simd_scalar64.cpp.o" "gcc" "src/simdspec/CMakeFiles/igen_simd.dir/__/__/igen_simd_gen/igen_simd_scalar64.cpp.o.d"
  "/root/repo/build/igen_simd_gen/igen_simd_scalardd.cpp" "src/simdspec/CMakeFiles/igen_simd.dir/__/__/igen_simd_gen/igen_simd_scalardd.cpp.o" "gcc" "src/simdspec/CMakeFiles/igen_simd.dir/__/__/igen_simd_gen/igen_simd_scalardd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interval/CMakeFiles/igen_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/igen_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
