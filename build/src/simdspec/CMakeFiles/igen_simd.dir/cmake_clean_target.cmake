file(REMOVE_RECURSE
  "libigen_simd.a"
)
