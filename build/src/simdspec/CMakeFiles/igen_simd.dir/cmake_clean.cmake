file(REMOVE_RECURSE
  "../../igen_simd_gen/igen_simd_scalar64.c"
  "../../igen_simd_gen/igen_simd_scalar64.cpp"
  "../../igen_simd_gen/igen_simd_scalardd.c"
  "../../igen_simd_gen/igen_simd_scalardd.cpp"
  "CMakeFiles/igen_simd.dir/__/__/igen_simd_gen/igen_simd_scalar64.cpp.o"
  "CMakeFiles/igen_simd.dir/__/__/igen_simd_gen/igen_simd_scalar64.cpp.o.d"
  "CMakeFiles/igen_simd.dir/__/__/igen_simd_gen/igen_simd_scalardd.cpp.o"
  "CMakeFiles/igen_simd.dir/__/__/igen_simd_gen/igen_simd_scalardd.cpp.o.d"
  "libigen_simd.a"
  "libigen_simd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igen_simd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
