# Empty dependencies file for igen_simd.
# This may be replaced when dependencies are built.
