file(REMOVE_RECURSE
  "CMakeFiles/igen.dir/main.cpp.o"
  "CMakeFiles/igen.dir/main.cpp.o.d"
  "igen"
  "igen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
