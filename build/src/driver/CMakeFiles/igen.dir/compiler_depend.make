# Empty compiler generated dependencies file for igen.
# This may be replaced when dependencies are built.
