# Empty compiler generated dependencies file for igen_support.
# This may be replaced when dependencies are built.
