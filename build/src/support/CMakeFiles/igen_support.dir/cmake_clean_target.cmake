file(REMOVE_RECURSE
  "libigen_support.a"
)
