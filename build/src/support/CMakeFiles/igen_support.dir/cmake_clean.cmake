file(REMOVE_RECURSE
  "CMakeFiles/igen_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/igen_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/igen_support.dir/StringExtras.cpp.o"
  "CMakeFiles/igen_support.dir/StringExtras.cpp.o.d"
  "libigen_support.a"
  "libigen_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igen_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
