# Empty dependencies file for igen_frontend.
# This may be replaced when dependencies are built.
