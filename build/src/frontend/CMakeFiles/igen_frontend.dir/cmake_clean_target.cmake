file(REMOVE_RECURSE
  "libigen_frontend.a"
)
