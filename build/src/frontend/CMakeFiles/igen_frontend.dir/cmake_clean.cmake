file(REMOVE_RECURSE
  "CMakeFiles/igen_frontend.dir/ASTDumper.cpp.o"
  "CMakeFiles/igen_frontend.dir/ASTDumper.cpp.o.d"
  "CMakeFiles/igen_frontend.dir/CPrinter.cpp.o"
  "CMakeFiles/igen_frontend.dir/CPrinter.cpp.o.d"
  "CMakeFiles/igen_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/igen_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/igen_frontend.dir/Parser.cpp.o"
  "CMakeFiles/igen_frontend.dir/Parser.cpp.o.d"
  "CMakeFiles/igen_frontend.dir/Sema.cpp.o"
  "CMakeFiles/igen_frontend.dir/Sema.cpp.o.d"
  "libigen_frontend.a"
  "libigen_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igen_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
