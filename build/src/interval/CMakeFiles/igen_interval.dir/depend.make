# Empty dependencies file for igen_interval.
# This may be replaced when dependencies are built.
