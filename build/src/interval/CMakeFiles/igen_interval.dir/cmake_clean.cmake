file(REMOVE_RECURSE
  "CMakeFiles/igen_interval.dir/DecimalFp.cpp.o"
  "CMakeFiles/igen_interval.dir/DecimalFp.cpp.o.d"
  "CMakeFiles/igen_interval.dir/DoubleDouble.cpp.o"
  "CMakeFiles/igen_interval.dir/DoubleDouble.cpp.o.d"
  "CMakeFiles/igen_interval.dir/Elementary.cpp.o"
  "CMakeFiles/igen_interval.dir/Elementary.cpp.o.d"
  "CMakeFiles/igen_interval.dir/Expansion.cpp.o"
  "CMakeFiles/igen_interval.dir/Expansion.cpp.o.d"
  "CMakeFiles/igen_interval.dir/IntervalIO.cpp.o"
  "CMakeFiles/igen_interval.dir/IntervalIO.cpp.o.d"
  "CMakeFiles/igen_interval.dir/TBool.cpp.o"
  "CMakeFiles/igen_interval.dir/TBool.cpp.o.d"
  "libigen_interval.a"
  "libigen_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igen_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
