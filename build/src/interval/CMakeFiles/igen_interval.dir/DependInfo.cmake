
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interval/DecimalFp.cpp" "src/interval/CMakeFiles/igen_interval.dir/DecimalFp.cpp.o" "gcc" "src/interval/CMakeFiles/igen_interval.dir/DecimalFp.cpp.o.d"
  "/root/repo/src/interval/DoubleDouble.cpp" "src/interval/CMakeFiles/igen_interval.dir/DoubleDouble.cpp.o" "gcc" "src/interval/CMakeFiles/igen_interval.dir/DoubleDouble.cpp.o.d"
  "/root/repo/src/interval/Elementary.cpp" "src/interval/CMakeFiles/igen_interval.dir/Elementary.cpp.o" "gcc" "src/interval/CMakeFiles/igen_interval.dir/Elementary.cpp.o.d"
  "/root/repo/src/interval/Expansion.cpp" "src/interval/CMakeFiles/igen_interval.dir/Expansion.cpp.o" "gcc" "src/interval/CMakeFiles/igen_interval.dir/Expansion.cpp.o.d"
  "/root/repo/src/interval/IntervalIO.cpp" "src/interval/CMakeFiles/igen_interval.dir/IntervalIO.cpp.o" "gcc" "src/interval/CMakeFiles/igen_interval.dir/IntervalIO.cpp.o.d"
  "/root/repo/src/interval/TBool.cpp" "src/interval/CMakeFiles/igen_interval.dir/TBool.cpp.o" "gcc" "src/interval/CMakeFiles/igen_interval.dir/TBool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/igen_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
