file(REMOVE_RECURSE
  "libigen_interval.a"
)
